"""API-surface integrity: every module imports, every __all__ resolves.

A reproduction repo lives or dies by its import hygiene — a stale name
in ``__all__`` or a module that only imports under test fixtures is a
broken public API.  This walks the whole package.
"""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


def test_package_has_expected_subpackages():
    tops = {m.split(".")[1] for m in MODULES if m.count(".") == 1}
    assert {
        "sparse", "linalg", "text", "weighting", "core", "updating",
        "retrieval", "evaluation", "corpus", "apps", "parallel", "util",
        "errors", "cli",
    } <= tops


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    mod = importlib.import_module(module_name)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module_name}.__all__ lists {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    if module_name.endswith("__main__"):
        return
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a docstring"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)
