"""§5.4 — the no-stemming claim: doctor / doctors / doctoral.

Regenerates: "no stemming is used to collapse words with the same
morphology.  If words with the same stem are used in similar documents
they will have similar vectors ...; otherwise, they will not.  (doctor
is quite near doctors but not as similar to doctoral.)" — measured as
cos(base, inflection) vs cos(base, derivation) over generated word
families.  Times the model fit on the morphology corpus.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi
from repro.core.similarity import term_term_similarities
from repro.corpus.morphology import morphology_corpus


def test_morphological_neighbours(benchmark):
    corpus = morphology_corpus(n_families=8, seed=3)

    model = benchmark(
        fit_lsi, corpus.documents, 16, scheme="log_entropy", seed=0
    )

    infl, deriv = [], []
    for base, inflection, derivation in corpus.families:
        sims = term_term_similarities(model, base)
        v = model.vocabulary
        infl.append(float(sims[v.id_of(inflection)]))
        deriv.append(float(sims[v.id_of(derivation)]))

    rows = [f"{'family':<10s}{'cos(base, infl)':>16s}{'cos(base, deriv)':>17s}"]
    for (base, _, _), ci, cd in zip(corpus.families, infl, deriv):
        rows.append(f"{base:<10s}{ci:>16.3f}{cd:>17.3f}")
    rows.append(
        f"means: inflection {np.mean(infl):.3f} vs derivation "
        f"{np.mean(deriv):.3f}"
    )
    rows.append("paper: 'doctor is quite near doctors but not as similar "
                "to doctoral' — with no stemming anywhere")
    emit("§5.4 — morphology without stemming", rows)

    assert np.mean(infl) > 0.85
    assert np.mean(infl) > np.mean(deriv) + 0.3
    assert all(ci > cd for ci, cd in zip(infl, deriv))
