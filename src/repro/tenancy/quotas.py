"""Per-tenant admission quotas carved from the global budget.

The global :class:`~repro.server.admission.AdmissionController` bounds
the *process*; it cannot stop one hot tenant from filling the whole
queue and starving the rest.  :class:`TenantQuotas` layers a per-tenant
share on top: each tenant may hold at most
``max(min_share, global_depth // n_tenants)`` queue slots, so a
saturated tenant is rejected with a per-tenant 429
(``ServerOverloadError(reason="tenant_quota")``) while the others'
shares stay free.  A single-tenant service's share equals the global
depth — the quota layer is then behaviourally invisible.

Shares recompute only when the tenant set changes; admit/release are a
dict lookup and an integer under one lock.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.errors import ServerOverloadError
from repro.obs.metrics import registry as metrics

__all__ = ["TenantQuotas"]


class TenantQuotas:
    """Bounded per-tenant admission on top of the global queue."""

    def __init__(self, global_depth: int, *, min_share: int = 1):
        self._global_depth = max(1, int(global_depth))
        self._min_share = max(1, int(min_share))
        self._share = self._global_depth
        self._pending: dict[str, int] = {}
        self._ids: tuple[str, ...] = ()
        self._lock = threading.Lock()

    @property
    def share(self) -> int:
        """Queue slots each tenant may hold at once."""
        return self._share

    def ensure(self, tenant_ids: Iterable[str]) -> None:
        """Recompute shares if the tenant set changed (cheap no-op else)."""
        ids = tuple(tenant_ids)
        with self._lock:
            if ids == self._ids:
                return
            self._ids = ids
            self._share = max(
                self._min_share, self._global_depth // max(1, len(ids))
            )
            for tid in ids:
                self._pending.setdefault(tid, 0)

    def admit(self, tenant_id: str) -> None:
        """Claim one slot of the tenant's share or raise a per-tenant 429."""
        with self._lock:
            pending = self._pending.get(tenant_id, 0)
            if pending >= self._share:
                metrics.inc(f"tenant.{tenant_id}.rejected_quota")
                raise ServerOverloadError(
                    f"tenant {tenant_id!r} is over its admission quota "
                    f"({pending}/{self._share} slots)",
                    reason="tenant_quota",
                )
            self._pending[tenant_id] = pending + 1
        metrics.inc(f"tenant.{tenant_id}.requests_total")
        metrics.set_gauge(
            f"tenant.{tenant_id}.queue_depth", float(pending + 1)
        )

    def release(self, tenant_id: str) -> None:
        """Return one slot; exactly one release per successful admit."""
        with self._lock:
            pending = max(0, self._pending.get(tenant_id, 0) - 1)
            self._pending[tenant_id] = pending
        metrics.set_gauge(
            f"tenant.{tenant_id}.queue_depth", float(pending)
        )

    def describe(self) -> dict:
        """Share size and per-tenant pending counts."""
        with self._lock:
            return {
                "share": self._share,
                "pending": dict(self._pending),
            }
