"""§5.4 — queries as multiple points of interest (ref [18]).

Regenerates the motivation for the relevance-density method: a
two-facet information need scored as a single centroid vector misses one
facet's documents; the multi-point rules recover both.  Times the
density-rule search.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi, project_query
from repro.core.similarity import cosine_similarities
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation.metrics import average_precision
from repro.retrieval import MultiTopicQuery, multi_topic_scores


def test_multitopic_vs_centroid(benchmark):
    # A crowded space (12 topics in k=6 dimensions) is where the
    # centroid representation fails: the midpoint of two facets lands
    # near unrelated topics.
    n_topics = 12
    col = topic_collection(
        SyntheticSpec(
            n_topics=n_topics, docs_per_topic=12, doc_length=40,
            concepts_per_topic=12, synonyms_per_concept=2,
            queries_per_topic=1, query_length=3, query_synonym_shift=0.3,
        ),
        seed=41,
    )
    model = fit_lsi(col.documents, k=6, scheme="log_entropy", seed=0)

    # Two-facet needs: every pair of adjacent topics.
    results = {"centroid": [], "max": [], "mean": [], "density": []}
    for t in range(0, n_topics, 2):
        qa, qb = col.queries[t], col.queries[t + 1]
        relevant = col.relevant(t) | col.relevant(t + 1)
        centroid = (project_query(model, qa) + project_query(model, qb)) / 2
        cscores = cosine_similarities(model, centroid)
        results["centroid"].append(
            average_precision(list(np.argsort(-cscores)), relevant)
        )
        mq = MultiTopicQuery.from_texts(model, [qa, qb])
        for rule in ("max", "mean", "density"):
            if rule == "density" and t == 0:
                scores = benchmark(
                    multi_topic_scores, model, mq, rule="density"
                )
            else:
                scores = multi_topic_scores(model, mq, rule=rule)
            results[rule].append(
                average_precision(list(np.argsort(-scores)), relevant)
            )

    means = {name: float(np.mean(v)) for name, v in results.items()}
    rows = [f"{'scoring rule':<12s}{'mean AP (2-facet needs)':>24s}"]
    for name in ("centroid", "mean", "density", "max"):
        rows.append(f"{name:<12s}{means[name]:>24.3f}")
    rows.append("ref [18]: represent multi-topic queries as multiple "
                "points of interest instead of one centroid")
    emit("§5.4 — multi-topic queries", rows)

    assert means["max"] > means["centroid"] + 0.1
    assert means["density"] > means["centroid"] + 0.1
