"""Tests for the incremental index manager."""

import numpy as np
import pytest

from repro.corpus import SyntheticSpec, topic_collection
from repro.errors import ShapeError
from repro.text import ParsingRules, build_tdm
from repro.updating import LSIIndexManager


@pytest.fixture
def manager_setup():
    col = topic_collection(
        SyntheticSpec(n_topics=4, docs_per_topic=15, doc_length=30,
                      concepts_per_topic=10, queries_per_topic=1),
        seed=50,
    )
    train = col.documents[:40]
    later = col.documents[40:]
    tdm = build_tdm(train, ParsingRules())
    mgr = LSIIndexManager(tdm, k=8, scheme=None, distortion_budget=0.1)
    return mgr, later


def test_initial_state(manager_setup):
    mgr, _ = manager_setup
    assert mgr.n_documents == 40
    assert mgr.pending == 0
    assert mgr.drift() < 1e-10
    assert mgr.events == []


def test_small_additions_fold(manager_setup):
    mgr, later = manager_setup
    event = mgr.add_texts(later[:2])
    assert event.action == "fold-in"
    assert mgr.pending == 2
    assert mgr.n_documents == 42
    assert mgr.model.provenance == "fold-in"


def test_budget_triggers_consolidation(manager_setup):
    mgr, later = manager_setup
    # 10% of 40 = 4 documents; the 5th pending document exceeds it.
    actions = []
    for text in later[:6]:
        actions.append(mgr.add_texts([text]).action)
    assert "fold-in" in actions
    assert any(a in ("svd-update", "recompute") for a in actions)
    # After consolidation, pending resets and drift is repaired.
    assert mgr.pending < 5
    last_consolidation = max(
        i for i, a in enumerate(actions) if a != "fold-in"
    )
    if last_consolidation == len(actions) - 1:
        assert mgr.drift() < 1e-8


def test_consolidation_preserves_document_count(manager_setup):
    mgr, later = manager_setup
    for text in later[:8]:
        mgr.add_texts([text])
    assert mgr.n_documents == 48
    assert mgr.tdm.n_documents + mgr.pending == 48


def test_queries_see_all_documents_immediately(manager_setup):
    mgr, later = manager_setup
    from repro.core import project_query, retrieve

    mgr.add_texts([later[0]], doc_ids=["FRESH"])
    qhat = project_query(mgr.model, later[0])
    ids = [d for d, _ in retrieve(mgr.model, qhat, top=3)]
    assert "FRESH" in ids


def test_manual_consolidate(manager_setup):
    mgr, later = manager_setup
    assert mgr.consolidate() is None  # nothing pending
    mgr.add_texts(later[:2])
    event = mgr.consolidate()
    assert event is not None
    assert event.action == "svd-update"
    assert mgr.pending == 0
    assert mgr.drift() < 1e-8
    assert mgr.tdm.n_documents == 42


def test_drift_cap_forces_recompute():
    col = topic_collection(
        SyntheticSpec(n_topics=3, docs_per_topic=10, doc_length=25,
                      concepts_per_topic=8, queries_per_topic=1),
        seed=51,
    )
    tdm = build_tdm(col.documents[:20], ParsingRules())
    mgr = LSIIndexManager(
        tdm, k=6, distortion_budget=0.9, drift_cap=1e-12
    )  # impossible cap → every add consolidates
    event = mgr.add_texts(col.documents[20:22])
    assert event.action == "recompute"
    assert "drift" in event.reason


def test_add_validation(manager_setup):
    mgr, later = manager_setup
    with pytest.raises(ShapeError):
        mgr.add_texts([])
    with pytest.raises(ShapeError):
        mgr.add_texts(later[:2], doc_ids=["one"])
    with pytest.raises(ShapeError):
        mgr.add_counts(np.zeros((3, 1)), ["x"])


def test_events_log_grows(manager_setup):
    mgr, later = manager_setup
    for text in later[:3]:
        mgr.add_texts([text])
    assert len(mgr.events) == 3
    assert all(e.n_documents == 1 for e in mgr.events)


def _replay_sequence(mgr, later):
    """A fixed add sequence crossing fold-in AND consolidation events."""
    for i, text in enumerate(later[:7]):
        mgr.add_texts([text], doc_ids=[f"R{i}"])
    mgr.consolidate()
    return mgr


def test_event_replay_is_bit_deterministic():
    # The durability contract of repro.store: given the same initial
    # state and seed, replaying the same event sequence reproduces the
    # factor matrices bit-for-bit — not approximately, identically.
    def build():
        col = topic_collection(
            SyntheticSpec(n_topics=4, docs_per_topic=15, doc_length=30,
                          concepts_per_topic=10, queries_per_topic=1),
            seed=50,
        )
        train, later = col.documents[:40], col.documents[40:]
        tdm = build_tdm(train, ParsingRules())
        mgr = LSIIndexManager(tdm, k=8, scheme="log_entropy",
                              distortion_budget=0.1, seed=3)
        return _replay_sequence(mgr, later)

    a, b = build(), build()
    assert np.array_equal(a.model.U, b.model.U)
    assert np.array_equal(a.model.s, b.model.s)
    assert np.array_equal(a.model.V, b.model.V)
    assert np.array_equal(a.model.global_weights, b.model.global_weights)
    assert a.model.doc_ids == b.model.doc_ids
    assert [e.action for e in a.events] == [e.action for e in b.events]


def test_restore_resumes_identically(manager_setup):
    from repro.store import capture_manager, restore_manager

    mgr, later = manager_setup
    mgr.add_texts(later[:2])
    twin = restore_manager(*capture_manager(mgr))
    # Divergence after restore would make WAL replay unsound; both
    # managers must make the same planner decisions and produce the
    # same arrays for the remainder of the stream.
    for text in later[2:6]:
        ea = mgr.add_texts([text])
        eb = twin.add_texts([text])
        assert (ea.action, ea.reason) == (eb.action, eb.reason)
    assert np.array_equal(mgr.model.U, twin.model.U)
    assert np.array_equal(mgr.model.s, twin.model.s)
    assert np.array_equal(mgr.model.V, twin.model.V)
