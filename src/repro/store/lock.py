"""Single-writer exclusion for a store data directory.

A :class:`~repro.store.durable.DurableIndexStore` owns its directory
exclusively while open: its :class:`~repro.store.wal.WriteAheadLog`
handle truncates torn tails on open and ``compact`` replaces the WAL
inode, both of which corrupt or orphan a concurrent writer's log.
:class:`StoreLock` makes that ownership explicit — an exclusive
``flock(2)`` on ``<data-dir>/LOCK`` held for the store's lifetime.

``flock`` locks die with their process, so a SIGKILLed server never
leaves a stale lock behind; the ``LOCK`` file itself persisting is
harmless (the next writer locks the same inode).  The lock is advisory:
read-only surfaces (``store inspect``, ``store verify``, ``stats
--data-dir``) deliberately never take it — they scan manifests and the
WAL file without opening a write handle.
"""

from __future__ import annotations

import os
import pathlib

from repro.errors import StoreLockedError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: exclusion unavailable
    fcntl = None

__all__ = ["LOCK_NAME", "StoreLock"]

#: Fixed lockfile name inside a store data directory.
LOCK_NAME = "LOCK"


class StoreLock:
    """An exclusive, non-blocking ``flock`` on ``<data-dir>/LOCK``."""

    def __init__(self, path: pathlib.Path, fd: int | None):
        self.path = path
        self._fd = fd

    @classmethod
    def acquire(cls, data_dir: pathlib.Path) -> "StoreLock":
        """Take the directory's writer lock or raise :class:`StoreLockedError`.

        Never blocks: a held lock means a live server or maintenance
        command owns the store right now, and waiting for it would just
        trade corruption for a deadlock-prone queue.
        """
        data_dir = pathlib.Path(data_dir)
        data_dir.mkdir(parents=True, exist_ok=True)
        path = data_dir / LOCK_NAME
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                raise StoreLockedError(
                    f"{data_dir} is locked by another process (a live "
                    "server or maintenance command owns this store); "
                    "read-only commands (store inspect/verify, stats "
                    "--data-dir) work without the lock"
                ) from None
        try:  # advisory diagnostics only; the flock is the lock
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        except OSError:
            pass
        return cls(path, fd)

    def release(self) -> None:
        """Drop the lock (idempotent); closing the fd releases the flock."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    @property
    def held(self) -> bool:
        """Whether this handle still owns the lock."""
        return self._fd is not None

    def __repr__(self) -> str:
        state = "held" if self.held else "released"
        return f"StoreLock({self.path}, {state})"
