"""Tests for the three SVD-updating phases (Eq. 10-12)."""

import numpy as np
import pytest

from repro.core import fit_lsi_from_tdm
from repro.corpus.med import UPDATE_COLUMNS, med_matrix
from repro.errors import ShapeError
from repro.linalg import orthogonality_loss
from repro.updating import update_documents, update_terms, update_weights
from repro.weighting import (
    WeightingScheme,
    apply_weighting,
    weight_correction_blocks,
)


@pytest.fixture(scope="module")
def full_rank_model():
    """Rank-14 model of the 18×14 example: A_k == A, so the update
    methods operate on the exact matrix.  Note the printed (projection)
    constructions still discard components of new columns/rows outside
    the retained subspaces — only ``exact=True`` recovers direct SVDs."""
    return fit_lsi_from_tdm(med_matrix(), 14)


# --------------------------------------------------------------------- #
# documents (Eq. 10)
# --------------------------------------------------------------------- #
def test_update_documents_full_rank_exact_matches_direct_svd(full_rank_model):
    updated = update_documents(
        full_rank_model, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    B = np.hstack([med_matrix().to_dense(), UPDATE_COLUMNS])
    s_ref = np.linalg.svd(B, compute_uv=False)[:14]
    assert np.allclose(updated.s, s_ref, atol=1e-8)


def test_update_documents_projection_never_exceeds_exact(full_rank_model):
    """The printed construction projects D onto span(U_k); its singular
    values are dominated by the exact update's (interlacing)."""
    approx = update_documents(full_rank_model, UPDATE_COLUMNS, ["M15", "M16"])
    exact = update_documents(
        full_rank_model, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    assert np.all(approx.s <= exact.s + 1e-10)


def test_update_documents_exact_flag(med_model):
    updated = update_documents(
        med_model, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    B = np.hstack([med_model.reconstruct(), UPDATE_COLUMNS])
    assert np.allclose(
        updated.s, np.linalg.svd(B, compute_uv=False)[:2], atol=1e-9
    )


def test_update_documents_orthogonality(med_model):
    for exact in (False, True):
        updated = update_documents(
            med_model, UPDATE_COLUMNS, ["M15", "M16"], exact=exact
        )
        assert orthogonality_loss(updated.U) < 1e-10
        assert orthogonality_loss(updated.V) < 1e-10


def test_update_documents_metadata(med_model):
    updated = update_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    assert updated.doc_ids[-2:] == ["M15", "M16"]
    assert updated.n_documents == 16
    assert updated.k == 2
    assert updated.vocabulary is med_model.vocabulary


def test_update_documents_validation(med_model):
    with pytest.raises(ShapeError):
        update_documents(med_model, UPDATE_COLUMNS, ["x"])
    with pytest.raises(ShapeError):
        update_documents(med_model, np.zeros((5, 2)), ["x", "y"])


# --------------------------------------------------------------------- #
# terms (Eq. 11)
# --------------------------------------------------------------------- #
def test_update_terms_full_rank_is_exact(full_rank_model):
    """A_14 has full *column* rank, so V_14 spans all of R^14 and new
    term rows have no out-of-subspace component: the printed Eq. 11
    construction is exact here even without the residual extension."""
    T = np.zeros((2, 14))
    T[0, [0, 3]] = 1.0
    T[1, [5, 9]] = 2.0
    updated = update_terms(full_rank_model, T, ["alpha", "beta"])
    C = np.vstack([med_matrix().to_dense(), T])
    s_ref = np.linalg.svd(C, compute_uv=False)[:14]
    assert np.allclose(updated.s, s_ref, atol=1e-8)


def test_update_terms_exact_flag(med_model):
    T = np.zeros((2, 14))
    T[0, [0, 3]] = 1.0
    T[1, [5, 9]] = 2.0
    updated = update_terms(med_model, T, ["alpha", "beta"], exact=True)
    C = np.vstack([med_model.reconstruct(), T])
    assert np.allclose(
        updated.s, np.linalg.svd(C, compute_uv=False)[:2], atol=1e-9
    )


def test_update_terms_extends_vocabulary(med_model):
    T = np.ones((1, 14))
    updated = update_terms(med_model, T, ["everywhere"])
    assert "everywhere" in updated.vocabulary
    assert updated.n_terms == 19
    assert updated.global_weights.shape == (19,)
    assert orthogonality_loss(updated.U) < 1e-10
    assert orthogonality_loss(updated.V) < 1e-10


def test_update_terms_validation(med_model):
    with pytest.raises(ShapeError):
        update_terms(med_model, np.ones((1, 9)), ["x"])
    with pytest.raises(ShapeError):
        update_terms(med_model, np.ones((1, 14)), ["blood"])
    with pytest.raises(ShapeError):
        update_terms(med_model, np.ones((1, 14)), ["x"], global_weights=np.ones(3))


# --------------------------------------------------------------------- #
# weight corrections (Eq. 12)
# --------------------------------------------------------------------- #
def test_update_weights_identity_for_zero_z(med_model):
    Y = np.zeros((18, 1))
    Y[0, 0] = 1.0
    Z = np.zeros((14, 1))
    updated = update_weights(med_model, Y, Z)
    assert np.allclose(np.sort(updated.s), np.sort(med_model.s), atol=1e-10)
    assert np.allclose(
        updated.reconstruct(), med_model.reconstruct(), atol=1e-10
    )


def test_update_weights_full_rank_matches_reweighting(full_rank_model):
    """Changing global weights of some terms via Eq. 12 (with the
    residual kept) on a full-rank model equals decomposing the
    re-weighted matrix directly."""
    raw = med_matrix().matrix
    old = apply_weighting(raw, WeightingScheme("raw", "none")).matrix
    new = apply_weighting(raw, WeightingScheme("raw", "idf")).matrix
    changed = np.flatnonzero(
        np.abs(old.to_dense() - new.to_dense()).sum(axis=1) > 0
    )
    Y, Z = weight_correction_blocks(old, new, changed)
    updated = update_weights(full_rank_model, Y, Z, exact=True)
    s_ref = np.linalg.svd(new.to_dense(), compute_uv=False)[:14]
    assert np.allclose(updated.s, s_ref, atol=1e-8)


def test_update_weights_exact_flag(med_model, rng):
    Y = np.zeros((18, 2))
    Y[3, 0] = 1.0
    Y[7, 1] = 1.0
    Z = rng.standard_normal((14, 2)) * 0.3
    updated = update_weights(med_model, Y, Z, exact=True)
    W = med_model.reconstruct() + Y @ Z.T
    assert np.allclose(
        updated.s, np.linalg.svd(W, compute_uv=False)[:2], atol=1e-9
    )


def test_update_weights_validation(med_model):
    with pytest.raises(ShapeError):
        update_weights(med_model, np.zeros((5, 1)), np.zeros((14, 1)))
    with pytest.raises(ShapeError):
        update_weights(med_model, np.zeros((18, 1)), np.zeros((9, 1)))
    with pytest.raises(ShapeError):
        update_weights(med_model, np.zeros((18, 2)), np.zeros((14, 1)))


def test_update_order_document_then_term_consistency(rng):
    """§4: 'The order of these steps ... need not follow the ordering
    presented' — when k exceeds the combined rank (so truncation is
    lossless), docs-then-terms and terms-then-docs give the same
    spectrum with the residual-exact updates."""
    from repro.linalg import jacobi_svd
    from repro.core.model import LSIModel
    from repro.text import Vocabulary

    A = rng.standard_normal((18, 5)) @ rng.standard_normal((5, 14))
    U, s, V = jacobi_svd(A)
    k = 8  # rank(A)=5, +1 doc +1 term ≤ 7 < 8 → no truncation loss
    model = LSIModel(
        U[:, :k], s[:k], V[:, :k],
        Vocabulary([f"t{i}" for i in range(18)]).freeze(),
        [f"d{j}" for j in range(14)],
    )
    D = np.zeros((18, 1)); D[[2, 5], 0] = 1.0
    T = np.zeros((1, 14)); T[0, [2, 3]] = 1.0
    T_ext = np.hstack([T, np.zeros((1, 1))])
    D_ext = np.vstack([D, np.zeros((1, 1))])
    a = update_terms(
        update_documents(model, D, ["new-doc"], exact=True),
        T_ext, ["new-term"], exact=True,
    )
    b = update_documents(
        update_terms(model, T, ["new-term"], exact=True),
        D_ext, ["new-doc"], exact=True,
    )
    assert np.allclose(a.s, b.s, atol=1e-8)
    # And both equal the direct SVD of the combined matrix.
    combined = np.vstack([np.hstack([A, D]), T_ext])
    s_ref = np.linalg.svd(combined, compute_uv=False)[:k]
    assert np.allclose(a.s, s_ref, atol=1e-8)
