"""Cluster scaling: 4 shard worker processes vs 1, same checkpoint.

The cluster's performance claim is that sharding the document matrix
across worker *processes* buys real CPU parallelism for the scoring
GEMM + top-k ranking, which a single Python process cannot get from
threads.  This bench serves one synthetic serving-scale checkpoint two
ways — ``workers=1`` (the whole matrix in one process) and
``workers=4`` — and drives both with identical pre-projected query
waves through the real router (scatter, per-shard wire frames, exact
merge).

Worker BLAS is pinned to one thread (the env is inherited by the
spawned processes), so the comparison isolates process-level scaling
rather than racing OpenBLAS's internal pool against the supervisor.

Acceptance: with >= 4 usable cores, the 4-worker cluster sustains
>= 2x the single-worker QPS.  On smaller machines the table still
prints (and parity is still asserted) but the floor is reported, not
enforced — four processes on one core cannot beat one process on one
core.

The replication sweep measures the *other* axis: the same two shard
ranges served at R in {1, 2, 3} replicas, driven by concurrent query
lanes so power-of-two-choices actually has load to spread.  With >= 4
cores, R=2 must sustain >= 1.5x the R=1 read QPS (two extra processes
absorb half of each range's scatters); the sweep is recorded as
``BENCH_cluster_replication.json``.

``BENCH_SMOKE=1`` shrinks the corpus for CI.
"""

import os

# Pin worker BLAS *before* anything imports numpy; spawned shard
# workers inherit this environment.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import asyncio
import json
import pathlib
import tempfile
import time

import numpy as np

from conftest import emit
from obs_export import maybe_export_obs
from repro import obs
from repro.obs.metrics import registry
from repro.cluster import ClusterConfig, ClusterService
from repro.obs.trace_context import TraceContext, trace_scope
from repro.store.checkpoint import write_checkpoint
from repro.store.durable import STORE_LAYOUT

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 12_000 if SMOKE else 60_000
K = 48
M_TERMS = 64
TOP = 10
WAVE = 32  # queries per scatter
WAVES = 12 if SMOKE else 30
WORKER_COUNTS = (1, 4)
MIN_SPEEDUP_AT_4 = 2.0
#: Replication sweep: the same RANGES_HA shard ranges at R replicas each.
RANGES_HA = 2
REPLICATION_COUNTS = (1, 2, 3)
#: Concurrent query lanes — replicas only help when scatters overlap.
HA_CONCURRENCY = 8
MIN_HA_SPEEDUP_AT_2 = 1.5
#: Distributed tracing must stay near-free on the scatter path.
MAX_TRACING_OVERHEAD = 0.05


def _seed_serving_checkpoint(data_dir: str) -> None:
    """A serving-only checkpoint straight from random factors.

    The cluster never touches the raw matrix or the WAL — workers map
    ``base_U``/``base_s``/``model_V``/``base_gw`` and the projection
    metadata, so that is all this checkpoint carries.
    """
    rng = np.random.default_rng(97)
    arrays = {
        "base_U": rng.standard_normal((M_TERMS, K)),
        "base_s": np.sort(rng.random(K) + 0.5)[::-1],
        "model_V": rng.standard_normal((N_DOCS, K)),
        "base_gw": np.ones(M_TERMS),
    }
    meta = {
        "model_scheme": {"local": "tf", "global": "none"},
        "vocabulary": [f"term{i}" for i in range(M_TERMS)],
        "doc_ids": [f"D{j}" for j in range(N_DOCS)],
        "provenance": "svd",
        "epoch": 0,
        "n_documents": N_DOCS,
    }
    write_checkpoint(
        os.path.join(data_dir, STORE_LAYOUT["checkpoints"]), arrays, meta
    )


def _query_waves(k: int, seed: int = 5) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((WAVE, k)) for _ in range(WAVES)]


def _cluster_qps(
    data_dir: str,
    workers: int,
    waves: list[np.ndarray],
    *,
    traced: bool = False,
) -> tuple[float, list]:
    """QPS of one cluster size, plus the first wave's merged results.

    ``traced=True`` gives every wave its own trace context, so each
    scatter mints router spans and carries the trace in its wire
    frames — the full cross-process capture path under measurement.
    """

    async def main() -> tuple[float, list]:
        service = ClusterService(
            data_dir,
            ClusterConfig(workers=workers, hedge=False,
                          worker_timeout_ms=60_000.0),
        )
        await service.start()
        try:
            # Warm-up scatter (page faults, connection setup).
            first = await service.search_many(waves[0], top=TOP)
            assert first.partial is False
            t0 = time.perf_counter()
            for i, wave in enumerate(waves):
                if traced:
                    with trace_scope(TraceContext(trace_id=f"bench-{i}")):
                        result = await service.search_many(wave, top=TOP)
                else:
                    result = await service.search_many(wave, top=TOP)
                assert result.partial is False
            elapsed = time.perf_counter() - t0
            return WAVE * len(waves) / elapsed, first.results
        finally:
            await service.drain()

    return asyncio.run(main())


def test_cluster_throughput_scales_with_workers():
    cores = len(os.sched_getaffinity(0))
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        _seed_serving_checkpoint(data_dir)
        waves = _query_waves(K)

        qps = {}
        reference = None
        rows = [f"{'workers':>8s}  {'QPS':>10s}  {'speedup':>8s}"]
        for workers in WORKER_COUNTS:
            qps[workers], results = _cluster_qps(data_dir, workers, waves)
            # Every cluster size merges to element-identical results.
            if reference is None:
                reference = results
            else:
                assert results == reference
            rows.append(
                f"{workers:>8d}  {qps[workers]:>10.0f}  "
                f"{qps[workers] / qps[WORKER_COUNTS[0]]:>7.2f}x"
            )

    speedup = qps[4] / qps[1]
    rows.append(f"cores available: {cores}")
    emit(
        f"cluster throughput (n={N_DOCS}, k={K}, top={TOP}, "
        f"{WAVES} waves of {WAVE} queries)",
        rows,
    )
    maybe_export_obs(
        "cluster_throughput",
        extra={
            "n_docs": N_DOCS,
            "k": K,
            "cores": cores,
            "qps": {str(w): q for w, q in qps.items()},
            "speedup_4_over_1": speedup,
        },
    )
    if cores >= 4:
        assert speedup >= MIN_SPEEDUP_AT_4, (
            f"4-worker/1-worker QPS = {speedup:.2f}x on {cores} cores, "
            f"need >= {MIN_SPEEDUP_AT_4}x"
        )
    else:
        print(
            f"NOTE: only {cores} core(s) — speedup floor "
            f"({MIN_SPEEDUP_AT_4}x) reported, not enforced: "
            f"{speedup:.2f}x"
        )


def _replicated_qps(
    data_dir: str, replication: int, waves: list[np.ndarray]
) -> tuple[float, list]:
    """Read QPS at one replication factor, plus the warm-up results.

    ``HA_CONCURRENCY`` asyncio lanes issue scatters concurrently —
    sequential waves would never have two requests in flight, so
    power-of-two-choices would have nothing to balance and extra
    replicas would measure as pure overhead.
    """

    async def main() -> tuple[float, list]:
        service = ClusterService(
            data_dir,
            ClusterConfig(
                workers=RANGES_HA * replication,
                replication=replication,
                hedge=False,
                worker_timeout_ms=60_000.0,
            ),
        )
        await service.start()
        try:
            first = await service.search_many(waves[0], top=TOP)
            assert first.partial is False

            async def lane(idx: int) -> None:
                for wave in waves[idx::HA_CONCURRENCY]:
                    result = await service.search_many(wave, top=TOP)
                    assert result.partial is False

            t0 = time.perf_counter()
            await asyncio.gather(
                *(lane(i) for i in range(HA_CONCURRENCY))
            )
            elapsed = time.perf_counter() - t0
            return WAVE * len(waves) / elapsed, first.results
        finally:
            await service.drain()

    return asyncio.run(main())


def test_cluster_replication_read_throughput():
    """Replicated reads scale: R=2 sustains >= 1.5x the R=1 QPS.

    Same checkpoint, same two shard ranges, same query waves — only the
    replica count changes.  Every replication factor must also merge to
    element-identical results (a replica answering for its range is
    indistinguishable from its siblings).
    """
    cores = len(os.sched_getaffinity(0))
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        _seed_serving_checkpoint(data_dir)
        waves = _query_waves(K, seed=11)

        qps = {}
        reference = None
        rows = [f"{'R':>4s}  {'workers':>8s}  {'QPS':>10s}  {'vs R=1':>8s}"]
        for replication in REPLICATION_COUNTS:
            # Worker ids repeat across runs; stale latency medians from
            # the previous run would skew this run's replica ordering.
            registry.reset("cluster.")
            qps[replication], results = _replicated_qps(
                data_dir, replication, waves
            )
            if reference is None:
                reference = results
            else:
                assert results == reference
            rows.append(
                f"{replication:>4d}  {RANGES_HA * replication:>8d}  "
                f"{qps[replication]:>10.0f}  "
                f"{qps[replication] / qps[REPLICATION_COUNTS[0]]:>7.2f}x"
            )

    speedup = qps[2] / qps[1]
    rows.append(f"cores available: {cores}")
    emit(
        f"cluster replication read throughput (n={N_DOCS}, k={K}, "
        f"ranges={RANGES_HA}, {HA_CONCURRENCY} lanes, "
        f"{WAVES} waves of {WAVE} queries)",
        rows,
    )
    snapshot = {
        "n_docs": N_DOCS,
        "k": K,
        "top": TOP,
        "ranges": RANGES_HA,
        "lanes": HA_CONCURRENCY,
        "waves": WAVES,
        "wave_size": WAVE,
        "cores": cores,
        "qps": {str(r): qps[r] for r in REPLICATION_COUNTS},
        "speedup_2_over_1": speedup,
        "floor_2_over_1": MIN_HA_SPEEDUP_AT_2,
        "floor_enforced": cores >= 4,
        "smoke": SMOKE,
    }
    pathlib.Path("BENCH_cluster_replication.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    maybe_export_obs("cluster_replication_throughput", extra=snapshot)
    if cores >= 4:
        assert speedup >= MIN_HA_SPEEDUP_AT_2, (
            f"R=2/R=1 read QPS = {speedup:.2f}x on {cores} cores, "
            f"need >= {MIN_HA_SPEEDUP_AT_2}x"
        )
    else:
        print(
            f"NOTE: only {cores} core(s) — replication floor "
            f"({MIN_HA_SPEEDUP_AT_2}x) reported, not enforced: "
            f"{speedup:.2f}x"
        )


def test_tracing_overhead_under_five_percent():
    """Cross-process trace capture must cost < 5% of the cluster's QPS.

    Baseline and traced runs alternate (best-of-2 each) so machine
    drift — thermal throttling, a noisy CI neighbor — hits both
    configurations, not just whichever ran second.
    """
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        _seed_serving_checkpoint(data_dir)
        waves = _query_waves(K, seed=7)
        prev = obs.enable_tracing(False)
        baseline_runs: list[float] = []
        traced_runs: list[float] = []
        try:
            for _ in range(2):
                obs.enable_tracing(False)
                baseline_runs.append(_cluster_qps(data_dir, 4, waves)[0])
                obs.enable_tracing(True)
                obs.clear_spans()
                traced_runs.append(
                    _cluster_qps(data_dir, 4, waves, traced=True)[0]
                )
            # The traced run really captured spans (not a no-op toggle).
            scatters = [
                s for s in obs.recent_spans()
                if s.name == "cluster.scatter" and s.trace_id
            ]
            assert scatters, "tracing was on but no scatter spans landed"
        finally:
            obs.enable_tracing(prev)
            obs.clear_spans()

    baseline, traced = max(baseline_runs), max(traced_runs)
    overhead = 1.0 - traced / baseline
    emit(
        f"cluster tracing overhead (workers=4, n={N_DOCS}, "
        f"{WAVES} waves of {WAVE} queries, best of 2)",
        [
            f"{'config':>10s}  {'QPS':>10s}",
            f"{'untraced':>10s}  {baseline:>10.0f}",
            f"{'traced':>10s}  {traced:>10.0f}",
            f"overhead: {overhead * 100.0:+.1f}%",
        ],
    )
    maybe_export_obs(
        "cluster_tracing_overhead",
        extra={
            "n_docs": N_DOCS,
            "qps_untraced": baseline,
            "qps_traced": traced,
            "overhead": overhead,
        },
    )
    assert traced >= (1.0 - MAX_TRACING_OVERHEAD) * baseline, (
        f"tracing costs {overhead * 100.0:.1f}% QPS "
        f"({traced:.0f} vs {baseline:.0f}), budget is "
        f"{MAX_TRACING_OVERHEAD * 100.0:.0f}%"
    )
