"""Tests for the synthetic corpus generators."""

import numpy as np
import pytest

from repro.corpus import (
    CrossLanguageSpec,
    SyntheticSpec,
    crosslang_collection,
    ocr_corrupt,
    ocr_corrupt_collection,
    synonym_test,
    topic_collection,
    trec_like_collection,
)


# --------------------------------------------------------------------- #
# topic model
# --------------------------------------------------------------------- #
def test_spec_validation():
    with pytest.raises(ValueError):
        SyntheticSpec(n_topics=0)
    with pytest.raises(ValueError):
        SyntheticSpec(query_synonym_shift=1.5)
    with pytest.raises(ValueError):
        SyntheticSpec(polysemy=-0.1)
    with pytest.raises(ValueError):
        SyntheticSpec(background_rate=1.0)


def test_topic_collection_shape():
    spec = SyntheticSpec(n_topics=3, docs_per_topic=5, queries_per_topic=2)
    col = topic_collection(spec, seed=1)
    assert col.n_documents == 15
    assert col.n_queries == 6
    # every query's relevant set is exactly one topic's documents
    for rel in col.relevance:
        assert len(rel) == 5


def test_topic_collection_deterministic():
    spec = SyntheticSpec(n_topics=2, docs_per_topic=3)
    a = topic_collection(spec, seed=9)
    b = topic_collection(spec, seed=9)
    assert a.documents == b.documents and a.queries == b.queries
    c = topic_collection(spec, seed=10)
    assert a.documents != c.documents


def test_synonyms_share_context_but_not_documents():
    """The structural property LSI exploits: alternate surface forms of
    one concept rarely co-occur in a document."""
    spec = SyntheticSpec(
        n_topics=2, docs_per_topic=20, doc_length=30,
        concepts_per_topic=5, synonyms_per_concept=2,
        background_vocab=0, background_rate=0.0, polysemy=0.0,
    )
    col = topic_collection(spec, seed=3)
    cooccur = 0
    total_docs = 0
    for doc in col.documents:
        words = set(doc.split())
        total_docs += 1
        for w in list(words):
            # counterpart form of the same concept
            if w.endswith("s0") and w[:-1] + "1" in words:
                cooccur += 1
    assert cooccur == 0  # per-document preferred form forbids co-occurrence


def test_no_synonymy_mode():
    spec = SyntheticSpec(n_topics=2, docs_per_topic=3, synonyms_per_concept=1)
    col = topic_collection(spec, seed=0)
    assert all("s0" in w or w.startswith("bg") for w in col.documents[0].split())


def test_query_length_respected():
    spec = SyntheticSpec(n_topics=2, docs_per_topic=3, query_length=4,
                         concepts_per_topic=10)
    col = topic_collection(spec, seed=0)
    assert all(len(q.split()) == 4 for q in col.queries)


# --------------------------------------------------------------------- #
# cross-language
# --------------------------------------------------------------------- #
def test_crosslang_structure():
    xl = crosslang_collection(CrossLanguageSpec(n_topics=3, training_pairs=9,
                                                test_docs_per_language=6), seed=2)
    assert len(xl.combined) == 9
    assert len(xl.english) == len(xl.french) == 6
    assert len(xl.queries_en) == 3
    # Languages have disjoint vocabularies.
    en_words = {w for d in xl.english for w in d.split()}
    fr_words = {w for d in xl.french for w in d.split()}
    assert not en_words & fr_words
    # Combined docs contain both languages.
    both = set(xl.combined[0].split())
    assert any(w.startswith("en") for w in both)
    assert any(w.startswith("fr") for w in both)


def test_crosslang_mates_share_concepts():
    xl = crosslang_collection(seed=5)
    en0 = {w[2:] for w in xl.english[0].split()}
    fr0 = {w[2:] for w in xl.french[0].split()}
    assert en0 == fr0  # identical concept sequences


def test_crosslang_monolingual_collection():
    xl = crosslang_collection(seed=1)
    col = xl.monolingual_collection("en")
    assert col.n_documents == len(xl.english)
    with pytest.raises(ValueError):
        xl.monolingual_collection("de")


def test_crosslang_spec_validation():
    with pytest.raises(ValueError):
        CrossLanguageSpec(n_topics=0)
    with pytest.raises(ValueError):
        CrossLanguageSpec(training_pairs=1)


# --------------------------------------------------------------------- #
# TREC-like
# --------------------------------------------------------------------- #
def test_trec_like_long_queries():
    col = trec_like_collection(n_topics=3, docs_per_topic=4, query_length=50, seed=1)
    assert all(len(q.split()) == 50 for q in col.queries)
    assert col.n_documents == 12


# --------------------------------------------------------------------- #
# OCR noise
# --------------------------------------------------------------------- #
def test_ocr_corrupt_rate():
    text = " ".join(["retrieval"] * 2000)
    out = ocr_corrupt(text, 0.1, seed=7)
    errs = sum(a != b for a, b in zip(text.split(), out.split()))
    assert 140 < errs < 260  # ≈ 200 expected


def test_ocr_corrupt_zero_and_full_rate():
    text = "alpha beta gamma"
    assert ocr_corrupt(text, 0.0, seed=1) == text
    out = ocr_corrupt(text, 1.0, seed=1)
    assert all(a != b for a, b in zip(text.split(), out.split()))


def test_ocr_corrupt_rate_validation():
    with pytest.raises(ValueError):
        ocr_corrupt("x", 1.5)


def test_ocr_corrupt_collection_keeps_judgments(small_collection):
    noisy = ocr_corrupt_collection(small_collection, 0.2, seed=0)
    assert noisy.n_documents == small_collection.n_documents
    assert noisy.relevance == small_collection.relevance
    assert noisy.queries == small_collection.queries
    changed = sum(
        a != b for a, b in zip(noisy.documents, small_collection.documents)
    )
    assert changed > 0


# --------------------------------------------------------------------- #
# synonym test
# --------------------------------------------------------------------- #
def test_synonym_test_structure():
    st = synonym_test(n_items=20, seed=3)
    assert len(st.items) == 20
    for item in st.items:
        assert len(item.alternatives) == 4
        assert 0 <= item.answer < 4
        assert item.correct == item.alternatives[item.answer]
        assert item.stem not in item.alternatives
        # stem and correct answer are forms of the same concept
        stem_concept = item.stem.rsplit("s", 1)[0]
        assert item.correct.rsplit("s", 1)[0] == stem_concept
        # distractors are not
        for i, alt in enumerate(item.alternatives):
            if i != item.answer:
                assert alt.rsplit("s", 1)[0] != stem_concept


def test_synonym_test_deterministic():
    a = synonym_test(n_items=10, seed=4)
    b = synonym_test(n_items=10, seed=4)
    assert a.items == b.items
    assert a.documents == b.documents
