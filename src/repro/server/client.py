"""A small blocking client for the query server (stdlib ``http.client``).

The counterpart to :mod:`repro.server.http`: one *persistent* keep-alive
connection reused across calls, JSON in and out, server-side failures
mapped back onto the library's exception hierarchy (429 →
:class:`ServerOverloadError` with ``reason="queue_full"``, 503 →
``reason="draining"``, 504 → :class:`DeadlineExceededError`, 403 →
:class:`ClusterReadOnlyError` with the server-assigned request id on
``.request_id``, other non-2xx → :class:`ReproError`), so a caller's
retry/backoff logic reads the same whether it drives the engine
in-process or over the wire.

Reusing a connection admits exactly one new failure mode: the server
(or a middlebox) closed it between our calls, so the next request dies
on a socket that was fine when we last used it.  That one case — and
only that one — is retried transparently on a fresh connection.  A
request that failed on a *fresh* connection is never resent: the server
may have executed it (think ``POST /add``), and replaying is the
client's caller's decision, not ours.

>>> client = ServerClient(port=8080)
>>> client.search("blood pressure age", top=5)["results"]
[[3, 0.89, 'M4'], ...]
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from typing import Sequence

from repro.errors import (
    ClusterReadOnlyError,
    DeadlineExceededError,
    ReproError,
    ServerOverloadError,
    UnknownTenantError,
)

__all__ = ["ServerClient"]

#: Errors that mean "the reused socket went stale", eligible for the
#: single transparent retry.  ``BadStatusLine``/``RemoteDisconnected``
#: is the classic half-closed keep-alive race; ``CannotSendRequest`` is
#: httplib's state machine refusing a connection a prior failure left
#: mid-request.  Deliberately narrow: a *timeout* is excluded, because
#: a slow server may still be executing the request, and resending it
#: would not be transparent.
_STALE_ERRORS = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    ConnectionError,
)


class ServerClient:
    """Blocking JSON client for one server address, keep-alive reused."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        *,
        tenant: str | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Default tenant id sent as ``X-Tenant`` with every request;
        #: per-call ``tenant=`` arguments override it.
        self.tenant = tenant
        #: The server-assigned id of the most recent response (its
        #: ``X-Request-Id`` header), successful or not.  Under
        #: concurrent use, "most recent" is whichever thread's response
        #: landed last.
        self.last_request_id: str | None = None
        # One pooled connection *per thread*: http.client connections
        # are single-request state machines, so sharing one across
        # threads interleaves sends and reads.  Thread-local pooling
        # keeps the keep-alive win while making a shared client safe
        # to call from a thread pool.
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's pooled connection plus whether it is fresh."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
            return conn, True
        return conn, False

    def close(self) -> None:
        """Drop this thread's pooled connection (safe to call repeatedly).

        Other threads' connections close when their threads (and the
        thread-local storage holding them) are collected.
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        request_id: str | None = None,
        tenant: str | None = None,
    ) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        effective_tenant = tenant if tenant is not None else self.tenant
        if effective_tenant is not None:
            headers["X-Tenant"] = effective_tenant
        while True:
            conn, fresh = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except _STALE_ERRORS:
                self.close()
                if fresh:
                    # A fresh connection failing is a real failure — and
                    # the server may have executed the request, so
                    # resending it is not ours to decide.
                    raise
                continue  # stale keep-alive reuse: retry once, now fresh
            break
        if response.will_close:
            self.close()
        # The server stamps every response — including 429/503/504 — so
        # a rejected or timed-out request stays correlatable with the
        # server-side trace and slow-query log.
        served_id = response.getheader("X-Request-Id")
        self.last_request_id = served_id
        if (
            path.startswith("/metrics")
            and "text/plain" in (response.getheader("Content-Type") or "")
        ):
            return {"text": raw.decode("utf-8", "replace")}
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {"error": raw.decode("utf-8", "replace")}
        if response.status >= 400:
            suffix = f" [request_id={served_id}]" if served_id else ""
            if response.status == 404 and data.get("unknown_tenant"):
                exc: ReproError = UnknownTenantError(
                    data.get("error", "unknown tenant") + suffix,
                    tenant=data.get("tenant"),
                )
            elif response.status == 429:
                exc = ServerOverloadError(
                    data.get("error", "overloaded") + suffix,
                    reason=data.get("reason", "queue_full"),
                )
            elif response.status == 503:
                exc = ServerOverloadError(
                    data.get("error", "draining") + suffix, reason="draining"
                )
            elif response.status == 504:
                exc = DeadlineExceededError(
                    data.get("error", "deadline exceeded") + suffix
                )
            elif response.status == 403:
                exc = ClusterReadOnlyError(
                    data.get("error", "cluster is read-only") + suffix
                )
            else:
                exc = ReproError(
                    f"server returned {response.status}: "
                    f"{data.get('error', repr(raw[:200]))}{suffix}"
                )
            exc.request_id = served_id
            raise exc
        return data

    # ------------------------------------------------------------------ #
    def search(
        self,
        query: str | Sequence[str],
        *,
        top: int | None = None,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        request_id: str | None = None,
        tenant: str | None = None,
    ) -> dict:
        """Ranked search; ``results`` rows are ``[index, score, doc_id]``.

        ``probes`` asks the server for a probe-bounded ANN scan over
        that many coarse cells; ``exact=True`` forces the exhaustive
        scan even when the server has a default probe count.
        ``tenant`` routes the query on a multi-tenant server (falling
        back to the client's default tenant); an unhosted id raises
        :class:`~repro.errors.UnknownTenantError` (HTTP 404) with the
        server-assigned id on ``.request_id``.  ``request_id`` rides as
        ``X-Request-Id`` and becomes the request's trace id when
        well-formed; either way the server's echo lands in
        :attr:`last_request_id`.
        """
        payload: dict = {"query": query}
        if top is not None:
            payload["top"] = top
        if threshold is not None:
            payload["threshold"] = threshold
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if probes is not None:
            payload["probes"] = probes
        if exact:
            payload["exact"] = True
        return self._request(
            "POST", "/search", payload, request_id=request_id, tenant=tenant
        )

    def search_pairs(
        self,
        query: str | Sequence[str],
        *,
        top: int | None = None,
        threshold: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        tenant: str | None = None,
    ) -> list[tuple[int, float]]:
        """Engine-shaped ``(doc_index, score)`` pairs, for parity checks."""
        data = self.search(
            query,
            top=top,
            threshold=threshold,
            probes=probes,
            exact=exact,
            tenant=tenant,
        )
        return [(int(j), float(score)) for j, score, _ in data["results"]]

    def add(
        self,
        texts: Sequence[str],
        doc_ids: Sequence[str] | None = None,
        *,
        tenant: str | None = None,
    ) -> dict:
        """Live-add documents; returns the new epoch description.

        Against a read-only cluster this raises
        :class:`ClusterReadOnlyError` (HTTP 403) with the
        server-assigned id on ``.request_id`` — typed, so callers can
        redirect the write rather than treat it as a request bug.
        """
        payload: dict = {"texts": list(texts)}
        if doc_ids is not None:
            payload["doc_ids"] = list(doc_ids)
        return self._request("POST", "/add", payload, tenant=tenant)

    def healthz(self) -> dict:
        """The server's liveness/readiness summary."""
        return self._request("GET", "/healthz")

    def tenants(self) -> dict:
        """The tenant registry + quota status (``GET /tenants``)."""
        return self._request("GET", "/tenants")

    def stats(self) -> dict:
        """The server's observability snapshot."""
        return self._request("GET", "/stats")

    def metrics(self) -> dict:
        """The server's metrics-registry dump (fleet-wide on a cluster)."""
        return self._request("GET", "/metrics")

    def metrics_prom(self) -> str:
        """The Prometheus text exposition (``/metrics?format=prom``)."""
        return self._request("GET", "/metrics?format=prom")["text"]

    def trace(self, trace_id: str) -> dict:
        """The assembled trace for one request id (``/trace?id=``)."""
        quoted = urllib.parse.quote(trace_id, safe="")
        return self._request("GET", f"/trace?id={quoted}")
