"""Server throughput: dynamic micro-batching vs the sequential path.

The micro-batcher's claim is that a long-lived service *creates* the
batches PR 1's GEMM kernel rewards: c concurrent single-query clients
become one (c, k) × (k, n) GEMM per batching window instead of c
separate GEMV + ranking passes.  This bench offers the same query load
two ways at concurrency {1, 8, 32}:

* **sequential** — the unbatched per-request path (``engine.search``
  per query), which is what c independent one-shot processes would pay;
* **batched** — the full async service: admission, micro-batching
  window, batched GEMM, per-request ranking.

Acceptance: at c=32 the batched service sustains ≥ 2× the sequential
QPS.  At c=1 batching cannot help (every batch has one request) — the
printed table shows the crossover, and the exported obs blob carries
the ``server.batch_size`` histogram that explains it.
"""

import asyncio
import os
import time

import numpy as np

from conftest import emit
from obs_export import maybe_export_obs
from repro.core.model import LSIModel
from repro.obs.metrics import registry
from repro.retrieval.engine import LSIRetrieval
from repro.server import QueryService, ServerConfig, ServingState
from repro.text.vocabulary import Vocabulary

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 8_000 if SMOKE else 32_000
K = 64
M_TERMS = 300
TOP = 10
CONCURRENCY = (1, 8, 32)
REQUESTS_PER_LEVEL = 192 if SMOKE else 384
MIN_SPEEDUP_AT_32 = 2.0


def _serving_model(seed: int = 321) -> LSIModel:
    """A synthetic serving-scale model built straight from random
    factors — the SVD fit is not what this bench measures."""
    rng = np.random.default_rng(seed)
    vocab = Vocabulary(f"term{i}" for i in range(M_TERMS))
    vocab.freeze()
    return LSIModel(
        U=rng.standard_normal((M_TERMS, K)),
        s=np.sort(rng.random(K) + 0.5)[::-1],
        V=rng.standard_normal((N_DOCS, K)),
        vocabulary=vocab,
        doc_ids=[f"D{j}" for j in range(N_DOCS)],
    )


def _query_stream(n: int, seed: int = 5) -> list[list[str]]:
    """Distinct token-list queries over the model vocabulary (distinct,
    so neither path gets free query-cache hits)."""
    rng = np.random.default_rng(seed)
    return [
        [f"term{t}" for t in rng.choice(M_TERMS, size=4, replace=False)]
        for _ in range(n)
    ]


def _sequential_qps(engine: LSIRetrieval, queries: list[list[str]]) -> float:
    t0 = time.perf_counter()
    for q in queries:
        engine.search(q, top=TOP)
    return len(queries) / (time.perf_counter() - t0)


def _batched_qps(
    state: ServingState, queries: list[list[str]], concurrency: int
) -> float:
    """Drive the service with ``concurrency`` clients issuing the load
    in waves (each wave is c simultaneous single-query requests)."""

    async def main() -> float:
        service = QueryService(
            state,
            ServerConfig(
                max_batch=max(concurrency, 1),
                max_wait_ms=2.0,
                queue_depth=4 * max(concurrency, 1),
            ),
        )
        await service.start()
        # Warm-up wave (index/cache effects identical for both paths).
        await asyncio.gather(
            *(service.search(q, top=TOP) for q in queries[:concurrency])
        )
        t0 = time.perf_counter()
        for start in range(0, len(queries), concurrency):
            wave = queries[start:start + concurrency]
            await asyncio.gather(
                *(service.search(q, top=TOP) for q in wave)
            )
        elapsed = time.perf_counter() - t0
        await service.drain()
        return len(queries) / elapsed

    return asyncio.run(main())


def test_server_throughput_batching_wins_at_high_concurrency():
    model = _serving_model()
    state = ServingState.for_model(model)
    engine = LSIRetrieval(model)
    queries = _query_stream(REQUESTS_PER_LEVEL)

    # Warm both paths once (document index build, BLAS thread spin-up).
    engine.search(queries[0], top=TOP)
    registry.reset("server.")

    seq_qps = _sequential_qps(engine, queries)
    rows = [f"{'c':>4s}  {'sequential QPS':>16s}  {'batched QPS':>14s}  {'speedup':>8s}"]
    speedups = {}
    for concurrency in CONCURRENCY:
        qps = _batched_qps(state, queries, concurrency)
        speedups[concurrency] = qps / seq_qps
        rows.append(
            f"{concurrency:>4d}  {seq_qps:>16.0f}  {qps:>14.0f}  "
            f"{speedups[concurrency]:>7.2f}x"
        )
    hist = registry.histogram("server.batch_size")
    rows.append(
        f"batch size: mean {hist.mean:.1f}, max {hist.max:.0f} "
        f"over {hist.count} batches"
    )
    emit(
        f"server throughput (n={N_DOCS}, k={K}, top={TOP}, "
        f"{REQUESTS_PER_LEVEL} requests/level)",
        rows,
    )
    maybe_export_obs(
        "server_throughput",
        extra={
            "n_docs": N_DOCS,
            "k": K,
            "sequential_qps": seq_qps,
            "speedups": {str(c): s for c, s in speedups.items()},
        },
    )
    # Batches really formed at c=32...
    assert hist.max > 1
    # ...and bought the acceptance-floor throughput win.
    assert speedups[32] >= MIN_SPEEDUP_AT_32, (
        f"batched/sequential = {speedups[32]:.2f}x at c=32, "
        f"need >= {MIN_SPEEDUP_AT_32}x"
    )


if __name__ == "__main__":
    test_server_throughput_batching_wins_at_high_concurrency()
