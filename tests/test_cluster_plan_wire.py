"""Tests for the cluster's plan, wire framing, and shard-worker core.

Everything here is transport-light: plans and frames are exercised over
socketpairs and in-memory readers, and :class:`ShardWorker` is driven
through its :meth:`handle` dispatch directly — the multi-process paths
are covered by ``test_cluster_process.py`` and the CI smoke.
"""

import asyncio
import json
import socket

import numpy as np
import pytest

from repro.cluster.plan import PLAN_FORMAT, ShardPlan
from repro.cluster.wire import (
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)
from repro.cluster.worker import ShardWorker
from repro.core.build import fit_lsi
from repro.errors import ClusterError, ShapeError
from repro.parallel.batch import batch_project_queries
from repro.parallel.sharding import (
    merge_topk,
    shard_bounds,
    sharded_batch_search,
)


# --------------------------------------------------------------------- #
# plan
# --------------------------------------------------------------------- #
def test_plan_matches_canonical_partition():
    plan = ShardPlan.compute(1033, 7, epoch=3, checkpoint="ckpt-00000003")
    assert plan.ranges() == shard_bounds(1033, 7)
    assert plan.n_shards == 7
    assert [s.shard_id for s in plan.shards] == list(range(7))
    # Full, disjoint cover of the document rows, in order.
    assert plan.shards[0].lo == 0
    assert plan.shards[-1].hi == 1033
    for a, b in zip(plan.shards, plan.shards[1:]):
        assert a.hi == b.lo


def test_plan_json_round_trip_is_byte_stable():
    plan = ShardPlan.compute(57, 3, epoch=1, checkpoint="ckpt-00000001")
    text = plan.to_json()
    assert ShardPlan.from_json(text) == plan
    assert ShardPlan.from_json(text).to_json() == text
    # Canonical bytes: independently computed plans agree exactly.
    again = ShardPlan.compute(57, 3, epoch=1, checkpoint="ckpt-00000001")
    assert again.to_json() == text
    assert json.loads(text)["format"] == PLAN_FORMAT


def test_plan_from_json_rejects_tampered_ranges():
    plan = ShardPlan.compute(57, 3)
    data = json.loads(plan.to_json())
    data["shards"][1] = [20, 40]  # not the canonical partition
    with pytest.raises(ClusterError, match="partition"):
        ShardPlan.from_json(json.dumps(data))


def test_plan_from_json_rejects_garbage():
    with pytest.raises(ClusterError):
        ShardPlan.from_json("not json at all")
    with pytest.raises(ClusterError):
        ShardPlan.from_json(json.dumps({"format": "other/9"}))
    with pytest.raises(ClusterError):
        ShardPlan.from_json(json.dumps({"format": PLAN_FORMAT}))


def test_plan_shard_lookup_validates():
    plan = ShardPlan.compute(10, 2)
    assert plan.shard(1).as_pair() == [5, 10]
    with pytest.raises(ShapeError):
        plan.shard(2)


# --------------------------------------------------------------------- #
# wire framing
# --------------------------------------------------------------------- #
def test_blocking_frame_round_trip():
    a, b = socket.socketpair()
    try:
        message = {"op": "score", "queries": [[0.5, -1.25e-17]], "id": 7}
        send_frame(a, message)
        send_frame(a, {"op": "ping"})
        assert recv_frame(b) == message
        assert recv_frame(b) == {"op": "ping"}
        a.close()
        assert recv_frame(b) is None  # clean EOF at a frame boundary
    finally:
        b.close()


def test_blocking_frame_mid_frame_eof_raises():
    a, b = socket.socketpair()
    try:
        frame = encode_frame({"op": "ping"})
        a.sendall(frame[: len(frame) - 2])  # truncate inside the payload
        a.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_frame(b)
    finally:
        b.close()


def test_frame_floats_round_trip_exactly():
    rng = np.random.default_rng(7)
    values = rng.standard_normal(64) * 10.0 ** rng.integers(-12, 12, 64)
    a, b = socket.socketpair()
    try:
        send_frame(a, {"v": values.tolist()})
        got = np.asarray(recv_frame(b)["v"], dtype=np.float64)
        assert np.array_equal(got, values)
    finally:
        a.close()
        b.close()


def test_encode_frame_rejects_bad_messages():
    with pytest.raises(ClusterError):
        encode_frame(["not", "a", "dict"])


def test_oversize_announcement_rejected():
    a, b = socket.socketpair()
    try:
        import struct

        a.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ClusterError, match="desynchronized|cap"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_asyncio_frame_round_trip():
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"op": "info", "id": 3}))
        reader.feed_eof()
        first = await read_frame(reader)
        second = await read_frame(reader)
        return first, second

    first, second = asyncio.run(main())
    assert first == {"op": "info", "id": 3}
    assert second is None


def test_asyncio_frame_mid_frame_eof_raises():
    async def main():
        reader = asyncio.StreamReader()
        frame = encode_frame({"op": "info"})
        reader.feed_data(frame[:-1])
        reader.feed_eof()
        with pytest.raises(ConnectionError, match="mid-frame"):
            await read_frame(reader)

    asyncio.run(main())


# --------------------------------------------------------------------- #
# shard worker core (no sockets)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def cluster_model():
    rng = np.random.default_rng(11)
    vocab = [f"w{i}" for i in range(40)]
    texts = [" ".join(rng.choice(vocab, size=15)) for _ in range(57)]
    return fit_lsi(texts, 12), texts


def test_shard_workers_reproduce_flat_sharded_search(cluster_model):
    model, texts = cluster_model
    queries = texts[:5]
    shards = 3
    top = 7
    flat = sharded_batch_search(model, queries, top=top, shards=shards)

    plan = ShardPlan.compute(model.n_documents, shards)
    workers = [ShardWorker(model, plan.shard(i)) for i in range(shards)]
    Qs = batch_project_queries(model, queries) * model.s
    # Simulate the wire: queries and scores go through JSON.
    Qs_wire = json.loads(json.dumps(Qs.tolist()))
    responses = [
        w.handle({"op": "score", "queries": Qs_wire, "top": top})
        for w in workers
    ]
    for sid, response in enumerate(responses):
        assert response["shard"] == sid
    merged = []
    for qi in range(len(queries)):
        per_shard = [
            [
                (int(i), float(s))
                for i, s in json.loads(json.dumps(r["results"][qi]))
            ]
            for r in responses
        ]
        merged.append(merge_topk(per_shard, top))
    assert merged == flat  # indices, scores, and tie order


def test_shard_worker_indices_are_global(cluster_model):
    model, texts = cluster_model
    plan = ShardPlan.compute(model.n_documents, 3)
    worker = ShardWorker(model, plan.shard(2))
    Qs = (batch_project_queries(model, texts[:1]) * model.s).tolist()
    results = worker.handle({"op": "score", "queries": Qs, "top": 50})
    lo, hi = plan.shard(2).as_pair()
    indices = [i for i, _ in results["results"][0]]
    assert indices and all(lo <= i < hi for i in indices)


def test_shard_worker_ping_info_and_unknown_op(cluster_model):
    model, _ = cluster_model
    plan = ShardPlan.compute(model.n_documents, 2)
    worker = ShardWorker(model, plan.shard(0), epoch=4)
    assert worker.handle({"op": "ping"}) == {
        "ok": True, "shard": 0, "epoch": 4,
    }
    info = worker.handle({"op": "info"})
    assert info["lo"] == 0 and info["hi"] == plan.shard(0).hi
    assert info["n_documents"] == model.n_documents
    assert "error" in worker.handle({"op": "nonsense"})


def test_shard_worker_malformed_queries_answered_not_fatal(cluster_model):
    model, _ = cluster_model
    plan = ShardPlan.compute(model.n_documents, 2)
    worker = ShardWorker(model, plan.shard(0))
    assert "error" in worker.handle({"op": "score"})
    assert "error" in worker.handle({"op": "score", "queries": "nope"})
    wrong_k = [[0.0] * (model.k + 1)]
    assert "error" in worker.handle({"op": "score", "queries": wrong_k})


def test_shard_worker_empty_shard(cluster_model):
    model, _ = cluster_model
    # More shards than documents → some shards are empty.
    plan = ShardPlan.compute(3, 5)
    empty = next(s for s in plan.shards if s.n_rows == 0)
    worker = ShardWorker(model, empty)
    got = worker.score(np.zeros((2, model.k)), 5, None)
    assert got == [[], []]


def test_shard_worker_rejects_out_of_range_shard(cluster_model):
    model, _ = cluster_model
    from repro.cluster.plan import ShardRange

    with pytest.raises(ShapeError):
        ShardWorker(model, ShardRange(0, 0, model.n_documents + 1))
