"""§5.2 ablation — automatic selection of the number of factors.

Regenerates the design-choice study DESIGN.md calls out: do the cheap
spectrum-based selectors (energy fraction, spectral gap) land in the
performance-peak region the §5.2 sweep identifies?  Times the sweep
selector (the expensive reference).
"""

import numpy as np

from conftest import emit
from repro.core import (
    choose_k_by_energy,
    choose_k_by_gap,
    choose_k_by_sweep,
    fit_lsi,
)
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation.metrics import three_point_average_precision
from repro.retrieval import LSIRetrieval


def test_k_selectors_vs_performance_peak(benchmark):
    col = topic_collection(
        SyntheticSpec(
            n_topics=8, docs_per_topic=15, doc_length=40,
            concepts_per_topic=12, synonyms_per_concept=4,
            queries_per_topic=2, query_length=2, query_synonym_shift=0.9,
            polysemy=0.3, background_vocab=40, background_rate=0.3,
        ),
        seed=23,
    )
    kmax = 48
    model = fit_lsi(
        col.documents, k=kmax, scheme="log_entropy", seed=0, method="dense"
    )

    def metric(m):
        eng = LSIRetrieval(m)
        vals = []
        for qi, q in enumerate(col.queries):
            ranked = [j for j, _ in eng.search(q)]
            vals.append(
                three_point_average_precision(ranked, col.relevant(qi))
            )
        return float(np.mean(vals))

    sweep = benchmark(
        choose_k_by_sweep, model, metric,
        candidates=[1, 2, 4, 8, 12, 16, 24, 32, 48],
    )
    energy = choose_k_by_energy(model.s, target=0.7)
    gap = choose_k_by_gap(model.s, min_k=2)

    def metric_at(k):
        return metric(model.truncated(k))

    rows = [
        f"{'selector':<22s}{'chosen k':>9s}{'metric at k':>12s}",
        f"{'sweep (reference)':<22s}{sweep.k:>9d}{metric_at(sweep.k):>12.3f}",
        f"{'energy (70%)':<22s}{energy.k:>9d}{metric_at(energy.k):>12.3f}",
        f"{'spectral gap':<22s}{gap.k:>9d}{metric_at(gap.k):>12.3f}",
        "paper: performance peaks at intermediate k and decays slowly",
    ]
    emit("§5.2 — k-selection heuristics vs the sweep peak", rows)

    best = metric_at(sweep.k)
    # Cheap selectors must land within 15% of the sweep optimum and
    # strictly beat the degenerate extremes.
    for sel in (energy, gap):
        assert metric_at(sel.k) > 0.85 * best
        assert metric_at(sel.k) > metric_at(1)
