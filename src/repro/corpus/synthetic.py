"""Seeded generative topic model with controllable synonymy and polysemy.

The paper's quantitative retrieval claims (§5.1-§5.3) were measured on
MED/CISI-style test collections that exhibit two linguistic phenomena LSI
exploits:

* **synonymy** — "there are usually many ways to express a given concept",
  so relevant documents may share *no* literal terms with the query;
* **polysemy** — "most words have multiple meanings", so literal matches
  hit irrelevant documents.

This generator makes both phenomena explicit and tunable.  Text is
generated from latent *concepts*: each topic owns a set of concepts, each
concept is expressible by several *surface forms* (synonyms), and each
document commits to a per-document preferred form for every concept (so
synonyms share contexts but rarely co-occur — exactly the statistical
structure LSI's truncated SVD recovers).  Polysemous forms are shared
verbatim between concepts of *different* topics.  Queries are generated
from a topic's concepts with an independent choice of surface forms,
controlled by ``query_synonym_shift``: at 1.0 the query prefers forms the
relevant documents *avoided* — the regime where the paper observed LSI's
largest advantage ("when the queries and relevant documents do not share
many words").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.collection import TestCollection
from repro.util.rng import ensure_rng

__all__ = ["SyntheticSpec", "topic_collection"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of the generative topic model.

    Attributes
    ----------
    n_topics:
        Number of latent topics; each query targets one topic and its
        documents are the relevant set.
    concepts_per_topic:
        Latent concepts owned by each topic.
    synonyms_per_concept:
        Surface forms per concept.  1 disables synonymy entirely (the
        lexical baseline then matches LSI's inputs word-for-word).
    docs_per_topic:
        Documents generated for each topic.
    doc_length:
        Tokens per document.
    queries_per_topic:
        Queries generated per topic.
    query_length:
        Tokens per query (the paper's interactive queries are 1-2 words;
        TREC queries are 50+).
    query_synonym_shift:
        Probability that a query token uses a surface form *other than*
        the one its relevant documents prefer (the synonymy gap).
    polysemy:
        Fraction of concepts whose primary surface form is shared with a
        concept of another topic (homograph collisions).
    background_vocab:
        Number of shared background words (function-word noise).
    background_rate:
        Probability a document token is background noise.
    noise_burst:
        Maximum run length of a background word: each noise emission
        repeats the word ``1..noise_burst`` times.  Values > 1 mimic the
        bursty high-frequency noise of natural text that raw term
        weighting is vulnerable to (the §5.1 weighting experiment).
    shuffle_documents:
        Randomly permute document order.  By default documents are laid
        out topic-by-topic; experiments that *split* the collection
        (train-then-stream filtering, sample-then-fold) need every topic
        on both sides of the split and should enable this.
    """

    n_topics: int = 8
    concepts_per_topic: int = 20
    synonyms_per_concept: int = 3
    docs_per_topic: int = 25
    doc_length: int = 60
    queries_per_topic: int = 2
    query_length: int = 6
    query_synonym_shift: float = 0.8
    polysemy: float = 0.2
    background_vocab: int = 30
    background_rate: float = 0.15
    noise_burst: int = 1
    shuffle_documents: bool = False

    def __post_init__(self):
        if self.n_topics < 1 or self.concepts_per_topic < 1:
            raise ValueError("n_topics and concepts_per_topic must be >= 1")
        if self.synonyms_per_concept < 1:
            raise ValueError("synonyms_per_concept must be >= 1")
        if not 0.0 <= self.query_synonym_shift <= 1.0:
            raise ValueError("query_synonym_shift must be in [0, 1]")
        if not 0.0 <= self.polysemy <= 1.0:
            raise ValueError("polysemy must be in [0, 1]")
        if not 0.0 <= self.background_rate < 1.0:
            raise ValueError("background_rate must be in [0, 1)")
        if self.noise_burst < 1:
            raise ValueError("noise_burst must be >= 1")


def _surface_forms(spec: SyntheticSpec, rng: np.random.Generator) -> list[list[list[str]]]:
    """forms[t][c] = list of surface forms for concept c of topic t."""
    forms: list[list[list[str]]] = []
    for t in range(spec.n_topics):
        topic_forms = []
        for c in range(spec.concepts_per_topic):
            topic_forms.append(
                [f"t{t}c{c}s{s}" for s in range(spec.synonyms_per_concept)]
            )
        forms.append(topic_forms)
    # Polysemy: overwrite the primary form of selected concepts with the
    # primary form of a concept from a different topic — the same string
    # then means different things in different topics.
    if spec.n_topics > 1 and spec.polysemy > 0:
        for t in range(spec.n_topics):
            for c in range(spec.concepts_per_topic):
                if rng.random() < spec.polysemy:
                    other_t = int(rng.integers(spec.n_topics - 1))
                    if other_t >= t:
                        other_t += 1
                    other_c = int(rng.integers(spec.concepts_per_topic))
                    forms[t][c][0] = forms[other_t][other_c][0]
    return forms


def _zipf_probs(n: int, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like concept popularity within a topic, randomly permuted."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = 1.0 / ranks
    rng.shuffle(p)
    return p / p.sum()


def topic_collection(
    spec: SyntheticSpec | None = None, *, seed=0, name: str | None = None
) -> TestCollection:
    """Generate a :class:`TestCollection` from the topic model."""
    spec = spec or SyntheticSpec()
    rng = ensure_rng(seed)
    forms = _surface_forms(spec, rng)
    background = [f"bg{w}" for w in range(spec.background_vocab)]

    documents: list[str] = []
    doc_topic: list[int] = []
    for t in range(spec.n_topics):
        concept_probs = _zipf_probs(spec.concepts_per_topic, rng)
        for _d in range(spec.docs_per_topic):
            # Per-document preferred surface form of each concept: this is
            # what makes synonyms co-occur with shared context words while
            # (almost) never co-occurring with each other.
            preferred = rng.integers(
                spec.synonyms_per_concept, size=spec.concepts_per_topic
            )
            tokens: list[str] = []
            while len(tokens) < spec.doc_length:
                if spec.background_vocab and rng.random() < spec.background_rate:
                    word = background[int(rng.integers(len(background)))]
                    run = int(rng.integers(1, spec.noise_burst + 1))
                    tokens.extend([word] * run)
                    continue
                c = int(rng.choice(spec.concepts_per_topic, p=concept_probs))
                tokens.append(forms[t][c][int(preferred[c])])
            del tokens[spec.doc_length:]
            documents.append(" ".join(tokens))
            doc_topic.append(t)

    if spec.shuffle_documents and documents:
        perm = rng.permutation(len(documents))
        documents = [documents[int(i)] for i in perm]
        doc_topic = [doc_topic[int(i)] for i in perm]

    queries: list[str] = []
    relevance: list[set[int]] = []
    rel_by_topic: list[set[int]] = [
        {j for j, dt in enumerate(doc_topic) if dt == t}
        for t in range(spec.n_topics)
    ]
    for t in range(spec.n_topics):
        for _q in range(spec.queries_per_topic):
            tokens = []
            concepts = rng.choice(
                spec.concepts_per_topic,
                size=min(spec.query_length, spec.concepts_per_topic),
                replace=spec.query_length > spec.concepts_per_topic,
            )
            for c in np.atleast_1d(concepts):
                c = int(c)
                if (
                    spec.synonyms_per_concept > 1
                    and rng.random() < spec.query_synonym_shift
                ):
                    # Use a non-primary synonym: typically absent from many
                    # relevant documents (each doc prefers a random form).
                    s = 1 + int(rng.integers(spec.synonyms_per_concept - 1))
                else:
                    s = 0
                tokens.append(forms[t][c][s])
            queries.append(" ".join(tokens))
            relevance.append(set(rel_by_topic[t]))

    return TestCollection(
        documents=documents,
        queries=queries,
        relevance=relevance,
        name=name or f"synthetic-{spec.n_topics}x{spec.docs_per_topic}",
    )
