"""The paper's worked example: 18 terms × 14 (+2) MEDLINE topics.

Everything in §3 and §4 of the paper runs on this sample: Table 2 (the 14
medical topics), Table 3 (the 18 × 14 raw-frequency matrix), the query
*"age of children with blood abnormalities"*, Table 5 (the two update
topics M15/M16), and Figures 4-9.

Transcription note (documented divergences)
-------------------------------------------
Re-deriving the matrix from the Table 2 texts with the stated parsing rule
("keywords appear in more than one topic", no stemming) differs from the
printed Table 3 in three cells:

* *respect* / M8 — printed 1, but M8's text has no "respect" (M9 does:
  "...with respect to generation and culture"; the printed row likely
  slipped one column in typesetting/OCR);
* *culture* / M8 — printed 1 from "blood cultures", which only matches
  "culture" if plurals are collapsed, contradicting the paper's own
  no-stemming statement elsewhere ("studied" in M6 is *not* counted as
  "study").

We canonicalize the **as-printed** matrix (it reproduces the Figure 5
singular vectors to ~0.05 and singular values to ~2%, closer than the
parsed variant), expose the strictly-parsed variant separately via
:func:`med_tdm_parsed`, and assert the exact cell-level relationship in
the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.collection import TestCollection
from repro.sparse.build import from_dense
from repro.text.parser import ParsingRules
from repro.text.tdm import TermDocumentMatrix, build_tdm
from repro.text.vocabulary import Vocabulary

__all__ = [
    "MED_TOPICS",
    "MED_UPDATE_TOPICS",
    "MED_TERMS",
    "MED_DOC_IDS",
    "MED_QUERY",
    "MED_QUERY_TERMS",
    "TABLE3",
    "UPDATE_COLUMNS",
    "med_matrix",
    "med_update_matrix",
    "med_tdm_parsed",
    "med_collection",
    "PAPER_SIGMA_2",
    "PAPER_U2",
    "PAPER_QHAT",
    "LEXICAL_MATCH_SET",
    "LSI_085_SET",
    "MOST_RELEVANT",
]

#: Table 2 — the 14 original medical topics, keyed M1..M14.
MED_TOPICS: dict[str, str] = {
    "M1": "study of depressed patients after discharge with regard to age "
          "of onset and culture",
    "M2": "culture of pleuropneumonia like organisms found in vaginal "
          "discharge of patients",
    "M3": "study showed oestrogen production is depressed by ovarian "
          "irradiation",
    "M4": "cortisone rapidly depressed the secondary rise in oestrogen "
          "output of patients",
    "M5": "boys tend to react to death anxiety by acting out behavior "
          "while girls tended to become depressed",
    "M6": "changes in children's behavior following hospitalization "
          "studied a week after discharge",
    "M7": "surgical technique to close ventricular septal defects",
    "M8": "chromosomal abnormalities in blood cultures and bone marrow "
          "from leukaemic patients",
    "M9": "study of christmas disease with respect to generation and "
          "culture",
    "M10": "insulin not responsible for metabolic abnormalities "
           "accompanying a prolonged fast",
    "M11": "close relationship between high blood pressure and vascular "
           "disease",
    "M12": "mouse kidneys show a decline with respect to age in the "
           "ability to concentrate the urine during a water fast",
    "M13": "fast cell generation in the eye lens epithelium of rats",
    "M14": "fast rise of cerebral oxygen pressure in rats",
}

#: Table 5 — the two fictitious update topics.
MED_UPDATE_TOPICS: dict[str, str] = {
    "M15": "behavior of rats after detected rise in oestrogen",
    "M16": "depressed patients who feel the pressure to fast",
}

#: Table 3 row labels (alphabetical, as printed).
MED_TERMS: list[str] = [
    "abnormalities", "age", "behavior", "blood", "close", "culture",
    "depressed", "discharge", "disease", "fast", "generation", "oestrogen",
    "patients", "pressure", "rats", "respect", "rise", "study",
]

MED_DOC_IDS: list[str] = [f"M{i}" for i in range(1, 15)]

#: The worked query of §3.1 (raw user phrasing; *of*, *children*, *with*
#: are not indexed terms and drop out).
MED_QUERY = "age of children with blood abnormalities"

#: The indexed terms the query reduces to.
MED_QUERY_TERMS = ("age", "blood", "abnormalities")

#: Table 3, exactly as printed (see transcription note above).
TABLE3 = np.array([
    #  M1 M2 M3 M4 M5 M6 M7 M8 M9 10 11 12 13 14
    [0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0],  # abnormalities
    [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0],  # age
    [0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0],  # behavior
    [0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0],  # blood
    [0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0],  # close
    [1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0],  # culture
    [1, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0],  # depressed
    [1, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0],  # discharge
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0],  # disease
    [0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 1],  # fast
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0],  # generation
    [0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],  # oestrogen
    [1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0],  # patients
    [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1],  # pressure
    [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1],  # rats
    [0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0],  # respect
    [0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1],  # rise
    [1, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0],  # study
], dtype=np.float64)

#: Term-frequency columns for M15 and M16 in the Table 3 term order.
#: M15: behavior, oestrogen, rats, rise.  M16: depressed, fast, patients,
#: pressure.
UPDATE_COLUMNS = np.zeros((18, 2))
for _t in ("behavior", "oestrogen", "rats", "rise"):
    UPDATE_COLUMNS[MED_TERMS.index(_t), 0] = 1.0
for _t in ("depressed", "fast", "patients", "pressure"):
    UPDATE_COLUMNS[MED_TERMS.index(_t), 1] = 1.0

# --------------------------------------------------------------------- #
# Ground truth printed in the paper (Figure 5, §3.2, Table 4)
# --------------------------------------------------------------------- #

#: Singular values shown in Figure 5.
PAPER_SIGMA_2 = np.array([3.5919, 2.6471])

#: The 18×2 U₂ block printed in Figure 5 (column signs as printed).
PAPER_U2 = np.array([
    [0.1623, -0.1372], [0.2068, -0.0488], [0.0597, 0.0614],
    [0.1663, -0.1313], [0.0258, -0.1246], [0.4534, 0.0386],
    [0.3579, 0.1710], [0.2931, 0.1426], [0.0690, -0.1576],
    [0.0940, -0.6535], [0.0599, -0.2378], [0.1560, 0.0661],
    [0.4948, 0.1091], [0.0460, -0.3393], [0.0369, -0.4196],
    [0.1797, -0.1456], [0.1087, -0.2126], [0.3814, 0.0941],
])

#: Derived query coordinates printed in Figure 5.
PAPER_QHAT = np.array([0.1491, -0.1199])

#: §3.2 — documents returned by lexical matching for the worked query.
LEXICAL_MATCH_SET = {"M1", "M8", "M10", "M11", "M12"}

#: §3.2 — documents returned by LSI (k=2) at cosine threshold 0.85.
LSI_085_SET = {"M8", "M9", "M12"}

#: §3.2 — the topic the paper highlights as most relevant (christmas
#: disease = childhood haemophilia), missed by lexical matching.
MOST_RELEVANT = "M9"


# --------------------------------------------------------------------- #
# constructors
# --------------------------------------------------------------------- #
def med_matrix() -> TermDocumentMatrix:
    """The canonical (as-printed) Table 3 matrix with its labels."""
    return TermDocumentMatrix(
        from_dense(TABLE3).to_csc(),
        Vocabulary(MED_TERMS).freeze(),
        list(MED_DOC_IDS),
    )


def med_update_matrix() -> TermDocumentMatrix:
    """The 18×2 document block D for topics M15-M16 (Table 5)."""
    return TermDocumentMatrix(
        from_dense(UPDATE_COLUMNS).to_csc(),
        Vocabulary(MED_TERMS).freeze(),
        list(MED_UPDATE_TOPICS),
    )


def med_tdm_parsed(*, include_updates: bool = False) -> TermDocumentMatrix:
    """Re-derive the matrix from the Table 2 texts with the stated rule.

    Differs from :data:`TABLE3` in the single *respect* cell (see module
    docstring).  With ``include_updates`` the Table 5 topics join the
    corpus (and the keyword set is recomputed over all 16 topics, as the
    paper does for the recompute comparison).
    """
    topics = dict(MED_TOPICS)
    if include_updates:
        topics.update(MED_UPDATE_TOPICS)
    return build_tdm(
        list(topics.values()),
        ParsingRules(min_doc_freq=2),
        doc_ids=list(topics.keys()),
    )


def med_collection() -> TestCollection:
    """The example as a test collection with the worked query.

    Relevance follows the paper's discussion: M8, M9, M12 are the
    relevant topics for "age of children with blood abnormalities"
    (M9 most relevant; M7 and M11 only "somewhat related" and thus
    judged non-relevant).
    """
    rel = {MED_DOC_IDS.index(d) for d in LSI_085_SET}
    return TestCollection(
        documents=[MED_TOPICS[d] for d in MED_DOC_IDS],
        queries=[MED_QUERY],
        relevance=[rel],
        doc_ids=list(MED_DOC_IDS),
        query_ids=["Q1"],
        name="med18x14",
    )
