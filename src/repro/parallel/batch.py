"""Batched multi-query scoring.

TREC-style evaluation poses hundreds of queries against one space; the
per-query loop pays the Python and small-matvec overhead hundreds of
times.  Batching stacks the query pseudo-documents into a matrix and
scores all of them with one dense GEMM — the classic loop-to-BLAS
rewrite the optimization guide prescribes — with identical results to
the per-query path (asserted in tests and measured in
``bench_sparse_kernels.py``).

Both this module and the single-query path
(:func:`repro.core.similarity.cosine_similarities`) route through the
same kernel, :func:`repro.serving.kernel.cosine_scores`, served from
the per-model :class:`~repro.serving.index.DocumentIndex` cache — the
single-query case is literally the q=1 row of the batch case, so the
two can never drift apart.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.errors import ShapeError
from repro.serving.index import get_document_index
from repro.serving.topk import topk_indices

__all__ = ["batch_project_queries", "batch_cosine_scores", "batch_search"]


def batch_project_queries(
    model: LSIModel, queries: Sequence[str]
) -> np.ndarray:
    """Eq. 6 for many queries at once: ``(q, k)`` pseudo-documents."""
    if not queries:
        raise ShapeError("need at least one query")
    return np.stack([project_query(model, q) for q in queries])


def batch_cosine_scores(
    model: LSIModel, qhats: np.ndarray
) -> np.ndarray:
    """Cosine of every query against every document: ``(q, n)`` scores.

    Row ``i`` equals
    :func:`repro.core.similarity.cosine_similarities(model, qhats[i])`.
    """
    Q = np.atleast_2d(np.asarray(qhats, dtype=np.float64))
    if Q.shape[1] != model.k:
        raise ShapeError(f"queries have {Q.shape[1]} dims for k={model.k}")
    return get_document_index(model, mode="scaled").batch_scores(Q)


def batch_search(
    model: LSIModel,
    queries: Sequence[str],
    *,
    top: int = 10,
) -> list[list[tuple[int, float]]]:
    """Top-``top`` ``(doc_index, score)`` lists for every query."""
    if top < 1:
        raise ShapeError("top must be >= 1")
    scores = batch_cosine_scores(model, batch_project_queries(model, queries))
    results = []
    for row in scores:
        order = topk_indices(row, top)
        results.append([(int(j), float(row[j])) for j in order])
    return results
