"""End-to-end smoke test for ``python -m repro serve``.

Boots the real server as a subprocess on an ephemeral port, then checks
the acceptance criteria that only hold across a process boundary:

* concurrent ``/search`` responses are element-identical to an
  in-process :class:`~repro.retrieval.engine.LSIRetrieval` built from
  the same corpus and parameters;
* ``/add`` bumps the epoch and every later response reflects it;
* SIGINT drains cleanly — queued work finishes, the process prints
  ``drained cleanly`` and exits 0.

Run directly (CI does)::

    PYTHONPATH=src:benchmarks python benchmarks/server_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.corpus.med import MED_TOPICS
from repro.retrieval.engine import LSIRetrieval
from repro.server import ServerClient, state_from_texts

K = 8
THREADS = 8
ROUNDS = 6  # each thread runs every query this many times

QUERIES = [
    "blood pressure age",
    "oestrogen blood",
    "age of children with blood abnormalities",
    "renal flow",
    "heart rate oxygen consumption",
]


def _corpus() -> list[str]:
    extra = [
        "renal blood flow measurement in anesthetized dogs",
        "oxygen consumption and heart rate during moderate exercise",
        "growth hormone levels in fasting children",
        "spectral analysis of heart rate variability signals",
    ]
    return [MED_TOPICS[f"M{i}"] for i in range(1, 15)] + extra


def _start_server(corpus_path: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--no-obs", "serve", corpus_path,
            "-k", str(K), "--port", "0",
            "--max-batch", "8", "--max-wait-ms", "2", "--queue-depth", "64",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    banner = proc.stdout.readline().strip()
    if "on http://" not in banner:
        proc.kill()
        raise SystemExit(f"unexpected server banner: {banner!r}")
    port = int(banner.rsplit(":", 1)[1])
    print(f"server up: {banner}")
    return proc, port


def main() -> None:
    docs = _corpus()
    # The CLI reads one document per line with ids L1..Ln; build the
    # in-process reference through the same construction path.
    reference = state_from_texts(
        docs, [f"L{i + 1}" for i in range(len(docs))], k=K
    )
    engine = LSIRetrieval(reference.current().model)
    expected = {q: engine.search(q, top=5) for q in QUERIES}

    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = os.path.join(tmp, "corpus.txt")
        with open(corpus_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(line.replace("\n", " ") for line in docs))

        proc, port = _start_server(corpus_path)
        try:
            client = ServerClient(port=port)
            health = client.healthz()
            assert health["n_documents"] == len(docs), health

            # Concurrent load: every thread replays every query and
            # checks element-identical results against the engine.
            def worker(seed: int) -> int:
                rng = np.random.default_rng(seed)
                checked = 0
                for _ in range(ROUNDS):
                    q = QUERIES[rng.integers(len(QUERIES))]
                    got = client.search_pairs(q, top=5)
                    want = [(int(j), float(s)) for j, s in expected[q]]
                    assert [j for j, _ in got] == [j for j, _ in want], (
                        f"doc order diverged for {q!r}: {got} != {want}"
                    )
                    np.testing.assert_allclose(
                        [s for _, s in got], [s for _, s in want],
                        rtol=0, atol=1e-12,
                    )
                    checked += 1
                return checked

            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                total = sum(pool.map(worker, range(THREADS)))
            print(f"parity: {total} concurrent responses identical to engine")

            stats = client.stats()
            batches = stats["metrics"]["counters"].get("server.batches_total", 0)
            assert batches >= 1, stats["metrics"]
            print(f"batching: {total} requests served in {batches} batches")

            # Live update: one /add must bump the epoch everywhere.
            added = client.add(
                ["regression analysis of renal blood flow data"], ["NEW1"]
            )
            assert added["epoch"] == 1 and added["n_documents"] == len(docs) + 1, added
            after = client.search("renal flow", top=5)
            assert after["epoch"] == 1 and after["n_documents"] == len(docs) + 1, after
            print(f"live add: epoch 0 -> {added['epoch']}, "
                  f"{added['n_documents']} documents")

            # Graceful drain on SIGINT.
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, (proc.returncode, out)
            assert "drained cleanly" in out, out
            print("drain: exit 0, drained cleanly")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

    print("server smoke: OK")


if __name__ == "__main__":
    t0 = time.perf_counter()
    main()
    print(f"({time.perf_counter() - t0:.1f}s)")
