"""Tests for k-means and the cluster-pruned near-neighbour index."""

import numpy as np
import pytest

from repro.core.model import LSIModel
from repro.core.similarity import cosine_similarities
from repro.errors import ShapeError
from repro.retrieval.ann import ClusterIndex, kmeans
from repro.text import Vocabulary
from repro.util.rng import ensure_rng


# --------------------------------------------------------------------- #
# k-means
# --------------------------------------------------------------------- #
def test_kmeans_separates_obvious_clusters():
    rng = ensure_rng(1)
    a = rng.normal([0, 0], 0.1, (30, 2))
    b = rng.normal([10, 10], 0.1, (30, 2))
    X = np.vstack([a, b])
    centroids, assignment = kmeans(X, 2, seed=0)
    assert centroids.shape == (2, 2)
    # All of a in one cluster, all of b in the other.
    assert len(set(assignment[:30])) == 1
    assert len(set(assignment[30:])) == 1
    assert assignment[0] != assignment[30]


def test_kmeans_deterministic():
    rng = ensure_rng(2)
    X = rng.standard_normal((40, 3))
    c1, a1 = kmeans(X, 4, seed=5)
    c2, a2 = kmeans(X, 4, seed=5)
    assert np.array_equal(c1, c2) and np.array_equal(a1, a2)


def test_kmeans_k_equals_n():
    X = np.arange(6, dtype=float).reshape(3, 2)
    centroids, assignment = kmeans(X, 3, seed=0)
    assert sorted(assignment.tolist()) == [0, 1, 2]


def test_kmeans_duplicate_points():
    X = np.ones((10, 2))
    centroids, assignment = kmeans(X, 2, seed=0)
    assert np.allclose(centroids, 1.0)


def test_kmeans_validation():
    with pytest.raises(ShapeError):
        kmeans(np.zeros(5), 2)
    with pytest.raises(ShapeError):
        kmeans(np.zeros((3, 2)), 4)
    with pytest.raises(ShapeError):
        kmeans(np.zeros((3, 2)), 0)


# --------------------------------------------------------------------- #
# cluster index
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def big_model():
    rng = ensure_rng(4)
    n, k = 4000, 16
    # Documents concentrated around a handful of latent directions so
    # clustering has structure to find.
    hubs = rng.standard_normal((12, k))
    V = hubs[rng.integers(12, size=n)] + 0.15 * rng.standard_normal((n, k))
    s = np.sort(rng.random(k) + 0.5)[::-1]
    return LSIModel(
        U=np.eye(k),
        s=s,
        V=V,
        vocabulary=Vocabulary([f"t{i}" for i in range(k)]).freeze(),
        doc_ids=[f"d{j}" for j in range(n)],
    )


@pytest.fixture(scope="module")
def index(big_model):
    return ClusterIndex.build(big_model, seed=0)


def test_index_covers_all_documents(index, big_model):
    covered = np.concatenate(index.members)
    assert sorted(covered.tolist()) == list(range(big_model.n_documents))
    assert index.n_clusters == int(np.sqrt(big_model.n_documents))


def test_probe_search_scores_fraction(index, big_model):
    rng = ensure_rng(9)
    qhat = rng.standard_normal(big_model.k)
    results, scored = index.search(qhat, top=10, probes=2)
    assert len(results) == 10
    assert scored < big_model.n_documents * 0.25
    scores = [c for _, c in results]
    assert scores == sorted(scores, reverse=True)


def test_recall_improves_with_probes(index, big_model):
    rng = ensure_rng(10)
    queries = rng.standard_normal((20, big_model.k))
    recall = {
        p: float(np.mean([index.recall_at(q, top=10, probes=p) for q in queries]))
        for p in (1, 4, index.n_clusters)
    }
    assert recall[1] <= recall[4] + 1e-9
    assert recall[4] <= recall[index.n_clusters] + 1e-9
    assert recall[index.n_clusters] == pytest.approx(1.0)
    assert recall[4] > 0.6


def test_full_probe_matches_exact(index, big_model):
    rng = ensure_rng(11)
    qhat = rng.standard_normal(big_model.k)
    exact = cosine_similarities(big_model, qhat)
    true_top = np.argsort(-exact, kind="stable")[:5]
    approx, scored = index.search(qhat, top=5, probes=index.n_clusters)
    assert scored == big_model.n_documents
    assert [j for j, _ in approx] == true_top.tolist()


def test_zero_query(index):
    results, scored = index.search(np.zeros(index.model.k))
    assert results == [] and scored == 0


def test_search_validation(index):
    with pytest.raises(ShapeError):
        index.search(np.ones(3))
    with pytest.raises(ShapeError):
        index.search(np.ones(index.model.k), top=0)


def test_build_validation():
    model = LSIModel(
        np.eye(2), np.ones(2), np.zeros((0, 2)),
        Vocabulary(["a", "b"]).freeze(), [],
    )
    with pytest.raises(ShapeError):
        ClusterIndex.build(model)
