"""Figure 6 / §3.2 — cosine-threshold retrieval vs lexical matching.

Regenerates: the documents within cosine 0.85 (and 0.75) of the worked
query, and the lexical-match contrast set {M1, M8, M10, M11, M12}.
Times the full query→rank→threshold path.
"""

from conftest import emit
from repro.core import project_query, retrieve
from repro.corpus.med import (
    LEXICAL_MATCH_SET,
    MED_QUERY,
    MED_TOPICS,
    MOST_RELEVANT,
)
from repro.retrieval import KeywordRetrieval
from repro.text import ParsingRules, build_tdm


def test_fig6_threshold_retrieval(benchmark, med_model):
    def run():
        qhat = project_query(med_model, MED_QUERY)
        return retrieve(med_model, qhat, threshold=0.85)

    hits85 = benchmark(run)
    qhat = project_query(med_model, MED_QUERY)
    hits75 = retrieve(med_model, qhat, threshold=0.75)

    kw = KeywordRetrieval(
        build_tdm(
            list(MED_TOPICS.values()), ParsingRules(min_doc_freq=2),
            doc_ids=list(MED_TOPICS),
        )
    )
    lexical = {list(MED_TOPICS)[j] for j in kw.matching_documents(MED_QUERY)}

    rows = [
        f"query: {MED_QUERY!r}",
        "LSI  cosine ≥ 0.85: "
        + ", ".join(f"{d} ({c:.2f})" for d, c in hits85)
        + "   [paper: M8 M9 M12]",
        "LSI  cosine ≥ 0.75: "
        + ", ".join(f"{d} ({c:.2f})" for d, c in hits75)
        + "   [paper adds M7 M11]",
        f"lexical matching:  {sorted(lexical)}   [paper: M1 M8 M10 M11 M12]",
    ]
    emit("Figure 6 — threshold retrieval vs lexical matching", rows)

    ids85 = {d for d, _ in hits85}
    # The paper's set-level claims.
    assert lexical == LEXICAL_MATCH_SET
    assert {"M8", "M9", "M12"} <= ids85
    assert MOST_RELEVANT in ids85 and MOST_RELEVANT not in lexical
    assert "M1" not in ids85 and "M10" not in ids85
    assert {"M7", "M11"} <= {d for d, _ in hits75}
