"""Weight-correction blocks for SVD-updating (Eq. 12).

When the term weighting of an already-decomposed matrix changes (global
weights drift as documents are added), the paper folds the change into the
model as a rank-j update::

    W = A_k + Y_j Z_jᵀ

where ``Y_j`` (m × j) holds rows of zeros or rows of the j-th order
identity — it *selects* the j re-weighted term rows — and ``Z_j`` (n × j)
holds "the actual differences between old and new weights for each of the
j terms".  This module assembles those blocks from an old and a new
weighted matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csc import CSCMatrix

__all__ = ["weight_correction_blocks"]


def weight_correction_blocks(
    old: CSCMatrix,
    new: CSCMatrix,
    term_ids: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(Y_j, Z_j)`` such that ``new = old + Y_j Z_jᵀ`` on the rows
    listed in ``term_ids`` (all other rows must be identical).

    Parameters
    ----------
    old, new:
        The previously-decomposed weighted matrix and the re-weighted one,
        same shape.
    term_ids:
        The ``j`` term rows whose weights changed.

    Returns
    -------
    (Y, Z):
        ``Y`` is ``(m, j)`` with ``Y[t_l, l] = 1``; ``Z`` is ``(n, j)``
        with column ``l`` holding ``new_row(t_l) - old_row(t_l)``.
    """
    if old.shape != new.shape:
        raise ShapeError(
            f"old/new shapes differ: {old.shape} vs {new.shape}"
        )
    m, n = old.shape
    term_ids = np.asarray(term_ids, dtype=np.int64).ravel()
    j = term_ids.size
    if j == 0:
        return np.zeros((m, 0)), np.zeros((n, 0))
    if term_ids.min() < 0 or term_ids.max() >= m:
        raise ShapeError("term id out of range in weight correction")
    if np.unique(term_ids).size != j:
        raise ShapeError("term_ids must be distinct")

    # Row extraction via the CSR views (transpose of CSC is CSR of Aᵀ, so
    # convert once).
    old_csr = old.to_csr()
    new_csr = new.to_csr()
    Y = np.zeros((m, j))
    Z = np.zeros((n, j))
    for l, t in enumerate(term_ids.tolist()):
        Y[t, l] = 1.0
        cols_o, vals_o = old_csr.row_slice(t)
        cols_n, vals_n = new_csr.row_slice(t)
        row = np.zeros(n)
        row[cols_n] = vals_n
        row[cols_o] -= vals_o
        Z[:, l] = row
    return Y, Z
