"""Tests for the Lanczos truncated SVD (the SVDPACKC analogue)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import LanczosStats, lanczos_svd, orthogonality_loss
from repro.linalg.counters import OperatorCounter
from repro.sparse import from_dense


def _sparse(rng, m, n, density=0.2):
    d = rng.standard_normal((m, n)) * (rng.random((m, n)) < density)
    return d, from_dense(d).to_csr()


def test_top_triplets_match_reference(rng):
    d, a = _sparse(rng, 60, 45)
    U, s, V, stats = lanczos_svd(a, 6)
    s_ref = np.linalg.svd(d, compute_uv=False)[:6]
    assert np.allclose(s, s_ref, atol=1e-8)
    assert np.allclose(np.abs(np.diag(U.T @ d @ V)), s, atol=1e-7)


def test_singular_vectors_orthonormal(rng):
    _, a = _sparse(rng, 50, 70)
    U, s, V, _ = lanczos_svd(a, 5)
    assert orthogonality_loss(U) < 1e-8
    assert orthogonality_loss(V) < 1e-8


def test_wide_matrix_uses_row_gram(rng):
    d, a = _sparse(rng, 20, 90)
    U, s, V, stats = lanczos_svd(a, 4)
    assert stats.gram_dim == 20
    assert np.allclose(s, np.linalg.svd(d, compute_uv=False)[:4], atol=1e-8)


def test_dense_input_accepted(rng):
    d = rng.standard_normal((30, 25))
    U, s, V, _ = lanczos_svd(d, 3)
    assert np.allclose(s, np.linalg.svd(d, compute_uv=False)[:3], atol=1e-8)


def test_full_rank_request(rng):
    d = rng.standard_normal((10, 6))
    U, s, V, _ = lanczos_svd(d, 6)
    assert np.allclose(s, np.linalg.svd(d, compute_uv=False), atol=1e-8)
    assert np.allclose((U * s) @ V.T, d, atol=1e-7)


def test_rank_deficient_matrix(rng):
    # rank 2 matrix, ask for 4 triplets → two zero singular values
    d = np.outer(rng.standard_normal(12), rng.standard_normal(8))
    d += np.outer(rng.standard_normal(12), rng.standard_normal(8))
    U, s, V, _ = lanczos_svd(d, 4)
    # Zero singular values computed through the squared Gram operator are
    # only accurate to ~eps·sigma_1 after the sqrt, hence the loose cut.
    assert np.sum(s > 1e-6 * s[0]) == 2
    assert np.allclose(s[:2], np.linalg.svd(d, compute_uv=False)[:2], atol=1e-8)


def test_k_validation(rng):
    d = rng.standard_normal((5, 4))
    with pytest.raises(ShapeError):
        lanczos_svd(d, 0)
    with pytest.raises(ShapeError):
        lanczos_svd(d, 5)


def test_reorth_policy_validation(rng):
    with pytest.raises(ValueError):
        lanczos_svd(np.eye(4), 2, reorth="sometimes")


def test_stats_populated(rng):
    _, a = _sparse(rng, 40, 40)
    _, _, _, stats = lanczos_svd(a, 3)
    assert isinstance(stats, LanczosStats)
    assert stats.iterations >= 3
    assert stats.converged == 3
    assert stats.matvecs >= 2 * stats.iterations


def test_operator_counter_measures_cost_model(rng):
    """The paper's cost model: I gram products + trp extraction products."""
    _, a = _sparse(rng, 50, 40)
    counter = OperatorCounter(a)
    _, s, _, stats = lanczos_svd(counter, 4)
    # Every iteration applies A and Aᵀ once; extraction adds ≤ k matvecs.
    assert counter.matvecs + counter.rmatvecs == stats.matvecs
    assert counter.gram_products == stats.iterations
    nonzero_triplets = int(np.sum(s > 0))
    assert counter.matvecs == stats.iterations + nonzero_triplets


def test_deterministic_given_seed(rng):
    _, a = _sparse(rng, 30, 30)
    r1 = lanczos_svd(a, 3, seed=7)
    r2 = lanczos_svd(a, 3, seed=7)
    assert np.array_equal(r1[1], r2[1])
    assert np.array_equal(r1[0], r2[0])


def test_no_reorth_still_finds_top_singular_value(rng):
    """Without reorthogonalization the top triplet is still right (ghost
    eigenvalues corrupt the tail, which is why 'full' is the default)."""
    d, a = _sparse(rng, 40, 30, density=0.5)
    U, s, V, _ = lanczos_svd(a, 1, reorth="none", max_iter=30)
    s_ref = np.linalg.svd(d, compute_uv=False)
    assert s[0] == pytest.approx(s_ref[0], rel=1e-6)
