"""Compressed sparse row (CSR) format — the row-major compute format.

CSR stores a matrix as ``(indptr, indices, data)`` where row ``i`` occupies
the slice ``indptr[i]:indptr[i+1]`` of ``indices`` (column ids) and ``data``
(values).  In LSI the rows are *terms*: global term weights scale CSR rows
in O(nnz), and the Lanczos operator ``x ↦ A(Aᵀx)`` alternates CSR matvec and
CSR transposed matvec.

The kernels live in :mod:`repro.sparse.ops`; this class caches the expanded
per-nonzero row-index array the kernels need, computing it lazily once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ShapeError, SparseFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csc import CSCMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Immutable CSR sparse matrix with vectorized linear-algebra hooks."""

    __slots__ = ("shape", "indptr", "indices", "data", "_row_cache")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        m, n = int(shape[0]), int(shape[1])
        indptr = np.asarray(indptr, dtype=np.int64).ravel()
        indices = np.asarray(indices, dtype=np.int64).ravel()
        data = np.asarray(data, dtype=np.float64).ravel()
        if indptr.size != m + 1:
            raise SparseFormatError(f"indptr must have length m+1={m + 1}, got {indptr.size}")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise SparseFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if indices.size != data.size:
            raise SparseFormatError("indices and data must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise SparseFormatError("column index out of bounds")
        object.__setattr__(self, "shape", (m, n))
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "_row_cache", None)

    def __setattr__(self, name, value):
        raise AttributeError("CSRMatrix is immutable")

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Stored fraction ``nnz / (m·n)``."""
        m, n = self.shape
        return self.nnz / (m * n) if m and n else 0.0

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    def row_nnz(self) -> np.ndarray:
        """Per-row stored-entry counts (length m)."""
        return np.diff(self.indptr)

    def expanded_rows(self) -> np.ndarray:
        """Per-nonzero row index (length nnz), cached after first use.

        This is the scatter target for the bincount-based matvec kernel; it
        costs one ``np.repeat`` and is reused across Lanczos iterations.
        """
        if self._row_cache is None:
            rows = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
            object.__setattr__(self, "_row_cache", rows)
        return self._row_cache

    # ------------------------------------------------------------------ #
    # linear algebra (delegates to the shared kernels)
    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for a dense vector ``x``."""
        from repro.sparse.ops import csr_matvec

        return csr_matvec(self, x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Compute ``Aᵀ @ y`` for a dense vector ``y``."""
        from repro.sparse.ops import csr_rmatvec

        return csr_rmatvec(self, y)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Compute ``A @ X`` for a dense matrix ``X`` (chunked over columns)."""
        from repro.sparse.ops import csr_matmat

        return csr_matmat(self, X)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        """Compute ``Aᵀ @ Y`` for a dense matrix ``Y``."""
        from repro.sparse.ops import csr_rmatmat

        return csr_rmatmat(self, Y)

    def __matmul__(self, other):
        other = np.asarray(other, dtype=np.float64)
        if other.ndim == 1:
            return self.matvec(other)
        if other.ndim == 2:
            return self.matmat(other)
        raise ShapeError("CSRMatrix @ operand must be 1-D or 2-D")

    # ------------------------------------------------------------------ #
    # scaling / reductions used by the weighting subsystem
    # ------------------------------------------------------------------ #
    def scale_rows(self, s: np.ndarray) -> "CSRMatrix":
        """Return ``diag(s) @ A`` — multiply row ``i`` by ``s[i]`` (O(nnz))."""
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != self.shape[0]:
            raise ShapeError(f"scale vector length {s.size} != m={self.shape[0]}")
        return CSRMatrix(
            self.shape, self.indptr, self.indices, self.data * s[self.expanded_rows()]
        )

    def scale_cols(self, s: np.ndarray) -> "CSRMatrix":
        """Return ``A @ diag(s)`` — multiply column ``j`` by ``s[j]`` (O(nnz))."""
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != self.shape[1]:
            raise ShapeError(f"scale vector length {s.size} != n={self.shape[1]}")
        return CSRMatrix(self.shape, self.indptr, self.indices, self.data * s[self.indices])

    def map_data(self, fn) -> "CSRMatrix":
        """Apply ``fn`` to stored values only (``fn`` must map 0 → 0)."""
        new = np.asarray(fn(self.data), dtype=np.float64)
        if new.shape != self.data.shape:
            raise SparseFormatError("map_data callback changed the data length")
        return CSRMatrix(self.shape, self.indptr, self.indices, new)

    def row_sums(self) -> np.ndarray:
        """Vector of row sums, length m."""
        return np.bincount(self.expanded_rows(), weights=self.data, minlength=self.shape[0])

    def col_sums(self) -> np.ndarray:
        """Vector of column sums, length n."""
        return np.bincount(self.indices, weights=self.data, minlength=self.shape[1])

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(column ids, values)`` of row ``i`` as views."""
        if not 0 <= i < self.shape[0]:
            raise ShapeError(f"row {i} out of range for m={self.shape[0]}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def select_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Return the submatrix of the given rows, in the given order."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise ShapeError("row selection out of bounds")
        counts = np.diff(self.indptr)[rows]
        new_indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        # Gather each selected row's nnz range via a flat index expansion.
        starts = self.indptr[rows]
        gather = _ranges(starts, counts)
        return CSRMatrix(
            (rows.size, self.shape[1]), new_indptr, self.indices[gather], self.data[gather]
        )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_coo(self) -> "COOMatrix":
        """Convert to coordinate format."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self.shape, self.expanded_rows(), self.indices, self.data,
            sum_duplicates=False,
        )

    def to_csc(self) -> "CSCMatrix":
        """Convert to compressed sparse column format."""
        return self.to_coo().to_csc()

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float64 array."""
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.expanded_rows(), self.indices] = self.data
        return out

    def transpose(self) -> "CSCMatrix":
        """O(1) transpose: reinterpret the CSR arrays as CSC of Aᵀ."""
        from repro.sparse.csc import CSCMatrix

        m, n = self.shape
        return CSCMatrix((n, m), self.indptr, self.indices, self.data)

    @property
    def T(self) -> "CSCMatrix":
        """The O(1) transpose (see :meth:`transpose`)."""
        return self.transpose()


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Vectorized concatenation of ``[arange(s, s+c) for s, c in zip(...)]``.

    Builds the output as a cumulative sum of unit steps, with a corrective
    jump at the first position of each nonempty range.
    """
    starts = np.asarray(starts, dtype=np.int64).ravel()
    counts = np.asarray(counts, dtype=np.int64).ravel()
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonempty = counts > 0
    st = starts[nonempty]
    ct = counts[nonempty]
    deltas = np.ones(total, dtype=np.int64)
    first_pos = np.zeros(ct.size, dtype=np.int64)
    np.cumsum(ct[:-1], out=first_pos[1:])
    deltas[0] = st[0]
    deltas[first_pos[1:]] = st[1:] - st[:-1] - ct[:-1] + 1
    return np.cumsum(deltas)
