"""Batched multi-query scoring.

TREC-style evaluation poses hundreds of queries against one space; the
per-query loop pays the Python and small-matvec overhead hundreds of
times.  Batching stacks the query pseudo-documents into a matrix and
scores all of them with two dense GEMMs — the classic loop-to-BLAS
rewrite the optimization guide prescribes — with identical results to
the per-query path (asserted in tests and measured in
``bench_sparse_kernels.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.errors import ShapeError

__all__ = ["batch_project_queries", "batch_cosine_scores", "batch_search"]


def batch_project_queries(
    model: LSIModel, queries: Sequence[str]
) -> np.ndarray:
    """Eq. 6 for many queries at once: ``(q, k)`` pseudo-documents."""
    if not queries:
        raise ShapeError("need at least one query")
    return np.stack([project_query(model, q) for q in queries])


def batch_cosine_scores(
    model: LSIModel, qhats: np.ndarray
) -> np.ndarray:
    """Cosine of every query against every document: ``(q, n)`` scores.

    Row ``i`` equals
    :func:`repro.core.similarity.cosine_similarities(model, qhats[i])`.
    """
    Q = np.atleast_2d(np.asarray(qhats, dtype=np.float64))
    if Q.shape[1] != model.k:
        raise ShapeError(f"queries have {Q.shape[1]} dims for k={model.k}")
    docs = model.V * model.s                     # (n, k)
    Qs = Q * model.s                             # (q, k)
    dn = np.sqrt(np.sum(docs**2, axis=1))        # (n,)
    qn = np.sqrt(np.sum(Qs**2, axis=1))          # (q,)
    denom = qn[:, None] * dn[None, :]
    raw = Qs @ docs.T
    out = np.zeros_like(raw)
    ok = denom > 0
    out[ok] = raw[ok] / denom[ok]
    return out


def batch_search(
    model: LSIModel,
    queries: Sequence[str],
    *,
    top: int = 10,
) -> list[list[tuple[int, float]]]:
    """Top-``top`` ``(doc_index, score)`` lists for every query."""
    if top < 1:
        raise ShapeError("top must be >= 1")
    scores = batch_cosine_scores(model, batch_project_queries(model, queries))
    results = []
    for row in scores:
        order = np.argsort(-row, kind="stable")[:top]
        results.append([(int(j), float(row[j])) for j in order])
    return results
