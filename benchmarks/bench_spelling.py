"""§5.4 (Noisy Input) — Kukich's n-gram LSI spelling correction.

Regenerates: the unigram/bigram × correctly-spelled-word matrix, queries
located "at the weighted vector sum of these elements", nearest word
returned as the correction — evaluated over systematic single-edit
corruptions of a medical lexicon.  Times the correction of one batch.
"""

import numpy as np

from conftest import emit
from repro.apps import SpellingCorrector
from repro.corpus.noise import _corrupt_word
from repro.util.rng import ensure_rng

LEXICON = [
    "culture", "discharge", "patients", "pressure", "abnormalities",
    "depressed", "oestrogen", "generation", "behavior", "disease",
    "blood", "study", "respect", "christmas", "hospital", "kidney",
    "insulin", "metabolic", "vascular", "chromosomal", "marrow",
    "cerebral", "oxygen", "epithelium", "irradiation", "cortisone",
]


def test_spelling_correction_accuracy(benchmark):
    corrector = SpellingCorrector(LEXICON, ngram_sizes=(1, 2))
    rng = ensure_rng(5)
    pairs = [
        (_corrupt_word(w, rng), w)
        for w in LEXICON
        for _ in range(4)
    ]

    accuracy = benchmark(corrector.accuracy, pairs)
    top3 = np.mean([
        truth in [w for w, _ in corrector.suggest(wrong, top=3)]
        for wrong, truth in pairs
    ])
    identity = corrector.accuracy([(w, w) for w in LEXICON])

    rows = [
        f"lexicon: {len(LEXICON)} words; {len(pairs)} single-edit "
        "corruptions",
        f"top-1 correction accuracy: {accuracy:.2f}",
        f"top-3 correction accuracy: {top3:.2f}",
        f"correctly spelled words left unchanged: {identity:.2f}",
        "examples: "
        + ", ".join(
            f"{wrong}→{corrector.correct(wrong)}" for wrong, _ in pairs[:5]
        ),
    ]
    emit("§5.4 — n-gram LSI spelling correction", rows)

    assert identity == 1.0
    assert accuracy > 0.7
    assert top3 > accuracy - 1e-9
