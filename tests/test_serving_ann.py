"""The serving-tier coarse quantizer (``repro.serving.ann``) end to end.

Properties the ANN serving tier leans on, pinned at the layer that owns
each one:

* **Determinism** — training is a pure function of ``(coords, seed)``,
  so every checkpoint writer and every test harness reproduces the same
  quantizer bit-for-bit (hypothesis over seeds).
* **Candidate nesting** — more probes can only *add* candidates, which
  is why recall is monotone in ``probes`` and why the probe dial is
  safe to turn at request time.
* **Shard partition** — a worker probing its ``[lo, hi)`` slice sees
  exactly its rows of the single-node candidate set, and merging the
  per-shard rankings reproduces the per-shard exact scan when every
  cell is probed.
* **Fresh tail** — rows folded in after training are always candidates,
  so a quantizer can lag the index without losing documents.
* **Persistence** — the checkpoint round trip (format v2) reopens the
  same quantizer zero-copy; format-1 checkpoints load with no quantizer
  and every query path falls back to the exact scan.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.obs.metrics import registry
from repro.parallel.sharding import merge_topk, shard_bounds
from repro.server import QueryService, ServerConfig
from repro.server.state import ServingState, manager_from_texts
from repro.serving.ann import (
    ANN_ARRAY_NAMES,
    CoarseQuantizer,
    default_n_clusters,
)
from repro.serving.kernel import cosine_scores, row_norms
from repro.serving.topk import ranked_order
from repro.store.checkpoint import MANIFEST_NAME, write_checkpoint
from repro.store.durable import (
    STORE_LAYOUT,
    DurableIndexStore,
    DurableServingState,
    read_store_status,
)
from repro.store.mmap_io import open_checkpoint_ann, open_latest_ann

K = 8
N_DOCS = 300


def _coords(seed: int = 3, n: int = N_DOCS, k: int = K) -> np.ndarray:
    """Hub-structured Σ-scaled coordinates (what quantizers train on)."""
    rng = np.random.default_rng(seed)
    hubs = rng.standard_normal((10, k))
    return (
        hubs[rng.integers(10, size=n)] + 0.2 * rng.standard_normal((n, k))
    )


COORDS = _coords()
NORMS = row_norms(COORDS)


@pytest.fixture(scope="module")
def quantizer() -> CoarseQuantizer:
    return CoarseQuantizer.train(COORDS, 12, seed=0)


# --------------------------------------------------------------------- #
# determinism and nesting (hypothesis)
# --------------------------------------------------------------------- #
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_training_deterministic_given_seed(seed):
    a = CoarseQuantizer.train(COORDS, 8, seed=seed)
    b = CoarseQuantizer.train(COORDS, 8, seed=seed)
    assert np.array_equal(a.centroids, b.centroids)
    assert np.array_equal(a.cell_indptr, b.cell_indptr)
    assert np.array_equal(a.cell_docs, b.cell_docs)


@settings(max_examples=25, deadline=None)
@given(qseed=st.integers(min_value=0, max_value=2**31 - 1))
def test_candidates_nest_as_probes_grow(quantizer, qseed):
    q = np.random.default_rng(qseed).standard_normal(K)
    c = quantizer.n_clusters
    previous: set[int] = set()
    for probes in (1, 2, c // 2, c):
        cells = quantizer.probe_cells(q, probes)
        cand = set(quantizer.candidates(cells).tolist())
        assert previous <= cand, (len(previous), len(cand))
        previous = cand
    # Every cell probed ⇒ every trained document is a candidate.
    assert previous == set(range(quantizer.n_documents))


def test_probe_cells_are_a_stable_prefix(quantizer):
    # The cell ranking is one stable argsort, so probes=p is literally
    # the first p entries of probes=c — the nesting test's mechanism.
    q = np.random.default_rng(5).standard_normal(K)
    all_cells = quantizer.probe_cells(q, quantizer.n_clusters)
    for probes in (1, 3, 7):
        assert np.array_equal(
            quantizer.probe_cells(q, probes), all_cells[:probes]
        )


def test_zero_norm_query_probes_every_cell(quantizer):
    cells = quantizer.probe_cells(np.zeros(K), 1)
    assert np.array_equal(cells, np.arange(quantizer.n_clusters))


# --------------------------------------------------------------------- #
# shard partition
# --------------------------------------------------------------------- #
def _shard_slices(shards: int):
    out = []
    for lo, hi in shard_bounds(N_DOCS, shards):
        coords = np.ascontiguousarray(COORDS[lo:hi])
        out.append((lo, hi, coords, row_norms(coords)))
    return out


def test_shard_candidates_partition_the_single_node_set(quantizer):
    q = np.random.default_rng(7).standard_normal(K)
    for probes in (1, 3, quantizer.n_clusters):
        cells = quantizer.probe_cells(q, probes)
        whole = quantizer.candidates(cells, n_total=N_DOCS).tolist()
        per_shard = [
            quantizer.candidates(
                cells, n_total=N_DOCS, lo=lo, hi=hi
            ).tolist()
            for lo, hi, _, _ in _shard_slices(3)
        ]
        assert [j for part in per_shard for j in part] == whole
        for (lo, hi, _, _), part in zip(_shard_slices(3), per_shard):
            assert all(lo <= j < hi for j in part)


def test_full_probe_shard_merge_equals_per_shard_exact_scan(quantizer):
    # With every cell probed each shard's candidate set is its whole
    # row range, the no-gather shortcut scores the slice in place, and
    # the merged ranking must equal the per-shard exact scan merged the
    # same way — indices, scores, and tie order.
    q = np.random.default_rng(8).standard_normal(K)
    top = 15
    ann_parts, exact_parts = [], []
    for lo, hi, coords, norms in _shard_slices(3):
        pairs, stats = quantizer.select(
            coords, norms, q,
            probes=quantizer.n_clusters, top=top, lo=lo, n_total=N_DOCS,
        )
        assert stats["candidates"] == hi - lo
        ann_parts.append(pairs)
        scores = cosine_scores(coords, q, norms=norms)[0]
        exact_parts.append(
            [(lo + int(j), float(scores[j])) for j in ranked_order(scores, top=top)]
        )
    assert merge_topk(ann_parts, top) == merge_topk(exact_parts, top)


def test_bounded_probe_shard_merge_covers_single_node_candidates(quantizer):
    # Below the full probe count the merged shard ranking ranks exactly
    # the single-node candidate set (scores may differ in the last ulp
    # across BLAS shapes, so compare the index sets).
    q = np.random.default_rng(9).standard_normal(K)
    probes = 3
    whole, _ = quantizer.select(
        COORDS, NORMS, q, probes=probes, top=None, n_total=N_DOCS
    )
    parts = [
        quantizer.select(
            coords, norms, q, probes=probes, top=None, lo=lo, n_total=N_DOCS
        )[0]
        for lo, hi, coords, norms in _shard_slices(3)
    ]
    merged = merge_topk(parts, N_DOCS)
    assert {j for j, _ in merged} == {j for j, _ in whole}


# --------------------------------------------------------------------- #
# fresh tail
# --------------------------------------------------------------------- #
def test_fresh_tail_rows_are_always_candidates():
    covered = N_DOCS - 40
    quantizer = CoarseQuantizer.train(COORDS[:covered], 8, seed=0)
    assert quantizer.n_documents == covered
    q = np.random.default_rng(11).standard_normal(K)
    cells = quantizer.probe_cells(q, 1)
    cand = quantizer.candidates(cells, n_total=N_DOCS)
    assert set(range(covered, N_DOCS)) <= set(cand.tolist())

    # A post-training document that *is* the query direction wins rank 0
    # even at probes=1 — the tail is searched exactly.
    target = COORDS[covered + 5]
    pairs, _ = quantizer.select(
        COORDS, NORMS, target, probes=1, top=3, n_total=N_DOCS
    )
    assert pairs[0][0] == covered + 5


# --------------------------------------------------------------------- #
# persistence: format v2 round trip, format-1 fallback
# --------------------------------------------------------------------- #
def test_checkpoint_round_trip_reopens_identical_quantizer(
    tmp_path, quantizer
):
    write_checkpoint(
        tmp_path, quantizer.to_arrays(), {"ann": {"seed": 0}}
    )
    reopened = open_checkpoint_ann(tmp_path / "ckpt-00000001", mmap=True)
    assert reopened is not None
    assert np.array_equal(reopened.centroids, quantizer.centroids)
    assert np.array_equal(reopened.cell_indptr, quantizer.cell_indptr)
    assert np.array_equal(reopened.cell_docs, quantizer.cell_docs)
    q = np.random.default_rng(13).standard_normal(K)
    assert (
        reopened.select(COORDS, NORMS, q, probes=4, top=10)
        == quantizer.select(COORDS, NORMS, q, probes=4, top=10)
    )


def _texts(n: int = 24) -> list[str]:
    rng = np.random.default_rng(19)
    vocab = [f"w{i}" for i in range(30)]
    return [" ".join(rng.choice(vocab, size=12)) for _ in range(n)]


def _seeded_store(tmp_path, *, ann_clusters):
    texts = _texts()
    ids = [f"D{i}" for i in range(len(texts))]
    data_dir = tmp_path / "store"
    store = DurableIndexStore.initialize(
        data_dir,
        manager_from_texts(texts, ids, k=6),
        ann_clusters=ann_clusters,
    )
    return store, data_dir, texts


def test_durable_checkpoint_trains_and_reports_ann(tmp_path):
    store, data_dir, _ = _seeded_store(tmp_path, ann_clusters=4)
    try:
        quantizer = open_latest_ann(data_dir)
        assert quantizer is not None
        assert quantizer.n_clusters == 4
        assert registry.snapshot()["gauges"]["store.ann_missing"] == 0
        description = read_store_status(data_dir)
        assert description["ann"] is True
        assert description["checkpoints"][-1]["ann_clusters"] == 4
    finally:
        store.close(flush=False)


def test_format1_checkpoint_serves_by_exact_fallback(tmp_path):
    # ``ann_clusters=0`` writes a checkpoint with no quantizer arrays;
    # rewriting its manifest as format 1 makes it byte-for-byte the
    # pre-ANN layout.  Everything must still serve — model mapped, no
    # quantizer, ``store.ann_missing`` raised, probe requests answered
    # by the exact scan.
    store, data_dir, texts = _seeded_store(tmp_path, ann_clusters=0)
    store.close(flush=False)
    ckpt = sorted((data_dir / STORE_LAYOUT["checkpoints"]).iterdir())[-1]
    manifest_path = ckpt / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text("utf-8"))
    assert not any(n in manifest["arrays"] for n in ANN_ARRAY_NAMES)
    manifest["format"] = 1
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

    assert open_latest_ann(data_dir) is None
    assert registry.snapshot()["gauges"]["store.ann_missing"] == 1
    assert read_store_status(data_dir)["ann"] is False

    store = DurableIndexStore.open(data_dir)
    try:
        state = DurableServingState(store)
        snapshot = state.current()
        assert state.ann_enabled is False
        assert snapshot.ann is None
        with pytest.raises(ReproError):
            snapshot.search_ann(np.zeros(snapshot.model.k), probes=1)

        # A probe-bounded request through the service falls back to the
        # exact scan (counted) and answers identically to one without.
        registry.reset("ann.")

        async def main():
            service = QueryService(state, ServerConfig(max_wait_ms=1.0))
            await service.start()
            try:
                with_probes = await service.search(
                    texts[0], top=5, probes=3
                )
                without = await service.search(texts[0], top=5)
            finally:
                await service.drain()
            return with_probes, without

        with_probes, without = asyncio.run(main())
        assert with_probes["results"] == without["results"]
        assert "ann" not in with_probes
        counters = registry.snapshot()["counters"]
        assert counters["ann.exact_fallbacks_total"] >= 1
    finally:
        store.close(flush=False)
