"""The metrics registry: named counters, gauges, and latency histograms.

The repo used to measure its systems claims through three disconnected
mechanisms — :class:`~repro.linalg.counters.OperatorCounter` for the §4
flop model, the process-global ``serving_counters`` dict for the query
fast path, and ad-hoc stopwatches inside each benchmark.  This module is
the one sink they all land in:

* **counters** — monotonically increasing event counts
  (``serving.queries_served``, ``updating.folded_documents``);
* **gauges** — last-written values (``lanczos.matvecs``,
  ``orthogonality.doc_loss``) for quantities that describe the most
  recent run rather than accumulate;
* **histograms** — fixed-bucket latency distributions.  Each
  observation lands in a log-spaced bucket, so the registry can report
  count / sum / p50 / p95 / p99 without storing samples; memory per
  histogram is one small int array regardless of traffic.

All mutation goes through one re-entrant lock, because the sharded
serving path increments counters from a thread pool.  Single increments
are a dict update under an uncontended lock — microseconds, negligible
against the GEMM they instrument.
"""

from __future__ import annotations

import bisect
import threading

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "get_registry",
]

#: Log-spaced latency boundaries (seconds), 1 µs … 60 s, three per decade.
#: Values above the last boundary land in an implicit overflow bucket.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Histogram:
    """Fixed-bucket distribution: count, sum, and interpolated quantiles.

    Observations are bucketed with ``bisect`` over the sorted boundary
    tuple; quantiles are recovered by linear interpolation inside the
    bucket holding the target rank, clamped to the observed min/max so
    small-sample quantiles stay inside the data range.
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, boundaries: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        self.boundaries = tuple(float(b) for b in boundaries)
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation (caller holds the registry lock)."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Interpolated quantile ``q`` in [0, 1] from the bucket counts."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.bucket_counts):
            if c == 0:
                continue
            if cum + c >= target:
                lo = self.boundaries[i - 1] if i > 0 else 0.0
                hi = (
                    self.boundaries[i]
                    if i < len(self.boundaries)
                    else self.boundaries[-1]
                )
                frac = (target - cum) / c
                est = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return min(max(est, self.min), self.max)
            cum += c
        return self.max

    @property
    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary, including the raw buckets for merging."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output (for merging)."""
        hist = cls(tuple(data["boundaries"]))
        hist.bucket_counts = [int(c) for c in data["bucket_counts"]]
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        if hist.count:
            hist.min = float(data["min"])
            hist.max = float(data["max"])
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s buckets into this histogram (same boundaries)."""
        if other.boundaries != self.boundaries:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def inc(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauge(self, name: str, default: float | None = None) -> float | None:
        """Current value of a gauge, or ``default`` when never set."""
        with self._lock:
            return self._gauges.get(name, default)

    def observe(
        self,
        name: str,
        value: float,
        *,
        boundaries: tuple[float, ...] | None = None,
    ) -> None:
        """Record ``value`` into the named histogram.

        ``boundaries`` applies only when the histogram is created by this
        call; later observations reuse the existing bucket layout.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(boundaries or DEFAULT_LATENCY_BUCKETS)
                self._histograms[name] = hist
            hist.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        """The named histogram object, or None (shared, do not mutate)."""
        with self._lock:
            return self._histograms.get(name)

    # ------------------------------------------------------------------ #
    def counters(self, prefix: str = "") -> dict[str, int]:
        """Copy of all counters whose name starts with ``prefix``."""
        with self._lock:
            return {
                k: v for k, v in self._counters.items() if k.startswith(prefix)
            }

    def gauges(self, prefix: str = "") -> dict[str, float]:
        """Copy of all gauges whose name starts with ``prefix``."""
        with self._lock:
            return {
                k: v for k, v in self._gauges.items() if k.startswith(prefix)
            }

    def histogram_sums(self, prefix: str = "") -> dict[str, float]:
        """Accumulated seconds per histogram (the old flat-timer view)."""
        with self._lock:
            return {
                k: h.sum
                for k, h in self._histograms.items()
                if k.startswith(prefix)
            }

    def snapshot(self) -> dict:
        """Nested copy of everything: counters, gauges, histograms."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }

    def reset(self, prefix: str | None = None) -> None:
        """Drop every metric, or only those whose name starts with ``prefix``."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                return
            for store in (self._counters, self._gauges, self._histograms):
                for key in [k for k in store if k.startswith(prefix)]:
                    del store[key]


#: The process-wide registry every instrumented layer writes to.
registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :data:`registry` (function form for monkeypatching)."""
    return registry
