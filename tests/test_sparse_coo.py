"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import COOMatrix, from_dense


def test_construction_and_basic_properties():
    m = COOMatrix((3, 4), [0, 2], [1, 3], [5.0, -2.0])
    assert m.shape == (3, 4)
    assert m.nnz == 2
    assert m.density == pytest.approx(2 / 12)
    dense = m.to_dense()
    assert dense[0, 1] == 5.0 and dense[2, 3] == -2.0
    assert dense.sum() == 3.0


def test_duplicates_are_summed():
    m = COOMatrix((2, 2), [0, 0, 1], [0, 0, 1], [1.0, 2.5, 4.0])
    assert m.nnz == 2
    assert m.to_dense()[0, 0] == 3.5


def test_duplicate_merge_preserves_all_coordinates():
    m = COOMatrix((2, 3), [0, 0, 0, 1], [2, 2, 0, 1], [1, 1, 1, 1])
    dense = m.to_dense()
    assert dense[0, 2] == 2 and dense[0, 0] == 1 and dense[1, 1] == 1


def test_row_out_of_bounds_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix((2, 2), [2], [0], [1.0])


def test_col_out_of_bounds_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix((2, 2), [0], [5], [1.0])


def test_mismatched_lengths_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix((2, 2), [0, 1], [0], [1.0])


def test_negative_shape_rejected():
    with pytest.raises(ShapeError):
        COOMatrix((-1, 2), [], [], [])


def test_immutability():
    m = COOMatrix((2, 2), [0], [0], [1.0])
    with pytest.raises(AttributeError):
        m.shape = (3, 3)


def test_empty_matrix():
    m = COOMatrix((3, 3), [], [], [])
    assert m.nnz == 0
    assert np.array_equal(m.to_dense(), np.zeros((3, 3)))
    assert m.to_csr().nnz == 0
    assert m.to_csc().nnz == 0


def test_zero_dimension():
    m = COOMatrix((0, 5), [], [], [])
    assert m.density == 0.0
    assert m.to_dense().shape == (0, 5)


def test_transpose_is_relabeling():
    d = np.array([[1.0, 0, 2], [0, 3, 0]])
    m = from_dense(d)
    assert np.array_equal(m.T.to_dense(), d.T)
    assert m.T.shape == (3, 2)


def test_round_trip_conversions(rng):
    d = rng.random((7, 5)) * (rng.random((7, 5)) < 0.4)
    m = from_dense(d)
    assert np.allclose(m.to_csr().to_dense(), d)
    assert np.allclose(m.to_csc().to_dense(), d)
    assert np.allclose(m.to_csr().to_coo().to_dense(), d)
    assert np.allclose(m.to_csc().to_coo().to_dense(), d)


def test_map_data():
    m = from_dense(np.array([[4.0, 0], [0, 9.0]]))
    sq = m.map_data(np.sqrt)
    assert np.allclose(sq.to_dense(), [[2.0, 0], [0, 3.0]])


def test_map_data_length_change_rejected():
    m = from_dense(np.eye(2))
    with pytest.raises(SparseFormatError):
        m.map_data(lambda d: d[:1])


def test_eliminate_zeros():
    m = COOMatrix((2, 2), [0, 1], [0, 1], [1e-20, 1.0], sum_duplicates=False)
    cleaned = m.eliminate_zeros(tol=1e-12)
    assert cleaned.nnz == 1
    assert cleaned.to_dense()[1, 1] == 1.0


def test_repr_mentions_shape_and_nnz():
    m = COOMatrix((2, 2), [0], [0], [1.0])
    assert "shape=(2, 2)" in repr(m) and "nnz=1" in repr(m)
