"""Tests for Vocabulary, ParsingRules and parse_corpus."""

import pytest

from repro.errors import VocabularyError
from repro.text import ParsingRules, Vocabulary, parse_corpus


def test_vocabulary_roundtrip():
    v = Vocabulary(["b", "a", "c"])
    assert len(v) == 3
    assert v.id_of("a") == 1
    assert v[0] == "b"
    assert "c" in v and "z" not in v
    assert list(v) == ["b", "a", "c"]


def test_vocabulary_add_is_idempotent():
    v = Vocabulary()
    assert v.add("x") == 0
    assert v.add("x") == 0
    assert len(v) == 1


def test_vocabulary_freeze():
    v = Vocabulary(["a"]).freeze()
    assert v.frozen
    assert v.add("a") == 0  # existing terms still resolvable
    with pytest.raises(VocabularyError):
        v.add("b")


def test_vocabulary_copy_is_unfrozen():
    v = Vocabulary(["a"]).freeze()
    c = v.copy()
    c.add("b")
    assert len(c) == 2 and len(v) == 1


def test_vocabulary_missing_term_raises():
    v = Vocabulary(["a"])
    with pytest.raises(VocabularyError):
        v.id_of("zzz")
    assert v.get("zzz") is None
    assert v.get("zzz", -1) == -1


def test_vocabulary_equality():
    assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
    assert Vocabulary(["a", "b"]) != Vocabulary(["b", "a"])


def test_parse_min_doc_freq():
    texts = ["apple banana", "apple cherry", "durian"]
    parsed = parse_corpus(texts, ParsingRules(min_doc_freq=2))
    assert parsed.vocabulary.to_list() == ["apple"]
    assert parsed.tokens == [["apple"], ["apple"], []]


def test_parse_default_keeps_all_non_stopwords():
    parsed = parse_corpus(["the apple", "a banana"])
    assert sorted(parsed.vocabulary) == ["apple", "banana"]


def test_parse_stopwords_can_be_disabled():
    parsed = parse_corpus(["the apple"], ParsingRules(remove_stopwords=False))
    assert "the" in parsed.vocabulary


def test_parse_max_vocabulary_keeps_most_frequent():
    texts = ["x x x y", "x y z", "z w"]
    parsed = parse_corpus(texts, ParsingRules(max_vocabulary=2))
    assert "x" in parsed.vocabulary
    assert len(parsed.vocabulary) == 2


def test_parse_alphabetical_order():
    parsed = parse_corpus(["zebra apple mango"])
    assert parsed.vocabulary.to_list() == sorted(parsed.vocabulary.to_list())


def test_parse_fixed_vocabulary_mode():
    vocab = Vocabulary(["apple"])
    parsed = parse_corpus(["apple banana", "banana"], vocabulary=vocab)
    assert parsed.tokens == [["apple"], []]
    assert parsed.vocabulary is vocab


def test_parse_all_eliminated_raises():
    with pytest.raises(VocabularyError):
        parse_corpus(["unique words only here"], ParsingRules(min_doc_freq=5))


def test_rules_validation():
    with pytest.raises(ValueError):
        ParsingRules(min_doc_freq=0)
    with pytest.raises(ValueError):
        ParsingRules(min_term_length=0)
    with pytest.raises(ValueError):
        ParsingRules(max_vocabulary=0)


def test_raw_token_count_tracked():
    parsed = parse_corpus(["the cat sat", "a dog ran"])
    assert parsed.n_raw_tokens == 6
    assert parsed.n_documents == 2
