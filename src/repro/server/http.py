"""Minimal HTTP/JSON front end over asyncio streams (stdlib only).

The service speaks just enough HTTP/1.1 for production clients and
``curl``: request line, headers, ``Content-Length`` body, JSON in and
out, one request per connection.  No framework, no dependency — the
parser is ~40 lines over :func:`asyncio.start_server` readers.

Routes
------
``POST /search``  ``{"query": str|[tokens], "top"?, "threshold"?,
    "timeout_ms"?, "probes"?, "exact"?}``
    → ``{"epoch", "n_documents", "results": [[index, score, doc_id], ...],
    "ann"?: {"probes", "cells_probed", "candidates"}}``
    (``probes`` bounds the scan to that many coarse cells; ``exact:
    true`` forces the exhaustive scan over any server default)
``POST /add``     ``{"texts": [str, ...], "doc_ids"?: [str, ...]}``
    → ``{"epoch", "n_documents", "action", "reason"}``
``GET /healthz``  liveness + epoch + queue depth + draining flag
``GET /metrics``  the metrics-registry dump (counters/gauges/hists);
    on a cluster front end the JSON federates every live worker's
    registry, and ``?format=prom`` renders Prometheus text exposition
    with per-worker labels instead
``GET /stats``    the obs-export snapshot (metrics registry + spans +
    slow-query tail)
``GET /trace?id=<trace_id>``  the assembled trace for one request id —
    on a cluster front end this pulls each worker's spans over the
    ``trace`` wire op and merges them with the router's
``GET /tenants``  the tenant registry + quota status on a multi-tenant
    service (registered/resident tenants, pins, admission shares)

Multi-tenant routing: ``/search`` and ``/add`` take the tenant id from
a ``tenant`` body field (preferred) or an ``X-Tenant`` header; omitting
both targets the default/sole tenant.  An id the registry does not host
maps to a typed **404** with ``unknown_tenant: true`` and the offending
``tenant`` in the body; a tenant over its admission share maps to
**429** with ``reason: "tenant_quota"``.

Every request gets a trace id: the value of an ``X-Request-Id`` header
when it looks like an id, a freshly minted one otherwise.  The id is
the request's ``trace_id`` (ambient via
:func:`repro.obs.trace_context.trace_scope` for everything downstream,
including shard workers) and is echoed back as ``X-Request-Id`` on
**every** response — 2xx, 429, 503, 504 alike — so rejected or
timed-out work stays correlatable.

Status mapping: overload → **429**, draining → **503**, expired
deadline → **504**, write against a read-only cluster → **403**
(``read_only: true`` in the body), malformed/failed requests →
**400**, oversized bodies → **413**, unknown routes → **404**.  Overload rejections are
written and the connection closed before any scoring work happens —
that is the backpressure contract.

Connections are **keep-alive**: after a successful (2xx) response the
handler loops back to read the next request on the same socket, so a
client replaying queries pays the TCP handshake once.  Any error
response closes the connection — error paths may leave the stream in an
unknowable state (half-read bodies, oversize payloads), and closing is
the one resynchronization that is always correct.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse

from repro.errors import (
    ClusterReadOnlyError,
    DeadlineExceededError,
    ReproError,
    ServerOverloadError,
    UnknownTenantError,
)
from repro.obs.trace_context import TraceContext, coerce_trace_id, trace_scope
from repro.obs.tracing import span
from repro.server.service import QueryService

__all__ = ["start_http_server", "MAX_BODY_BYTES"]

#: Largest accepted request body; bounds per-connection memory.
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, dict] | None:
    """Parse one request: (method, path, headers, json_body); None on EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ReproError("invalid Content-Length header")
    if length > MAX_BODY_BYTES:
        raise _TooLarge()
    body: dict = {}
    if length:
        payload = await reader.readexactly(length)
        try:
            body = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ReproError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ReproError("request body must be a JSON object")
    return method, path, headers, body


class _TooLarge(Exception):
    """Internal marker: body exceeded :data:`MAX_BODY_BYTES`."""


class PlainText(str):
    """Marker: respond with this string as ``text/plain`` (not JSON)."""


def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload,
    *,
    close: bool = True,
    request_id: str | None = None,
) -> None:
    if isinstance(payload, PlainText):
        body = str(payload).encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    connection = "close" if close else "keep-alive"
    # coerce_trace_id guarantees the id is header-safe (no CR/LF).
    request_header = (
        f"X-Request-Id: {request_id}\r\n" if request_id is not None else ""
    )
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{request_header}"
        f"Connection: {connection}\r\n\r\n"
    ).encode("latin-1")
    writer.write(head + body)


async def _maybe_await(value):
    """Normalize sync (QueryService) vs async (ClusterService) results."""
    if asyncio.iscoroutine(value):
        return await value
    return value


def _tenant_from(headers: dict, body: dict) -> str | None:
    """The request's tenant id: ``tenant`` body field over ``X-Tenant``."""
    tenant = body.get("tenant", headers.get("x-tenant"))
    if tenant is None:
        return None
    if not isinstance(tenant, str) or not tenant.strip():
        raise ReproError("'tenant' must be a non-empty string")
    return tenant.strip()


async def _dispatch(
    service: QueryService, method: str, path: str, headers: dict, body: dict
):
    """Route one parsed request; returns (status, payload)."""
    path, _, query_string = path.partition("?")
    params = urllib.parse.parse_qs(query_string)
    if method == "GET" and path == "/healthz":
        return 200, service.healthz()
    if method == "GET" and path == "/stats":
        return 200, service.stats()
    if method == "GET" and path == "/tenants":
        tenants = getattr(service, "tenants", None)
        if tenants is None:
            return 400, {"error": "this service has no tenant registry"}
        return 200, await _maybe_await(tenants())
    if method == "GET" and path == "/metrics":
        if params.get("format", ["json"])[-1] == "prom":
            prom = getattr(service, "metrics_prom", None)
            if prom is None:
                return 400, {
                    "error": "this service has no Prometheus exposition"
                }
            return 200, PlainText(await _maybe_await(prom()))
        return 200, await _maybe_await(service.metrics())
    if method == "GET" and path == "/trace":
        trace_ids = params.get("id", [])
        if not trace_ids or not trace_ids[-1]:
            return 400, {"error": "missing 'id' query parameter"}
        trace = getattr(service, "trace", None)
        if trace is None:
            return 400, {"error": "this service does not assemble traces"}
        return 200, await _maybe_await(trace(trace_ids[-1]))
    if method == "POST" and path == "/search":
        if "query" not in body:
            return 400, {"error": "missing 'query'"}
        probes = body.get("probes")
        if probes is not None and (
            isinstance(probes, bool)
            or not isinstance(probes, int)
            or probes < 1
        ):
            return 400, {"error": "'probes' must be a positive integer"}
        exact = body.get("exact", False)
        if not isinstance(exact, bool):
            return 400, {"error": "'exact' must be a boolean"}
        result = await service.search(
            body["query"],
            top=body.get("top"),
            threshold=body.get("threshold"),
            timeout_ms=body.get("timeout_ms"),
            probes=probes,
            exact=exact,
            tenant=_tenant_from(headers, body),
        )
        return 200, result
    if method == "POST" and path == "/add":
        texts = body.get("texts")
        if not isinstance(texts, list) or not texts:
            return 400, {"error": "'texts' must be a non-empty list"}
        result = await service.add(
            texts, body.get("doc_ids"), tenant=_tenant_from(headers, body)
        )
        return 200, result
    return 404, {"error": f"no route for {method} {path}"}


async def _handle(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            request_id = None
            try:
                parsed = await _read_request(reader)
                if parsed is None:
                    return
                method, path, headers, body = parsed
                # Honor a well-formed caller id, mint one otherwise; the
                # id doubles as the request's trace_id, ambient for
                # everything downstream of this point.
                request_id = coerce_trace_id(headers.get("x-request-id"))
                with trace_scope(TraceContext(trace_id=request_id)):
                    with span(
                        "http.request",
                        method=method,
                        path=path.partition("?")[0],
                    ) as request_span:
                        request_span.set_attr("request_id", request_id)
                        status, payload = await _dispatch(
                            service, method, path, headers, body
                        )
            except UnknownTenantError as exc:
                # Before ReproError: a tenant the registry does not host
                # is a routing miss (404), not a malformed request.
                status, payload = 404, {
                    "error": str(exc),
                    "unknown_tenant": True,
                    "tenant": exc.tenant,
                }
            except ServerOverloadError as exc:
                status = 503 if exc.reason == "draining" else 429
                payload = {"error": str(exc), "reason": exc.reason}
            except DeadlineExceededError as exc:
                status, payload = 504, {"error": str(exc)}
            except ClusterReadOnlyError as exc:
                # Before ReproError: a write against a read-only cluster
                # is a policy refusal (403), not a malformed request.
                status, payload = 403, {
                    "error": str(exc),
                    "read_only": True,
                }
            except _TooLarge:
                status, payload = 413, {
                    "error": f"body exceeds {MAX_BODY_BYTES} bytes"
                }
            except (ReproError, asyncio.IncompleteReadError) as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # noqa: BLE001 — a request must not kill the server
                status, payload = 500, {"error": repr(exc)}
            # Every response carries the id — a 429/503/504 without one
            # would leave the rejected work uncorrelatable.  A request
            # that died before its headers parsed still gets a fresh id.
            if request_id is None:
                request_id = coerce_trace_id(None)
            if isinstance(payload, dict) and status >= 400:
                payload.setdefault("request_id", request_id)
            # Errors close: the stream may hold a half-read body, and
            # closing is the only resynchronization that is always right.
            close = status >= 400
            _respond(
                writer, status, payload, close=close, request_id=request_id
            )
            await writer.drain()
            if close:
                return
    except ConnectionError:
        pass  # client went away mid-response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def start_http_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080
) -> asyncio.AbstractServer:
    """Bind and start serving; ``port=0`` picks an ephemeral port.

    The bound port is ``server.sockets[0].getsockname()[1]``.  Callers
    own shutdown ordering: close this server (stop accepting), then
    ``await service.drain()`` (finish queued work).
    """
    await service.start()
    return await asyncio.start_server(
        lambda r, w: _handle(service, r, w), host, port
    )
