"""Update-method selection.

"In practice, the difference between folding-in and SVD-updating is
likely to depend on the number of new documents and terms relative to the
number in the original SVD of A.  Thus, we expect SVD-updating to be
especially valuable for rapidly changing databases."  (§3.4)

:func:`plan_update` encodes that trade-off: folding-in while the appended
fraction stays small (its distortion is bounded and its cost is lowest),
SVD-updating once the new material is a substantial fraction of the
collection, and recomputing when the update is so large that the exact
decomposition is no more expensive anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.updating.cost_model import (
    fold_documents_flops,
    recompute_flops,
    svd_update_documents_flops,
)

__all__ = ["UpdatePlan", "plan_update"]


@dataclass(frozen=True)
class UpdatePlan:
    """Chosen method plus the estimates behind the decision.

    Attributes
    ----------
    method:
        ``"fold-in"``, ``"svd-update"`` or ``"recompute"``.
    flops:
        Per-method flop estimates from the Table 7 model.
    new_fraction:
        ``p / n`` — the relative size of the update.
    reason:
        One-line human-readable justification.
    """

    method: str
    flops: dict[str, int]
    new_fraction: float
    reason: str


def plan_update(
    m: int,
    n: int,
    k: int,
    p: int,
    *,
    nnz_per_doc: float = 10.0,
    nnz_existing: int | None = None,
    distortion_budget: float = 0.1,
) -> UpdatePlan:
    """Choose how to add ``p`` documents to an ``(m, n)`` rank-``k`` model.

    Parameters
    ----------
    distortion_budget:
        Maximum tolerated ``p / n``.  Folding-in is allowed while the
        folded fraction stays under this budget (the paper: folding-in is
        fine when ``d ≪ n``); above it, accuracy requires SVD-updating or
        recomputing, picked by estimated flops.
    """
    if min(m, n, k, p) <= 0:
        raise ValueError("m, n, k, p must all be positive")
    nnz_d = int(round(nnz_per_doc * p))
    nnz_a = int(round(nnz_per_doc * n)) if nnz_existing is None else nnz_existing
    flops = {
        "fold-in": fold_documents_flops(m, k, p),
        "svd-update": svd_update_documents_flops(m, n, k, p, nnz_d),
        "recompute": recompute_flops(nnz_a + nnz_d, k),
    }
    frac = p / n
    if frac <= distortion_budget:
        return UpdatePlan(
            "fold-in", flops, frac,
            f"p/n = {frac:.3f} within distortion budget "
            f"{distortion_budget}; folding-in is {flops['svd-update'] // max(flops['fold-in'], 1)}x "
            "cheaper than SVD-updating",
        )
    if flops["svd-update"] < flops["recompute"]:
        return UpdatePlan(
            "svd-update", flops, frac,
            f"p/n = {frac:.3f} exceeds budget; SVD-updating is cheaper "
            "than recomputing and keeps exact orthogonality",
        )
    return UpdatePlan(
        "recompute", flops, frac,
        f"p/n = {frac:.3f}: update is so large that a from-scratch "
        "decomposition costs no more and is exact",
    )
