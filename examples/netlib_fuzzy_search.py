"""NETLIB-style fuzzy code search (§5.4) with composite queries.

Run:  python examples/netlib_fuzzy_search.py

Index a catalogue of numerical routines plus NA-Digest-style articles;
search it the way users ask ("fit a regression line"), by example
("more routines like dgels2"), and with mixed composite queries.
"""

from repro.apps import NetlibSearch
from repro.corpus import netlib_catalogue
from repro.retrieval import CompositeQuery


def main() -> None:
    cat = netlib_catalogue(seed=5)
    search = NetlibSearch.build(cat, k=16, seed=0)
    print(f"indexed {len(cat.names)} routines + {len(cat.digests)} digest "
          "articles")

    # Task-phrased fuzzy queries — none of these words are routine names.
    for query in ("fit regression line", "solve linear equations",
                  "signal frequencies filter"):
        results = search.fuzzy(query, top=3)
        print(f"\nfuzzy {query!r}:")
        for name, cosine in results:
            print(f"  {name:<10s} cos={cosine:.2f}")
        print(f"  (exact-name lookup finds: "
              f"{[search.exact(w) for w in query.split()]})")

    # Query by example.
    example = cat.names[5]
    print(f"\nmore routines like {example}:")
    for name, cosine in search.more_like(example, top=3):
        print(f"  {name:<10s} cos={cosine:.2f}")

    # Composite: "like dgels-family routines, but emphasise sparse
    # storage" — a document example plus free text in one query.
    composite = (
        CompositeQuery(search.model)
        .add_document(cat.names[5], weight=1.0)
        .add_text("sparse storage memory", weight=1.5)
    )
    print("\ncomposite (like", cat.names[5], "+ 'sparse storage memory'):")
    for name, cosine in composite.search(top=4):
        if not name.startswith("digest"):
            print(f"  {name:<10s} cos={cosine:.2f}")


if __name__ == "__main__":
    main()
