"""OCR-style corruption (§5.4, Noisy Input).

Nielsen et al. indexed pen-machine-recognized abstracts with "error rates
... 8.8% at the word level" and found LSI retrieval "was not disrupted".
The corruptor below reproduces that input regime: a configurable fraction
of words is corrupted with character-level edits drawn from a confusion
table of visually similar letter shapes (the classic OCR confusions:
``rn→m``, ``l→1``, ``e→c`` ...) plus generic substitute/delete/insert/
transpose edits.

The mechanism the paper credits for robustness is preserved exactly: a
corrupted word becomes an (often unique) new term, while the *other* words
of the document remain correct and carry the context.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.collection import TestCollection
from repro.util.rng import ensure_rng

__all__ = ["ocr_corrupt", "ocr_corrupt_collection", "OCR_CONFUSIONS"]

#: Visually-confusable character rewrites, applied when present.
OCR_CONFUSIONS: list[tuple[str, str]] = [
    ("rn", "m"), ("m", "rn"), ("cl", "d"), ("d", "cl"),
    ("l", "1"), ("1", "l"), ("o", "0"), ("0", "o"),
    ("e", "c"), ("c", "e"), ("h", "b"), ("b", "h"),
    ("u", "ii"), ("n", "u"), ("u", "n"), ("i", "j"),
    ("f", "t"), ("t", "f"), ("g", "q"), ("s", "5"),
]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _corrupt_word(word: str, rng: np.random.Generator) -> str:
    """Apply one OCR-style edit to ``word``; guaranteed to change it."""
    for _attempt in range(12):
        mode = rng.random()
        if mode < 0.5:
            # Confusion-table rewrite at a random eligible position.
            eligible = [
                (i, src, dst)
                for src, dst in OCR_CONFUSIONS
                for i in range(len(word) - len(src) + 1)
                if word[i : i + len(src)] == src
            ]
            if eligible:
                i, src, dst = eligible[int(rng.integers(len(eligible)))]
                out = word[:i] + dst + word[i + len(src):]
                if out != word:
                    return out
            continue
        if len(word) == 0:
            return word
        pos = int(rng.integers(len(word)))
        if mode < 0.7:  # substitute
            ch = _ALPHABET[int(rng.integers(26))]
            out = word[:pos] + ch + word[pos + 1 :]
        elif mode < 0.8 and len(word) > 1:  # delete
            out = word[:pos] + word[pos + 1 :]
        elif mode < 0.9:  # insert
            ch = _ALPHABET[int(rng.integers(26))]
            out = word[:pos] + ch + word[pos:]
        elif len(word) > 1:  # transpose
            pos = min(pos, len(word) - 2)
            out = word[:pos] + word[pos + 1] + word[pos] + word[pos + 2 :]
        else:
            continue
        if out != word:
            return out
    return word + "x"  # pathological fallback — still a changed surface


def ocr_corrupt(
    text: str, word_error_rate: float = 0.088, *, seed=None
) -> str:
    """Corrupt ``text`` so approximately ``word_error_rate`` of words err.

    The default rate is the paper's 8.8%.
    """
    if not 0.0 <= word_error_rate <= 1.0:
        raise ValueError("word_error_rate must be in [0, 1]")
    rng = ensure_rng(seed)
    words = text.split()
    out = [
        _corrupt_word(w, rng) if rng.random() < word_error_rate else w
        for w in words
    ]
    return " ".join(out)


def ocr_corrupt_collection(
    collection: TestCollection,
    word_error_rate: float = 0.088,
    *,
    seed=0,
) -> TestCollection:
    """Corrupt every document of a collection (queries stay clean —
    the user types the query; only the scanned documents are noisy)."""
    rng = ensure_rng(seed)
    corrupted = [
        ocr_corrupt(doc, word_error_rate, seed=rng) for doc in collection.documents
    ]
    return collection.with_documents(
        corrupted, name=f"{collection.name}-ocr{word_error_rate:g}"
    )
