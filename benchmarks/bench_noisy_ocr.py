"""§5.4 (Noisy Input) — retrieval from OCR-corrupted documents.

Regenerates: Nielsen et al.'s finding that with "error rates ... 8.8% at
the word level, information retrieval performance using LSI was not
disrupted", swept over error rates 0 → 25% with the keyword baseline's
degradation as contrast.  Times the 8.8%-rate experiment.
"""

from conftest import emit
from repro.apps import noisy_retrieval_experiment
from repro.corpus import SyntheticSpec, topic_collection


def test_ocr_degradation_sweep(benchmark):
    col = topic_collection(
        SyntheticSpec(
            n_topics=6, docs_per_topic=15, doc_length=50,
            concepts_per_topic=12, synonyms_per_concept=3,
            queries_per_topic=2, query_length=3, query_synonym_shift=0.5,
            background_vocab=20, background_rate=0.15,
        ),
        seed=17,
    )

    result_088 = benchmark(
        noisy_retrieval_experiment, col, k=12, word_error_rate=0.088, seed=3
    )
    sweep = {0.088: result_088}
    for rate in (0.02, 0.25):
        sweep[rate] = noisy_retrieval_experiment(
            col, k=12, word_error_rate=rate, seed=3
        )

    rows = [f"{'word error':>11s}{'LSI clean':>10s}{'LSI noisy':>10s}"
            f"{'LSI Δ%':>8s}{'kw Δ%':>8s}"]
    for rate in sorted(sweep):
        r = sweep[rate]
        rows.append(
            f"{rate:>11.3f}"
            f"{r['clean']['lsi']['mean_metric']:>10.3f}"
            f"{r['noisy']['lsi']['mean_metric']:>10.3f}"
            f"{r['lsi_degradation_pct']:>+8.1f}"
            f"{r['keyword_degradation_pct']:>+8.1f}"
        )
    rows.append("paper: at 8.8% word error LSI retrieval 'was not disrupted'")
    emit("§5.4 — noisy (OCR) input", rows)

    # Shape claims: at the paper's 8.8% rate LSI keeps ≈ all of its clean
    # performance; heavier corruption hurts more than light corruption.
    assert sweep[0.088]["lsi_degradation_pct"] > -15
    assert (
        sweep[0.25]["noisy"]["lsi"]["mean_metric"]
        <= sweep[0.02]["noisy"]["lsi"]["mean_metric"] + 0.05
    )
