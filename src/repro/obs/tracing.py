"""Wall-clock tracing spans with attributes, nesting, and a ring buffer.

``span("lsi.search", top=10)`` is a context manager that, when tracing
is **enabled**, records a :class:`Span` — name, attributes, start time,
duration, parent linkage — into a bounded in-memory ring buffer and
feeds the duration into the metrics registry as a latency histogram
under the span's name.  Nesting is tracked per thread, so shard workers
each get their own span stack.

Tracing is **disabled by default** and the disabled path is engineered
to be near-free: constructing the context manager allocates one small
object, and enter/exit reduce to a single global flag check each —
``benchmarks/bench_query_fastpath.py`` asserts the per-query cost stays
under 2% of serving time.  Hot paths can therefore stay instrumented
permanently; only processes that opt in (the CLI, benchmarks exporting
observability blobs, tests) pay for capture.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import registry

__all__ = [
    "Span",
    "span",
    "enable_tracing",
    "tracing_enabled",
    "traced",
    "recent_spans",
    "clear_spans",
    "export_spans_jsonl",
]

#: Finished spans retained in memory (newest win).
RING_CAPACITY = 512

_enabled = False
_ring: deque["Span"] = deque(maxlen=RING_CAPACITY)
_ids = itertools.count(1)
_tls = threading.local()


@dataclass
class Span:
    """One finished (or in-flight) traced operation."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start: float  # wall-clock epoch seconds (time.time)
    duration: float = 0.0  # seconds (perf_counter delta)
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready record (attrs coerced to strings when needed)."""
        attrs = {}
        for key, value in self.attrs.items():
            attrs[key] = (
                value
                if isinstance(value, (int, float, str, bool, type(None)))
                else repr(value)
            )
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attrs": attrs,
        }


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class span:
    """Context manager producing one :class:`Span` when tracing is on.

    ``with span("lsi.fit.svd", method="lanczos"): ...`` — attributes are
    arbitrary keyword arguments stored on the span.  On exit the
    duration also lands in the registry histogram named after the span,
    so latency percentiles accumulate without storing samples.  An
    exception inside the block is recorded in the span's attrs
    (``error``) and re-raised; the duration still counts.
    """

    __slots__ = ("_name", "_attrs", "_t0", "_span")

    def __init__(self, name: str, **attrs):
        self._name = name
        self._attrs = attrs
        self._span = None

    def __enter__(self) -> "span":
        if not _enabled:
            return self
        stack = _stack()
        parent = stack[-1] if stack else None
        record = Span(
            name=self._name,
            span_id=next(_ids),
            parent_id=parent.span_id if parent is not None else None,
            depth=len(stack),
            start=time.time(),
            attrs=dict(self._attrs),
        )
        stack.append(record)
        self._span = record
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._span
        if record is None:
            return False
        record.duration = time.perf_counter() - self._t0
        self._span = None
        stack = _stack()
        if stack and stack[-1] is record:
            stack.pop()
        if exc is not None:
            record.attrs["error"] = repr(exc)
        registry.observe(record.name, record.duration)
        _ring.append(record)
        return False

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute discovered mid-block (no-op when disabled)."""
        if self._span is not None:
            self._span.attrs[key] = value


def enable_tracing(on: bool = True) -> bool:
    """Turn span capture on or off; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


def tracing_enabled() -> bool:
    """Whether spans are currently being captured."""
    return _enabled


@contextmanager
def traced(on: bool = True):
    """Scoped tracing toggle (tests, benchmarks): restores prior state."""
    previous = enable_tracing(on)
    try:
        yield
    finally:
        enable_tracing(previous)


def recent_spans(n: int | None = None) -> list[Span]:
    """The newest ``n`` finished spans, oldest first (all when ``None``)."""
    spans = list(_ring)
    return spans if n is None else spans[-n:]


def clear_spans() -> None:
    """Empty the ring buffer (tests, or after an export)."""
    _ring.clear()


def export_spans_jsonl(path, spans: list[Span] | None = None) -> int:
    """Write spans as JSON lines; returns the number written."""
    spans = recent_spans() if spans is None else spans
    with open(path, "w", encoding="utf-8") as fh:
        for record in spans:
            fh.write(json.dumps(record.to_dict()) + "\n")
    return len(spans)
