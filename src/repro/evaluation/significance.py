"""Statistical significance of engine comparisons.

The paper reports mean percent improvements without significance
machinery (standard for its venue and era); a production evaluation
harness needs one.  Two distribution-free paired tests over per-query
metric values are provided:

* the **sign test** (exact binomial on the direction of per-query
  differences) — robust, assumption-free, low power;
* the **paired randomization test** (Fisher permutation on signed
  differences) — the modern IR-community standard.

Both operate on the ``per_query`` vectors produced by
:func:`repro.evaluation.harness.evaluate_run`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.util.rng import ensure_rng

__all__ = ["PairedTestResult", "sign_test", "randomization_test"]


@dataclass(frozen=True)
class PairedTestResult:
    """Outcome of one paired test.

    Attributes
    ----------
    statistic:
        Test-specific statistic (sign test: #positive differences;
        randomization: observed mean difference).
    p_value:
        Two-sided p-value.
    n:
        Number of informative pairs (ties dropped for the sign test).
    """

    test: str
    statistic: float
    p_value: float
    n: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the two-sided p-value is below ``alpha``."""
        return self.p_value < alpha


def _paired(a: Sequence[float], b: Sequence[float]) -> np.ndarray:
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise EvaluationError(
            f"paired tests need equal-length 1-D score lists, got "
            f"{a.shape} vs {b.shape}"
        )
    if a.size == 0:
        raise EvaluationError("no query scores to compare")
    return a - b


def sign_test(a: Sequence[float], b: Sequence[float]) -> PairedTestResult:
    """Exact two-sided sign test on per-query differences ``a - b``."""
    diff = _paired(a, b)
    pos = int(np.sum(diff > 0))
    neg = int(np.sum(diff < 0))
    n = pos + neg
    if n == 0:
        return PairedTestResult("sign", 0.0, 1.0, 0)
    # Two-sided exact binomial tail around n/2.
    k = max(pos, neg)
    tail = sum(comb(n, i) for i in range(k, n + 1)) / 2.0**n
    p = min(1.0, 2.0 * tail)
    return PairedTestResult("sign", float(pos), p, n)


def randomization_test(
    a: Sequence[float],
    b: Sequence[float],
    *,
    rounds: int = 10_000,
    seed=0,
) -> PairedTestResult:
    """Paired randomization (permutation) test on the mean difference.

    Under the null the sign of each per-query difference is arbitrary;
    the p-value is the fraction of random sign assignments whose |mean
    difference| is at least the observed one (with the +1 smoothing that
    keeps the estimate valid).
    """
    if rounds < 1:
        raise EvaluationError("rounds must be >= 1")
    diff = _paired(a, b)
    observed = abs(float(diff.mean()))
    rng = ensure_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(rounds, diff.size))
    means = np.abs((signs * diff).mean(axis=1))
    p = (1.0 + float(np.sum(means >= observed - 1e-15))) / (rounds + 1.0)
    return PairedTestResult(
        "randomization", float(diff.mean()), min(1.0, p), int(diff.size)
    )
