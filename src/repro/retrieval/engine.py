"""The LSI retrieval engine and the engine protocol.

Both engines (LSI here, keyword in :mod:`repro.retrieval.keyword`) expose
the same surface — ``scores(query)`` and ``search(query, top=, threshold=)``
returning ``(doc_index, score)`` pairs — so the evaluation harness and the
benchmark suite treat them interchangeably.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.build import fit_lsi
from repro.core.model import LSIModel
from repro.core.query import project_counts, query_counts
from repro.obs.tracing import span
from repro.serving.index import get_document_index
from repro.serving.querycache import QueryVectorCache
from repro.serving.topk import ranked_pairs
from repro.text.parser import ParsingRules
from repro.weighting.schemes import WeightingScheme

__all__ = ["RetrievalEngine", "LSIRetrieval"]


@runtime_checkable
class RetrievalEngine(Protocol):
    """What the evaluation harness needs from an engine."""

    name: str

    @property
    def n_documents(self) -> int:
        """Documents the engine can return."""
        ...

    def scores(self, query) -> np.ndarray:
        """Score every document for ``query`` (length n)."""
        ...

    def search(self, query, *, top=None, threshold=None):
        """Ranked, optionally filtered ``(doc_index, score)`` pairs."""
        ...


class LSIRetrieval:
    """Retrieval through a fitted LSI model (Eq. 6 + cosine ranking).

    Queries run on the serving fast path: document coordinates and norms
    come from the per-model :class:`~repro.serving.index.DocumentIndex`
    cache, projected query vectors are memoized in an LRU keyed on the
    query's normalized token counts (``query_cache_size`` entries; 0
    disables), and top-z selection uses ``argpartition`` with output
    element-identical to a full stable sort.
    """

    name = "lsi"

    def __init__(
        self,
        model: LSIModel,
        *,
        mode: str = "scaled",
        query_cache_size: int = 256,
    ):
        self.model = model
        self.mode = mode
        self._query_cache = QueryVectorCache(query_cache_size)
        self._query_cache_model = model

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        k: int,
        *,
        scheme: WeightingScheme | str | None = None,
        rules: ParsingRules | None = None,
        doc_ids: Sequence[str] | None = None,
        method: str = "auto",
        seed=0,
        mode: str = "scaled",
    ) -> "LSIRetrieval":
        model = fit_lsi(
            texts, k, scheme=scheme, rules=rules, doc_ids=doc_ids,
            method=method, seed=seed,
        )
        return cls(model, mode=mode)

    @property
    def n_documents(self) -> int:
        """Documents in the underlying model."""
        return self.model.n_documents

    @property
    def k(self) -> int:
        """Number of factors in the underlying model."""
        return self.model.k

    # ------------------------------------------------------------------ #
    def query_vector(self, query) -> np.ndarray:
        """The query's k-space pseudo-document (Eq. 6), LRU-memoized.

        The cache key is the query's normalized token counts, so
        re-ordered or re-tokenized duplicates of a repeated query hit
        the same entry.  A model swap on this engine clears the cache.
        """
        with span("lsi.project"):
            if self._query_cache_model is not self.model:
                self._query_cache.clear()
                self._query_cache_model = self.model
            counts = query_counts(self.model, query)
            key = QueryVectorCache.key_from_counts(counts)
            qhat = self._query_cache.get(key)
            if qhat is None:
                qhat = project_counts(self.model, counts)
                self._query_cache.put(key, qhat)
            return qhat

    def scores(self, query) -> np.ndarray:
        """Cosine of the query against every document (length n)."""
        qhat = self.query_vector(query)
        if not np.any(qhat):
            return np.zeros(self.n_documents)
        return self._index().scores(qhat)

    def scores_for_vector(self, qhat: np.ndarray) -> np.ndarray:
        """Scores for an externally supplied k-space vector (feedback)."""
        return self._index().scores(qhat)

    def _index(self):
        """The cached document index for the engine's current model."""
        return get_document_index(self.model, mode=self.mode)

    def search(
        self,
        query,
        *,
        top: int | None = None,
        threshold: float | None = None,
    ) -> list[tuple[int, float]]:
        """Ranked ``(doc_index, score)`` pairs, filtered per §3.1.

        Both filters are applied in NumPy before any pairs materialize;
        the ranking is element-identical to the historical full stable
        sort, including tie order.
        """
        with span("lsi.search", top=top, docs=self.n_documents):
            s = self.scores(query)
            return ranked_pairs(s, top=top, threshold=threshold)

    def with_k(self, k: int) -> "LSIRetrieval":
        """Engine over the same model truncated to ``k`` factors (for the
        §5.2 choosing-k sweeps — one decomposition, many k values)."""
        return LSIRetrieval(self.model.truncated(k), mode=self.mode)
