"""Shared fixtures and report helpers for the benchmark suite.

Every bench both *times* its core computation (pytest-benchmark fixture)
and *prints* the rows/series of the paper artifact it regenerates, so a
``pytest benchmarks/ --benchmark-only -s`` run shows the reproduction
next to the timing table.  Shape claims (who wins, direction of effects)
are asserted, so a silent regression fails the suite rather than merely
changing printed numbers.
"""

from __future__ import annotations

import sys

import pytest

from repro.core import fit_lsi_from_tdm
from repro.corpus import SyntheticSpec, med_matrix, topic_collection


def emit(title: str, lines) -> None:
    """Print a labelled block to real stdout (visible under -s)."""
    print(f"\n=== {title} ===", file=sys.stderr)
    for line in lines:
        print(line, file=sys.stderr)


@pytest.fixture(scope="session")
def med_tdm():
    return med_matrix()


@pytest.fixture(scope="session")
def med_model(med_tdm):
    return fit_lsi_from_tdm(med_tdm, 2)


@pytest.fixture(scope="session")
def synonymy_collection():
    """The §5.1 evaluation collection: short queries, strong synonymy."""
    return topic_collection(
        SyntheticSpec(
            n_topics=8,
            docs_per_topic=20,
            doc_length=40,
            concepts_per_topic=15,
            synonyms_per_concept=4,
            queries_per_topic=3,
            query_length=2,
            query_synonym_shift=0.9,
            polysemy=0.25,
            background_vocab=40,
            background_rate=0.25,
        ),
        seed=7,
        name="synthetic-MED-like",
    )
