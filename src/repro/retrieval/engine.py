"""The LSI retrieval engine and the engine protocol.

Both engines (LSI here, keyword in :mod:`repro.retrieval.keyword`) expose
the same surface — ``scores(query)`` and ``search(query, top=, threshold=)``
returning ``(doc_index, score)`` pairs — so the evaluation harness and the
benchmark suite treat them interchangeably.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.build import fit_lsi
from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.core.similarity import cosine_similarities
from repro.text.parser import ParsingRules
from repro.weighting.schemes import WeightingScheme

__all__ = ["RetrievalEngine", "LSIRetrieval"]


@runtime_checkable
class RetrievalEngine(Protocol):
    """What the evaluation harness needs from an engine."""

    name: str

    @property
    def n_documents(self) -> int:
        """Documents the engine can return."""
        ...

    def scores(self, query) -> np.ndarray:
        """Score every document for ``query`` (length n)."""
        ...

    def search(self, query, *, top=None, threshold=None):
        """Ranked, optionally filtered ``(doc_index, score)`` pairs."""
        ...


class LSIRetrieval:
    """Retrieval through a fitted LSI model (Eq. 6 + cosine ranking)."""

    name = "lsi"

    def __init__(self, model: LSIModel, *, mode: str = "scaled"):
        self.model = model
        self.mode = mode

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        k: int,
        *,
        scheme: WeightingScheme | str | None = None,
        rules: ParsingRules | None = None,
        doc_ids: Sequence[str] | None = None,
        method: str = "auto",
        seed=0,
        mode: str = "scaled",
    ) -> "LSIRetrieval":
        model = fit_lsi(
            texts, k, scheme=scheme, rules=rules, doc_ids=doc_ids,
            method=method, seed=seed,
        )
        return cls(model, mode=mode)

    @property
    def n_documents(self) -> int:
        """Documents in the underlying model."""
        return self.model.n_documents

    @property
    def k(self) -> int:
        """Number of factors in the underlying model."""
        return self.model.k

    # ------------------------------------------------------------------ #
    def query_vector(self, query) -> np.ndarray:
        """The query's k-space pseudo-document (Eq. 6)."""
        return project_query(self.model, query)

    def scores(self, query) -> np.ndarray:
        """Cosine of the query against every document (length n)."""
        qhat = self.query_vector(query)
        if not np.any(qhat):
            return np.zeros(self.n_documents)
        return cosine_similarities(self.model, qhat, mode=self.mode)

    def scores_for_vector(self, qhat: np.ndarray) -> np.ndarray:
        """Scores for an externally supplied k-space vector (feedback)."""
        return cosine_similarities(self.model, qhat, mode=self.mode)

    def search(
        self,
        query,
        *,
        top: int | None = None,
        threshold: float | None = None,
    ) -> list[tuple[int, float]]:
        """Ranked ``(doc_index, score)`` pairs, filtered per §3.1."""
        s = self.scores(query)
        order = np.argsort(-s, kind="stable")
        out = [(int(j), float(s[j])) for j in order]
        if threshold is not None:
            out = [(j, c) for j, c in out if c >= threshold]
        if top is not None:
            out = out[:top]
        return out

    def with_k(self, k: int) -> "LSIRetrieval":
        """Engine over the same model truncated to ``k`` factors (for the
        §5.2 choosing-k sweeps — one decomposition, many k values)."""
        return LSIRetrieval(self.model.truncated(k), mode=self.mode)
