"""Length-prefixed JSON framing, shared by router and workers.

One frame is ``[4B little-endian payload length][UTF-8 JSON object]``.
JSON keeps the protocol debuggable (``nc`` + eyeballs) and — the
property the parity guarantee rests on — *losslessly* round-trips IEEE
doubles: ``json.dumps`` emits ``repr``-style shortest representations,
so a query vector scattered to a worker and a score gathered back are
bit-identical to their in-process values.  No pickling, ever: workers
mmap their model from the checkpoint and only small dicts cross the
wire.

Both flavours live here so they cannot drift: blocking helpers
(:func:`send_frame` / :func:`recv_frame`) for the threaded worker, and
asyncio helpers (:func:`write_frame` / :func:`read_frame`) for the
scatter-gather router.  A clean EOF *between* frames reads as ``None``
(peer hung up); an EOF *inside* a frame raises ``ConnectionError``
(peer died mid-message) — the router treats both as worker death, but
the distinction keeps error reports honest.  Under replication that
death report is what triggers sibling failover: every pending call on
the dead channel fails with ``ConnectionError`` at once, and the
router retries each affected range on another replica inside the same
request deadline (see :mod:`repro.cluster.router`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from repro.errors import ClusterError

__all__ = [
    "MAX_FRAME_BYTES",
    "BUMP_OP",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "write_frame",
    "read_frame",
]

#: Control op broadcast by the primary writer after sealing a new
#: checkpoint: ``{"op": BUMP_OP, "plan": <canonical ShardPlan JSON>}``.
#: A worker hot-remaps the named checkpoint behind an atomic swap and
#: acks with its new epoch; the superseded epoch keeps serving in-flight
#: queries until the bump after this one.
BUMP_OP = "bump"

#: Largest accepted frame payload; bounds per-connection memory and
#: turns a desynchronized stream (length bytes read mid-message) into a
#: loud error instead of a gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("<I")


def encode_frame(message: dict) -> bytes:
    """Serialize one message dict into a length-prefixed frame."""
    if not isinstance(message, dict):
        raise ClusterError("wire frames must be JSON objects")
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame payload of {len(payload)} bytes exceeds "
            f"{MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ClusterError(f"frame payload is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ClusterError("wire frames must be JSON objects")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES}); "
            "stream is corrupt or desynchronized"
        )


# --------------------------------------------------------------------- #
# blocking flavour (worker side)
# --------------------------------------------------------------------- #
def send_frame(sock: socket.socket, message: dict) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if at_boundary and got == 0:
                return None
            raise ConnectionError(
                f"peer closed mid-frame ({got} of {n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exact(sock, _LEN.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    _check_length(length)
    payload = _recv_exact(sock, length, at_boundary=False)
    return _decode_payload(payload)


# --------------------------------------------------------------------- #
# asyncio flavour (router side)
# --------------------------------------------------------------------- #
async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(message))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError(
            f"peer closed mid-frame ({len(exc.partial)} of {_LEN.size} "
            "header bytes)"
        )
    (length,) = _LEN.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError(
            f"peer closed mid-frame ({len(exc.partial)} of {length} bytes)"
        )
    return _decode_payload(payload)
