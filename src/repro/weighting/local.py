"""Local weighting functions L(i, j) — per-cell transforms of raw counts.

All transforms map 0 → 0, so they can be applied to the stored values of a
sparse matrix without densifying.  The ``augmented`` transform needs the
per-document maximum frequency; it is supplied by the caller so this module
stays a pure function of ``(counts, context)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["LOCAL_WEIGHTS", "local_weight"]


def _raw(f: np.ndarray, col_max: np.ndarray | None = None) -> np.ndarray:
    """Identity: L = f_ij (the paper's unweighted example, Table 3)."""
    return f


def _binary(f: np.ndarray, col_max: np.ndarray | None = None) -> np.ndarray:
    """L = 1 wherever the term occurs."""
    return (f > 0).astype(np.float64)


def _log(f: np.ndarray, col_max: np.ndarray | None = None) -> np.ndarray:
    """L = log₂(f + 1) — Dumais (1991), the paper's best local weight."""
    return np.log2(f + 1.0)


def _augmented(f: np.ndarray, col_max: np.ndarray) -> np.ndarray:
    """L = 0.5 + 0.5·f / max_f(doc) on stored entries (0 elsewhere).

    ``col_max`` is the per-entry maximum frequency of the entry's document,
    already expanded to nnz length by the caller.
    """
    safe = np.where(col_max > 0, col_max, 1.0)
    return np.where(f > 0, 0.5 + 0.5 * f / safe, 0.0)


def _sqrt(f: np.ndarray, col_max: np.ndarray | None = None) -> np.ndarray:
    """L = √f — a gentler damping than log, included for the ablation."""
    return np.sqrt(f)


LOCAL_WEIGHTS: dict[str, Callable] = {
    "raw": _raw,
    "tf": _raw,  # alias
    "binary": _binary,
    "log": _log,
    "augmented": _augmented,
    "sqrt": _sqrt,
}

#: Local weights that need the per-document maximum frequency.
NEEDS_COL_MAX = {"augmented"}


def local_weight(
    name: str, f: np.ndarray, col_max: np.ndarray | None = None
) -> np.ndarray:
    """Apply the named local transform to an array of raw counts."""
    try:
        fn = LOCAL_WEIGHTS[name]
    except KeyError:
        raise ValueError(
            f"unknown local weight {name!r}; choose from {sorted(LOCAL_WEIGHTS)}"
        ) from None
    if name in NEEDS_COL_MAX:
        if col_max is None:
            raise ValueError(f"local weight {name!r} requires col_max")
        return fn(f, col_max)
    return fn(f)
