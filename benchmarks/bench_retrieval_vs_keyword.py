"""§5.1 — LSI vs the standard keyword vector method.

Regenerates: "the average precision using LSI ranged from comparable to
30% better than that obtained using standard keyword vector methods.
The LSI method performs best relative to standard vector methods when
the queries and relevant documents do not share many words" — a sweep of
the query-synonym gap from 0 (queries reuse document wording) to 1
(queries always use different synonyms).  Times one full compare.
"""

from conftest import emit
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation import compare_engines
from repro.retrieval import KeywordRetrieval, LSIRetrieval


def _spec(synonyms: int) -> SyntheticSpec:
    return SyntheticSpec(
        n_topics=8, docs_per_topic=20, doc_length=40,
        concepts_per_topic=15, synonyms_per_concept=synonyms,
        queries_per_topic=3, query_length=2,
        query_synonym_shift=0.9, polysemy=0.25,
        background_vocab=40, background_rate=0.25,
    )


def _compare(synonyms: int, seed: int = 7):
    col = topic_collection(_spec(synonyms), seed=seed)
    lsi = LSIRetrieval.from_texts(
        col.documents, k=16, scheme="log_entropy", seed=0
    )
    kw = KeywordRetrieval.from_texts(col.documents, scheme="log_entropy")
    return compare_engines(lsi, kw, col)


def test_lsi_vs_keyword_synonymy_sweep(benchmark):
    levels = (1, 2, 4)  # surface forms per concept: 1 = no synonymy
    results = {s: _compare(s) for s in levels if s != 4}
    results[4] = benchmark(_compare, 4)

    rows = [f"{'synonyms':>9s}{'LSI':>8s}{'keyword':>9s}{'LSI adv':>9s}"]
    for s in levels:
        cmp = results[s]
        rows.append(
            f"{s:>9d}{cmp.candidate['mean_metric']:>8.3f}"
            f"{cmp.baseline['mean_metric']:>9.3f}"
            f"{cmp.improvement_pct:>+8.1f}%"
        )
    rows.append("paper: 'comparable to 30% better', largest when queries "
                "and relevant docs share few words")
    emit("§5.1 — LSI vs keyword vector (3-pt avg precision)", rows)

    # Shape claims: LSI never loses; its advantage grows with synonymy
    # and spans the paper's 'comparable .. 30%+' band across the sweep:
    # single-digit % with one surface form per concept, 30%+ with four.
    advantages = [results[s].improvement_pct for s in levels]
    assert all(a >= -2.0 for a in advantages)
    assert advantages == sorted(advantages)
    assert advantages[0] < 15.0
    assert advantages[-1] > 30.0
