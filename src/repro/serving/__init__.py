"""The query-serving fast path.

The ROADMAP's north star — serve heavy traffic as fast as the hardware
allows — runs through one hot loop: project the query (Eq. 6), score it
against every document (§2.2 cosine), rank, filter (§3.1).  The seed
implementation recomputed ``V_k Σ_k`` and all n document norms on every
query and ranked with a full O(n log n) sort.  This package is the
serving-grade rewrite, treating the term-document model as a reusable
computational object (Antonellis & Gallopoulos) whose derived
quantities are built once and queried many times:

* :mod:`repro.serving.kernel` — the single GEMM cosine kernel every
  scoring path (single, batched, sharded) routes through;
* :mod:`repro.serving.index` — :class:`DocumentIndex`, the per-model
  cache of ``V_k Σ_k`` / row norms / zero mask, with the invalidation
  contract the updating layer enforces (fold-in and SVD-updating never
  serve stale scores — Vecharynski & Saad's fast-update requirement);
* :mod:`repro.serving.topk` — ``argpartition`` top-k selection that is
  element-identical to the stable full sort, plus vectorized §3.1
  threshold filtering;
* :mod:`repro.serving.querycache` — an LRU of projected query vectors
  keyed on normalized token counts.

Perf counters for all of the above live in
:data:`repro.util.timing.serving_counters`.
"""

from repro.serving.index import (
    DocumentIndex,
    cache_info,
    clear_index_cache,
    get_document_index,
    invalidate_model,
)
from repro.serving.kernel import cosine_scores, row_norms
from repro.serving.querycache import QueryVectorCache
from repro.serving.topk import ranked_order, ranked_pairs, topk_indices

__all__ = [
    "DocumentIndex",
    "get_document_index",
    "invalidate_model",
    "cache_info",
    "clear_index_cache",
    "cosine_scores",
    "row_norms",
    "QueryVectorCache",
    "topk_indices",
    "ranked_order",
    "ranked_pairs",
]
