"""Tests for the memory-mapped model path (``repro.store.mmap_io``).

The cluster leans on two mmap properties that were previously implicit:
the mapped factors are *read-only* (a worker cannot corrupt the
checkpoint it serves), and concurrent openers of the same checkpoint
share the underlying file mapping (N workers cost one copy of the page
cache, not N).  Both are pinned here, alongside scoring parity between
the mapped and fully-loaded forms of the same checkpoint.
"""

import numpy as np
import pytest

from repro.core.query import project_query
from repro.core.similarity import cosine_similarities
from repro.server.state import manager_from_texts
from repro.store.durable import DurableIndexStore
from repro.store.mmap_io import open_latest_model


@pytest.fixture(scope="module")
def mmap_store(tmp_path_factory):
    rng = np.random.default_rng(17)
    vocab = [f"w{i}" for i in range(30)]
    texts = [" ".join(rng.choice(vocab, size=12)) for _ in range(23)]
    ids = [f"D{i}" for i in range(len(texts))]
    data_dir = tmp_path_factory.mktemp("mmap_store") / "store"
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=8)
    )
    store.close(flush=False)
    return data_dir, texts


def test_mapped_factors_are_read_only(mmap_store):
    data_dir, _ = mmap_store
    model = open_latest_model(data_dir, mmap=True)
    for name in ("U", "s", "V", "global_weights"):
        arr = getattr(model, name)
        assert arr.flags.writeable is False, name
        with pytest.raises(ValueError):
            arr[(0,) * arr.ndim] = 99.0


def test_concurrent_openers_share_the_backing_file(mmap_store):
    data_dir, _ = mmap_store
    a = open_latest_model(data_dir, mmap=True)
    b = open_latest_model(data_dir, mmap=True)
    # ``LSIModel.__post_init__`` runs the arrays through ``np.asarray``,
    # which strips the ``np.memmap`` subclass but keeps the mapping as
    # ``.base`` — so check the base, not the array's own type.
    for name in ("U", "V"):
        base_a = getattr(a, name).base
        base_b = getattr(b, name).base
        assert isinstance(base_a, np.memmap), name
        assert isinstance(base_b, np.memmap), name
        # Two openers, one file: the kernel shares the page cache.
        assert base_a.filename == base_b.filename
        assert base_a.filename is not None
    assert np.array_equal(a.V, b.V)


def test_mapped_model_scores_identically_to_loaded(mmap_store):
    data_dir, texts = mmap_store
    mapped = open_latest_model(data_dir, mmap=True)
    loaded = open_latest_model(data_dir, mmap=False)
    assert loaded.V.flags.writeable  # the non-mapped form stays mutable
    for query in texts[:3]:
        qm = project_query(mapped, query)
        ql = project_query(loaded, query)
        assert np.array_equal(qm, ql)
        assert np.array_equal(
            cosine_similarities(mapped, qm), cosine_similarities(loaded, ql)
        )
