"""Orthogonality diagnostics (paper §4.3).

Folding-in appends arbitrary projected vectors to the singular-vector
matrices, corrupting their orthogonality; the paper proposes monitoring
``‖ÛᵀÛ − I‖₂`` and ``‖V̂ᵀV̂ − I‖₂`` as distortion measures.  These helpers
compute that loss (via from-scratch power iteration — the matrices involved
are small ``k×k`` Grams) and re-orthonormalize bases when an application
wants to repair drift.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.util.rng import ensure_rng

__all__ = ["spectral_norm", "orthogonality_loss", "reorthogonalize"]


def spectral_norm(
    a: np.ndarray, *, tol: float = 1e-12, max_iter: int = 500, seed=0
) -> float:
    """2-norm of a dense matrix by power iteration on ``AᵀA``.

    Converges fast for the well-separated spectra these diagnostics see;
    the iteration cap makes the worst case (a degenerate top eigenvalue)
    return the current — already accurate to ~sqrt(tol) — estimate.
    """
    A = np.asarray(a, dtype=np.float64)
    if A.ndim != 2:
        raise ShapeError(f"spectral_norm expects a matrix, got ndim={A.ndim}")
    m, n = A.shape
    if m == 0 or n == 0:
        return 0.0
    rng = ensure_rng(seed)
    x = rng.standard_normal(n)
    x /= np.sqrt(np.dot(x, x))
    prev = 0.0
    for _ in range(max_iter):
        y = A @ x
        x = A.T @ y
        norm = np.sqrt(np.dot(x, x))
        if norm == 0.0:
            return 0.0
        x /= norm
        est = np.sqrt(norm)
        if abs(est - prev) <= tol * max(est, 1.0):
            return float(est)
        prev = est
    return float(prev)


def orthogonality_loss(q: np.ndarray) -> float:
    """``‖QᵀQ − I‖₂`` — zero iff the columns of ``Q`` are orthonormal.

    This is the paper's distortion measure for folded-in axes: SVD-updating
    keeps it at rounding level while folding-in lets it grow with every
    appended document or term.
    """
    Q = np.asarray(q, dtype=np.float64)
    if Q.ndim != 2:
        raise ShapeError(f"orthogonality_loss expects a matrix, got ndim={Q.ndim}")
    gram = Q.T @ Q
    gram[np.diag_indices_from(gram)] -= 1.0
    return spectral_norm(gram)


def reorthogonalize(q: np.ndarray) -> np.ndarray:
    """Return the nearest-orthonormal column basis via two-pass MGS.

    Modified Gram-Schmidt applied twice ("twice is enough", Kahan) —
    adequate for repairing the mild drift fold-in introduces.  Columns that
    become numerically zero (linearly dependent input) are replaced by
    random directions orthogonal to the rest.
    """
    Q = np.array(q, dtype=np.float64, copy=True)
    if Q.ndim != 2:
        raise ShapeError(f"reorthogonalize expects a matrix, got ndim={Q.ndim}")
    m, k = Q.shape
    rng = ensure_rng(0)
    for _pass in range(2):
        for j in range(k):
            for i in range(j):
                Q[:, j] -= np.dot(Q[:, i], Q[:, j]) * Q[:, i]
            norm = np.sqrt(np.dot(Q[:, j], Q[:, j]))
            if norm <= 1e-12:
                v = rng.standard_normal(m)
                for i in range(j):
                    v -= np.dot(Q[:, i], v) * Q[:, i]
                v /= np.sqrt(np.dot(v, v))
                Q[:, j] = v
            else:
                Q[:, j] /= norm
    return Q
