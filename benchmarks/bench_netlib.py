"""§5.4 — the NETLIB fuzzy-search application.

Regenerates: LSI as "a fuzzy search option ... for retrieving
algorithms, code descriptions, and short articles from the NA-Digest
electronic newsletter" — task-phrased queries against a routine
catalogue, with exact-name lookup (the pre-LSI behaviour) and lexical
matching as contrasts.  Times the fuzzy query path.
"""

import numpy as np

from conftest import emit
from repro.apps import NetlibSearch
from repro.corpus import netlib_catalogue
from repro.evaluation import evaluate_run, run_engine
from repro.retrieval import KeywordRetrieval


def test_netlib_fuzzy_search(benchmark):
    cat = netlib_catalogue(seed=5)
    search = NetlibSearch.build(cat, k=16, seed=0)

    def one_query():
        return search.fuzzy(cat.queries[0], top=3)

    benchmark(one_query)

    # Fuzzy hit rate: right family in the top-3 routine results.
    fuzzy_hits = 0
    for q, fam in zip(cat.queries, cat.query_family):
        families = {
            cat.entry_family[cat.names.index(name)]
            for name, _ in search.fuzzy(q, top=3)
        }
        fuzzy_hits += fam in families
    fuzzy_rate = fuzzy_hits / len(cat.queries)

    # Exact-name lookup: task phrasings never match names.
    exact_hits = sum(
        1 for q in cat.queries if any(search.exact(w) for w in q.split())
    )

    # Lexical matching over the catalogue descriptions.
    col = cat.collection()
    kw = KeywordRetrieval.from_texts(
        col.documents, scheme="log_entropy", doc_ids=col.doc_ids
    )
    kw_eval = evaluate_run(run_engine(kw, col), col)

    rows = [
        f"catalogue: {len(cat.names)} routines, {len(cat.digests)} digest "
        "articles indexed alongside",
        f"fuzzy (LSI) right-family-in-top-3: {fuzzy_rate:.2f}",
        f"exact-name lookup hits: {exact_hits}/{len(cat.queries)} "
        "(task words are not routine names)",
        f"lexical matching 3-pt avg precision: "
        f"{kw_eval['mean_metric']:.3f}",
        f"example: {cat.queries[2]!r} → "
        + ", ".join(n for n, _ in search.fuzzy(cat.queries[2], top=3)),
        f"more-like dgesvd-family: "
        + ", ".join(n for n, _ in search.more_like(cat.names[0], top=3)),
    ]
    emit("§5.4 — NETLIB fuzzy search", rows)

    assert fuzzy_rate > 0.75
    assert exact_hits == 0
    assert fuzzy_rate > kw_eval["mean_metric"]
