"""Epoch-swapped serving state: atomic reader/writer model handoff.

The updating layer (§2.3 folding-in, §4 SVD-updating) replaces the
*model object* on every maintenance action, and the serving cache
enforces that by flagging superseded :class:`DocumentIndex` handles
stale.  A long-lived server needs the complementary guarantee: queries
that started before an update must be allowed to **finish** against the
state they started on, while new queries see the new state — the
classic epoch (RCU-style) handoff.

:class:`EpochSnapshot` pins everything one batch of queries needs — the
model, the precomputed document coordinates and norms, a per-epoch
projected-query cache — into one immutable object.  :class:`ServingState`
publishes the current snapshot behind a single attribute write (atomic
under the GIL), so readers never lock; writers serialize on a mutex,
route the addition through :class:`~repro.updating.manager.LSIIndexManager`
(fold-in now, consolidate per the §4.3 drift policy), build the
successor snapshot, and swap.  A snapshot deliberately scores through
the raw kernel rather than :meth:`DocumentIndex.batch_scores`: the
freshness check would reject exactly the in-flight-against-old-epoch
reads this layer exists to permit, and the pinned arrays are immutable
either way.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_counts, query_counts
from repro.errors import ReproError, ShapeError
from repro.obs.metrics import registry
from repro.parallel.pool import parallel_map
from repro.serving.ann import CoarseQuantizer
from repro.serving.index import get_document_index
from repro.serving.kernel import cosine_scores
from repro.serving.querycache import QueryVectorCache
from repro.updating.manager import LSIIndexManager

__all__ = [
    "EpochSnapshot",
    "ServingState",
    "manager_from_texts",
    "state_from_texts",
]


class EpochSnapshot:
    """One immutable epoch of serving state: model + scoring arrays.

    All queries of one micro-batch are projected and scored against a
    single snapshot, so a response can never mix documents from two
    epochs (no torn reads); the ``epoch`` and ``n_documents`` it reports
    describe exactly the state it was computed on.
    """

    __slots__ = ("epoch", "model", "coords", "norms", "query_cache", "ann")

    def __init__(
        self,
        epoch: int,
        model: LSIModel,
        *,
        query_cache_size: int = 256,
        ann: CoarseQuantizer | None = None,
    ):
        self.epoch = epoch
        self.model = model
        index = get_document_index(model, mode="scaled")
        # Pin the arrays themselves: they stay valid even if the cache
        # entry is evicted or the index handle later goes stale.
        self.coords = index.coords
        self.norms = index.norms
        self.query_cache = QueryVectorCache(query_cache_size)
        # The coarse quantizer may predate this epoch (it is trained at
        # checkpoint time); rows it has never seen are still searched
        # exactly via the quantizer's fresh-tail rule.
        self.ann = ann

    @property
    def n_documents(self) -> int:
        """Documents visible at this epoch."""
        return self.coords.shape[0]

    @property
    def k(self) -> int:
        """Dimensionality of the comparison space."""
        return self.coords.shape[1]

    # ------------------------------------------------------------------ #
    def project(self, query) -> np.ndarray:
        """Eq. 6 for one query (text or token sequence), cache-memoized.

        Identical math to :meth:`LSIRetrieval.query_vector`: normalized
        token counts key the per-epoch LRU, misses run the weighting
        transform + ``U_k Σ_k⁻¹`` projection.
        """
        counts = query_counts(self.model, query)
        key = QueryVectorCache.key_from_counts(counts)
        qhat = self.query_cache.get(key)
        if qhat is None:
            qhat = project_counts(self.model, counts)
            self.query_cache.put(key, qhat)
        return qhat

    def score_batch(
        self,
        Q: np.ndarray,
        *,
        shards: int = 1,
        workers: int | None = None,
    ) -> np.ndarray:
        """Cosine of ``(q, k)`` query vectors with every document.

        Row ``i`` is element-identical to the unbatched engine's
        ``scores`` for query ``i``.  With ``shards > 1`` the document
        rows are split into contiguous slices, each scored by its own
        GEMM (optionally on a thread pool — NumPy releases the GIL), and
        the column blocks are concatenated; per-element cosines depend
        only on their own document row and query, so the sharded result
        equals the flat one.
        """
        Q2 = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        if Q2.shape[1] != self.model.k:
            raise ShapeError(
                f"queries have {Q2.shape[1]} dims for k={self.model.k}"
            )
        Qs = Q2 * self.model.s  # "scaled" comparison space, as the engine
        n = self.n_documents
        if shards <= 1 or n == 0:
            return cosine_scores(self.coords, Qs, norms=self.norms)
        bounds = np.linspace(0, n, min(shards, n) + 1).astype(np.int64)
        parts = [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(bounds) - 1)
        ]

        def score_slice(lohi: tuple[int, int]) -> np.ndarray:
            lo, hi = lohi
            return cosine_scores(
                self.coords[lo:hi], Qs, norms=self.norms[lo:hi]
            )

        blocks = parallel_map(score_slice, parts, workers=workers)
        return np.concatenate(blocks, axis=1)

    def search_ann(
        self,
        qhat: np.ndarray,
        *,
        probes: int,
        top: int | None = None,
        threshold: float | None = None,
    ) -> tuple[list[tuple[int, float]], dict]:
        """Probe-bounded ranked ``(doc_index, score)`` pairs for one query.

        Scores only the ``probes`` nearest cells' documents (plus any
        fresh tail the quantizer has not seen), exact-reranked with the
        same kernel as :meth:`score_batch` — element-identical to the
        exhaustive scan when ``probes >= ann.n_clusters``.  Requires a
        quantizer; callers fall back to :meth:`score_batch` when
        ``self.ann is None``.
        """
        if self.ann is None:
            raise ReproError("snapshot has no coarse quantizer")
        qhat = np.asarray(qhat, dtype=np.float64).ravel()
        if qhat.size != self.model.k:
            raise ShapeError(
                f"query has {qhat.size} dims for k={self.model.k}"
            )
        return self.ann.select(
            self.coords,
            self.norms,
            qhat * self.model.s,
            probes=probes,
            top=top,
            threshold=threshold,
            n_total=self.n_documents,
        )


class ServingState:
    """The mutable holder a server reads snapshots from and writes through.

    Two flavours:

    * **manager-backed** (:meth:`for_manager`) — document additions run
      through the :class:`LSIIndexManager` (fold-in immediately, §4.3
      drift-policy consolidation when the planner says so) and publish a
      new epoch;
    * **static** (:meth:`for_model`) — serve a saved ``.npz`` model
      read-only; :meth:`add_texts` raises.
    """

    def __init__(
        self,
        *,
        manager: LSIIndexManager | None = None,
        model: LSIModel | None = None,
        query_cache_size: int = 256,
        ann: CoarseQuantizer | None = None,
    ):
        if (manager is None) == (model is None):
            raise ReproError("ServingState needs a manager or a model, not both")
        self._manager = manager
        self._query_cache_size = query_cache_size
        self._write_lock = threading.Lock()
        self._swap_hooks: list = []
        self._ann = ann
        initial = manager.model if manager is not None else model
        self._snapshot = EpochSnapshot(
            0, initial, query_cache_size=query_cache_size, ann=ann
        )
        self._publish_gauges(self._snapshot)

    # ------------------------------------------------------------------ #
    @classmethod
    def for_manager(cls, manager: LSIIndexManager, **kwargs) -> "ServingState":
        """Live-updatable state around an existing index manager."""
        return cls(manager=manager, **kwargs)

    @classmethod
    def for_model(cls, model: LSIModel, **kwargs) -> "ServingState":
        """Read-only state around a fitted (e.g. loaded) model."""
        return cls(model=model, **kwargs)

    @property
    def writable(self) -> bool:
        """Whether :meth:`add_texts` is available."""
        return self._manager is not None

    def current(self) -> EpochSnapshot:
        """The snapshot new work should run against (lock-free read)."""
        return self._snapshot

    @property
    def ann_enabled(self) -> bool:
        """Whether snapshots carry a coarse quantizer to probe."""
        return self._ann is not None

    def train_ann(
        self, n_clusters: int | None = None, *, seed=0
    ) -> CoarseQuantizer:
        """Train a quantizer on the current coordinates and publish it.

        The in-memory counterpart of checkpoint-time training, for
        servers without a durable store (``repro serve`` over raw
        texts).  Publishes a replacement snapshot at the *same* epoch —
        the index content is unchanged, only the probe structure is new.
        """
        with self._write_lock:
            snap = self._snapshot
            quantizer = CoarseQuantizer.train(
                snap.coords, n_clusters, seed=seed
            )
            self._ann = quantizer
            self._snapshot = EpochSnapshot(
                snap.epoch,
                snap.model,
                query_cache_size=self._query_cache_size,
                ann=quantizer,
            )
        return quantizer

    def add_swap_hook(self, hook) -> None:
        """Register ``hook(snapshot, event)`` to run after each epoch swap.

        Hooks run under the write lock, after the new snapshot is
        published — the durability layer uses this to wake its
        background checkpointer without touching the query path.  Keep
        hooks cheap; heavy work belongs on the hook's own thread.
        """
        self._swap_hooks.append(hook)

    # ------------------------------------------------------------------ #
    def _apply_add(
        self, texts: list[str], doc_ids: Sequence[str] | None
    ):
        """Route one addition into the manager; returns its IndexEvent.

        The override point for durable serving: :class:`~repro.store.
        durable.DurableServingState` write-ahead-logs the addition before
        applying it here, so an fsync-acknowledged fold-in survives a
        crash.  Called with the write lock held.
        """
        return self._manager.add_texts(texts, doc_ids)

    def add_texts(
        self, texts: Sequence[str], doc_ids: Sequence[str] | None = None
    ) -> dict:
        """Add documents through the manager and publish a new epoch.

        Blocking (runs the fold-in / consolidation); the service calls
        it from an executor thread.  In-flight readers keep scoring
        their pinned snapshot; the swap is one attribute write.
        """
        if self._manager is None:
            raise ReproError(
                "server is read-only: serving a saved model, not a managed "
                "index; restart with a document source to enable /add"
            )
        with self._write_lock:
            event = self._apply_add(list(texts), doc_ids)
            fresh = EpochSnapshot(
                self._snapshot.epoch + 1,
                self._manager.model,
                query_cache_size=self._query_cache_size,
                ann=self._ann,
            )
            self._snapshot = fresh  # the atomic reader/writer handoff
            self._publish_gauges(fresh)
            for hook in self._swap_hooks:
                hook(fresh, event)
        return {
            "epoch": fresh.epoch,
            "n_documents": fresh.n_documents,
            "action": event.action,
            "reason": event.reason,
        }

    @staticmethod
    def _publish_gauges(snapshot: EpochSnapshot) -> None:
        registry.set_gauge("server.epoch", snapshot.epoch)
        registry.set_gauge("server.n_documents", snapshot.n_documents)


def manager_from_texts(
    texts: Sequence[str],
    doc_ids: Sequence[str] | None = None,
    *,
    k: int = 50,
    scheme: str | object = "log_entropy",
    min_doc_freq: int = 1,
    distortion_budget: float = 0.1,
    drift_cap: float = 2.0,
    seed: int = 0,
    ingest_method: str = "fold-in",
    fast_update_rank: int = 8,
) -> LSIIndexManager:
    """Fit the live-updatable index manager ``repro serve`` runs on.

    One deterministic path shared by ``repro serve``, the durable store
    seeding path, and the CI smoke harnesses (which rebuild the same
    model in-process to check served results byte-for-byte): parse →
    TDM → manager fit, with ``k`` clamped to the matrix rank bound.
    """
    from repro.text.parser import ParsingRules
    from repro.text.tdm import build_tdm

    rules = ParsingRules(min_doc_freq=min_doc_freq)
    tdm = build_tdm(list(texts), rules, doc_ids=doc_ids)
    return LSIIndexManager(
        tdm,
        k=max(1, min(k, min(tdm.shape))),
        scheme=scheme,
        distortion_budget=distortion_budget,
        drift_cap=drift_cap,
        seed=seed,
        ingest_method=ingest_method,
        fast_update_rank=fast_update_rank,
    )


def state_from_texts(
    texts: Sequence[str],
    doc_ids: Sequence[str] | None = None,
    *,
    query_cache_size: int = 256,
    **manager_kwargs,
) -> ServingState:
    """Build a live-updatable :class:`ServingState` from raw documents.

    Thin composition of :func:`manager_from_texts` and
    :meth:`ServingState.for_manager`; keyword arguments pass through to
    the manager fit.
    """
    manager = manager_from_texts(texts, doc_ids, **manager_kwargs)
    return ServingState.for_manager(manager, query_cache_size=query_cache_size)
