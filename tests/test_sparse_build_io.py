"""Tests for the builder and the coordinate text I/O."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import (
    MatrixBuilder,
    from_dense,
    from_triples,
    load_coordinate_text,
    save_coordinate_text,
)


def test_builder_accumulates_duplicates():
    b = MatrixBuilder((3, 3))
    b.add(0, 0, 1.0)
    b.add(0, 0, 2.0)
    b.add(2, 1)
    assert len(b) == 3
    dense = b.to_csr().to_dense()
    assert dense[0, 0] == 3.0 and dense[2, 1] == 1.0


def test_builder_bounds_checked():
    b = MatrixBuilder((2, 2))
    with pytest.raises(ShapeError):
        b.add(2, 0)
    with pytest.raises(ShapeError):
        b.add(0, -1)


def test_builder_add_many_and_column():
    b = MatrixBuilder((4, 4))
    b.add_many([0, 1], [1, 2], [3.0, 4.0])
    b.add_column(3, [0, 2], [1.0, 1.0])
    d = b.to_csc().to_dense()
    assert d[0, 1] == 3.0 and d[1, 2] == 4.0
    assert d[0, 3] == 1.0 and d[2, 3] == 1.0


def test_builder_add_many_defaults_to_ones():
    b = MatrixBuilder((2, 2))
    b.add_many([0, 1], [0, 1])
    assert b.to_coo().data.tolist() == [1.0, 1.0]


def test_builder_add_many_length_mismatch():
    b = MatrixBuilder((2, 2))
    with pytest.raises(ShapeError):
        b.add_many([0, 1], [0], [1.0, 2.0])


def test_from_triples():
    m = from_triples((2, 3), [(0, 1, 2.0), (1, 2, 3.0), (0, 1, 1.0)])
    d = m.to_dense()
    assert d[0, 1] == 3.0 and d[1, 2] == 3.0


def test_from_dense_tolerance():
    d = np.array([[1e-15, 1.0], [0.5, 0.0]])
    m = from_dense(d, tol=1e-12)
    assert m.nnz == 2


def test_from_dense_rejects_non_2d():
    with pytest.raises(ShapeError):
        from_dense(np.zeros(3))


def test_io_round_trip(tmp_path, rng):
    d = rng.random((6, 4)) * (rng.random((6, 4)) < 0.6)
    path = tmp_path / "matrix.txt"
    save_coordinate_text(path, from_dense(d))
    loaded = load_coordinate_text(path)
    assert loaded.shape == (6, 4)
    assert np.array_equal(loaded.to_dense(), from_dense(d).to_dense())


def test_io_round_trip_from_csr(tmp_path, rng):
    d = rng.random((3, 3))
    path = tmp_path / "m.txt"
    save_coordinate_text(path, from_dense(d).to_csr())
    assert np.allclose(load_coordinate_text(path).to_dense(), d)


def test_io_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("not a matrix\n1 1 0\n")
    with pytest.raises(SparseFormatError):
        load_coordinate_text(path)


def test_io_rejects_truncated_file(tmp_path):
    path = tmp_path / "trunc.txt"
    path.write_text("%%repro coordinate\n2 2 2\n1 1 5.0\n")
    with pytest.raises(SparseFormatError):
        load_coordinate_text(path)
