"""Approximate near-neighbour search in k-space (§5.6).

The paper's third open computational issue: "efficiently comparing
queries to documents (i.e., finding near neighbors in high-dimension
spaces)".  This module is the *offline* face of the answer: a
:class:`ClusterIndex` bound to one in-memory model, for experiments and
the recall tooling.  The algorithm itself — seeded k-means++ training,
probe-bounded candidate generation, exact rerank — lives in
:mod:`repro.serving.ann` as :class:`~repro.serving.ann.CoarseQuantizer`,
the checkpoint-persistable form every serving path (single-node server,
cluster shard workers) maps and probes at query time.

Scoring runs on the same coordinate conventions as
:mod:`repro.core.similarity` via the shared
:class:`~repro.serving.index.DocumentIndex`, and candidates rerank in
ascending document order — so ``probes == n_clusters`` reproduces the
exact ranking element-for-element, ties included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.serving.ann import CoarseQuantizer, kmeans
from repro.serving.index import get_document_index

__all__ = ["kmeans", "ClusterIndex"]


@dataclass
class ClusterIndex:
    """Coarse-quantized cosine search over a model's document vectors."""

    model: LSIModel
    quantizer: CoarseQuantizer

    @classmethod
    def build(
        cls, model: LSIModel, *, n_clusters: int | None = None, seed=0
    ) -> "ClusterIndex":
        """Cluster the scaled document coordinates.

        The default cluster count ``≈ sqrt(n)`` balances probe cost
        against within-cluster scan cost, the standard IVF heuristic.
        """
        if model.n_documents == 0:
            raise ShapeError("model has no documents to index")
        index = get_document_index(model, mode="scaled")
        quantizer = CoarseQuantizer.train(index.coords, n_clusters, seed=seed)
        return cls(model, quantizer)

    @property
    def n_clusters(self) -> int:
        """Number of coarse clusters."""
        return self.quantizer.n_clusters

    @property
    def centroids(self) -> np.ndarray:
        """Unit-sphere cell centroids, ``(c, k)``."""
        return self.quantizer.centroids

    @property
    def assignment(self) -> np.ndarray:
        """Per-document cell ids, ``(n,)``."""
        return self.quantizer.assignment()

    @property
    def members(self) -> list[np.ndarray]:
        """Ascending document indices of each cell."""
        return self.quantizer.members()

    # ------------------------------------------------------------------ #
    def search(
        self,
        qhat: np.ndarray,
        *,
        top: int = 10,
        probes: int = 2,
    ) -> tuple[list[tuple[int, float]], int]:
        """Approximate top-``top`` ``(doc_index, cosine)`` results.

        Returns the result list and the number of documents actually
        scored (the work saved is ``1 - scored/n``).  ``probes`` clamps
        to ``n_clusters``; fewer candidates than ``top`` simply returns
        a shorter list.
        """
        if top < 1 or probes < 1:
            raise ShapeError("top and probes must be >= 1")
        qhat = np.asarray(qhat, dtype=np.float64).ravel()
        if qhat.size != self.model.k:
            raise ShapeError(
                f"query vector has {qhat.size} dims for k={self.model.k}"
            )
        index = get_document_index(self.model, mode="scaled")
        target = index.prepare_queries(qhat)[0]
        if np.sqrt(target @ target) == 0:
            return [], 0
        pairs, stats = self.quantizer.select(
            index.coords,
            index.norms,
            target,
            probes=probes,
            top=top,
            n_total=self.model.n_documents,
        )
        return pairs, stats["candidates"]

    def recall_at(
        self, qhat: np.ndarray, *, top: int = 10, probes: int = 2
    ) -> float:
        """Fraction of the exact top-``top`` found by the probe search."""
        from repro.core.similarity import cosine_similarities

        exact = cosine_similarities(self.model, qhat)
        true_top = set(np.argsort(-exact, kind="stable")[:top].tolist())
        approx, _ = self.search(qhat, top=top, probes=probes)
        got = {j for j, _ in approx}
        return len(got & true_top) / top
