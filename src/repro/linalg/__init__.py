"""From-scratch numerical linear algebra for LSI.

The paper's computational core is the truncated SVD of a large sparse
term-document matrix, computed in 1995 by SVDPACKC's single-vector Lanczos
code.  This subpackage rebuilds that stack in pure NumPy:

* :mod:`repro.linalg.householder` — Householder QR (used by the updating
  algebra and for orthonormal completions).
* :mod:`repro.linalg.tridiag` — implicit-shift QL eigensolver for symmetric
  tridiagonal matrices (the inner solve of Lanczos).
* :mod:`repro.linalg.jacobi_svd` — one-sided Jacobi SVD for small dense
  matrices (the inner dense SVDs of the SVD-updating phases, Eq. 10-12).
* :mod:`repro.linalg.bidiag` — Golub-Kahan-Lanczos bidiagonalization.
* :mod:`repro.linalg.lanczos` — single-vector Lanczos on the Gram operator
  ``GᵀG`` with full reorthogonalization, instrumented so the paper's cost
  model ``I·cost(GᵀGx) + trp·cost(Gx)`` can be checked empirically.
* :mod:`repro.linalg.block_lanczos` — the block variant (SVDPACKC's
  ``bls2``), which resolves clustered spectra a block at a time.
* :mod:`repro.linalg.svd` — the :func:`truncated_svd` front-end that picks
  a backend and returns a :class:`~repro.linalg.svd.SVDResult`.
* :mod:`repro.linalg.orth` — orthogonality-loss diagnostics (§4.3).

Only ``numpy`` primitives (elementwise math, ``@`` on dense arrays) are
used; no LAPACK decompositions are called on any library code path.
"""

from repro.linalg.householder import householder_qr, orthonormal_columns
from repro.linalg.tridiag import tridiag_eigh
from repro.linalg.jacobi_svd import jacobi_svd
from repro.linalg.bidiag import golub_kahan_bidiag
from repro.linalg.lanczos import LanczosStats, lanczos_svd
from repro.linalg.block_lanczos import block_lanczos_svd
from repro.linalg.svd import SVDResult, truncated_svd
from repro.linalg.orth import orthogonality_loss, reorthogonalize, spectral_norm
from repro.linalg.counters import FlopCounter, OperatorCounter

__all__ = [
    "householder_qr",
    "orthonormal_columns",
    "tridiag_eigh",
    "jacobi_svd",
    "golub_kahan_bidiag",
    "lanczos_svd",
    "block_lanczos_svd",
    "LanczosStats",
    "truncated_svd",
    "SVDResult",
    "orthogonality_loss",
    "reorthogonalize",
    "spectral_norm",
    "FlopCounter",
    "OperatorCounter",
]
