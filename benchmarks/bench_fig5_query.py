"""Figure 5 — derived coordinates of the query "age blood abnormalities".

Regenerates: the singular values (paper: 3.5919, 2.6471), the U₂ block,
and the query projection q̂ = qᵀU₂Σ₂⁻¹ (paper: (0.1491, −0.1199)).
Times Eq. 6.
"""

import numpy as np

from conftest import emit
from repro.core import project_query
from repro.corpus.med import MED_QUERY, MED_TERMS, PAPER_QHAT, PAPER_SIGMA_2, PAPER_U2


def test_fig5_query_projection(benchmark, med_model):
    qhat = benchmark(project_query, med_model, MED_QUERY)

    # Sign-align our U with the paper's printed column signs.
    U2 = med_model.U.copy()
    flip = np.ones(2)
    for c in range(2):
        i = np.argmax(np.abs(PAPER_U2[:, c]))
        if np.sign(U2[i, c]) != np.sign(PAPER_U2[i, c]):
            U2[:, c] *= -1
            flip[c] = -1

    rows = [
        f"singular values: ours ({med_model.s[0]:.4f}, {med_model.s[1]:.4f})"
        f"  paper ({PAPER_SIGMA_2[0]:.4f}, {PAPER_SIGMA_2[1]:.4f})",
        f"query q̂: ours ({qhat[0] * flip[0]:+.4f}, {qhat[1] * flip[1]:+.4f})"
        f"  paper ({PAPER_QHAT[0]:+.4f}, {PAPER_QHAT[1]:+.4f})",
        "U₂ (ours vs paper, sign-aligned):",
    ]
    for i, term in enumerate(MED_TERMS):
        rows.append(
            f"  {term:<16s} ({U2[i, 0]:+.4f}, {U2[i, 1]:+.4f})  "
            f"({PAPER_U2[i, 0]:+.4f}, {PAPER_U2[i, 1]:+.4f})"
        )
    rows.append(f"max |U₂ − paper| = {np.abs(U2 - PAPER_U2).max():.4f}")
    emit("Figure 5 — query coordinates", rows)

    assert np.allclose(med_model.s, PAPER_SIGMA_2, atol=0.09)
    assert np.abs(U2 - PAPER_U2).max() < 0.06
    assert np.abs(qhat * flip - PAPER_QHAT).max() < 0.03
