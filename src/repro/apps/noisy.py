"""Noisy-input retrieval (§5.4): OCR corruption should not disrupt LSI.

"Nielsen et al. used LSI to index a small collection of abstracts input
by a commercially available pen machine ...  Even though the error rates
were 8.8% at the word level, information retrieval performance using LSI
was not disrupted (compared with the same uncorrupted texts)."

:func:`noisy_retrieval_experiment` runs that comparison end to end on any
test collection: index the clean texts, index the corrupted texts, run
the same (clean) queries against both, report both engines' metrics and
the relative degradation.  The keyword baseline is included because its
degradation is the contrast that makes the LSI result interesting.
"""

from __future__ import annotations

from repro.corpus.collection import TestCollection
from repro.corpus.noise import ocr_corrupt_collection
from repro.evaluation.harness import evaluate_run, percent_improvement, run_engine
from repro.retrieval.engine import LSIRetrieval
from repro.retrieval.keyword import KeywordRetrieval

__all__ = ["noisy_retrieval_experiment"]


def noisy_retrieval_experiment(
    collection: TestCollection,
    *,
    k: int,
    word_error_rate: float = 0.088,
    scheme="log_entropy",
    seed=0,
) -> dict:
    """Clean-vs-corrupted retrieval comparison for LSI and keyword.

    Returns a dict with per-engine clean/noisy metrics and degradation
    percentages (negative = performance lost to noise).
    """
    noisy = ocr_corrupt_collection(collection, word_error_rate, seed=seed)

    results: dict = {"word_error_rate": word_error_rate}
    for label, docs_collection in (("clean", collection), ("noisy", noisy)):
        lsi = LSIRetrieval.from_texts(
            docs_collection.documents, k, scheme=scheme, seed=seed
        )
        kw = KeywordRetrieval.from_texts(
            docs_collection.documents, scheme=scheme
        )
        # Queries are always the clean user queries; judgments are the
        # collection's (content identity is untouched by surface noise).
        results[label] = {
            "lsi": evaluate_run(run_engine(lsi, docs_collection), docs_collection),
            "keyword": evaluate_run(run_engine(kw, docs_collection), docs_collection),
        }
    for engine in ("lsi", "keyword"):
        clean = results["clean"][engine]["mean_metric"]
        noisy_m = results["noisy"][engine]["mean_metric"]
        results[f"{engine}_degradation_pct"] = percent_improvement(noisy_m, clean)
    return results
