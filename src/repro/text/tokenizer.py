"""Tokenization: the paper's minimal word-identification rule.

    "Words are identified by looking for white spaces and punctuation in
    ASCII text.  Further, no stemming is used to collapse words with the
    same morphology."  (§5.4, Cross-Language Retrieval)

So the tokenizer lowercases, splits on anything that is not a letter,
digit or intra-word apostrophe/hyphen, and performs **no** stemming or
lemmatization.  Hyphens and apostrophes are kept inside words
(``pleuropneumonia-like`` stays one token when hyphen-joined in source)
but stripped at word edges.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = ["tokenize"]

# One or more word characters, possibly joined by single internal hyphens
# or apostrophes.  ASCII-focused, matching the paper's setting.
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")


def tokenize(text: str, *, min_length: int = 1) -> list[str]:
    """Split ``text`` into lowercase word tokens.

    Parameters
    ----------
    text:
        Raw document text.
    min_length:
        Drop tokens shorter than this many characters.

    Returns
    -------
    list of tokens in document order (duplicates preserved — the
    term-document matrix wants raw frequencies).
    """
    tokens = _TOKEN_RE.findall(text.lower())
    if min_length > 1:
        tokens = [t for t in tokens if len(t) >= min_length]
    return tokens


def tokenize_all(texts: Iterable[str], *, min_length: int = 1) -> list[list[str]]:
    """Tokenize a corpus, one token list per document."""
    return [tokenize(t, min_length=min_length) for t in texts]
