"""Matching people instead of documents (§5.4).

Two applications from the paper:

* **Bellcore Advisor** — "a system was developed to find local experts
  relevant to user's queries.  A query was matched to the nearest
  documents and project descriptions and the author's organization was
  returned" — :func:`find_experts`.
* **Reviewer assignment** — "LSI was used to automate the assignment of
  reviewers to submitted conference papers ... These LSI similarities
  along with additional constraints to insure that each paper was
  reviewed p times and that each reviewer received no more than r papers
  to review" — :func:`assign_reviewers`.

Reviewers are represented by texts they have written (their documents'
centroid in k-space); submissions are folded in as pseudo-documents.  The
constrained assignment maximizes total similarity greedily with a repair
pass — the paper's scale ("several hundred reviewers ... took less than
1 hour" in 1992) needs nothing fancier, and the greedy objective gap is
measured in the bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.errors import ShapeError

__all__ = ["ReviewerAssignment", "assign_reviewers", "find_experts", "people_vectors"]


def people_vectors(
    model: LSIModel, authored_docs: Sequence[Sequence[int]]
) -> np.ndarray:
    """k-space vector per person: centroid of their documents' vectors.

    ``authored_docs[i]`` lists the model document indices person ``i``
    wrote.
    """
    out = np.zeros((len(authored_docs), model.k))
    coords = model.V * model.s
    for i, docs in enumerate(authored_docs):
        idx = np.asarray(list(docs), dtype=np.int64)
        if idx.size == 0:
            raise ShapeError(f"person {i} has no authored documents")
        if idx.min() < 0 or idx.max() >= model.n_documents:
            raise ShapeError(f"person {i} authored unknown documents")
        out[i] = coords[idx].mean(axis=0)
    return out


def find_experts(
    model: LSIModel,
    people: np.ndarray,
    query: str,
    *,
    top: int = 5,
) -> list[tuple[int, float]]:
    """Rank people by cosine of their vector with the query (Advisor)."""
    qhat = project_query(model, query) * model.s
    qn = np.sqrt(np.dot(qhat, qhat))
    norms = np.sqrt(np.sum(people**2, axis=1))
    denom = norms * qn
    cos = np.zeros(people.shape[0])
    ok = denom > 0
    cos[ok] = (people[ok] @ qhat) / denom[ok]
    order = np.argsort(-cos, kind="stable")[:top]
    return [(int(i), float(cos[i])) for i in order]


@dataclass
class ReviewerAssignment:
    """Result of the constrained paper-reviewer matching.

    Attributes
    ----------
    assignments:
        ``assignments[paper]`` — list of reviewer indices (length p each).
    similarity:
        The (papers × reviewers) cosine matrix used.
    total_similarity:
        Objective value of the produced assignment.
    """

    assignments: list[list[int]]
    similarity: np.ndarray
    total_similarity: float

    def reviewer_load(self, n_reviewers: int) -> np.ndarray:
        """Papers assigned to each reviewer (length ``n_reviewers``)."""
        load = np.zeros(n_reviewers, dtype=np.int64)
        for revs in self.assignments:
            for r in revs:
                load[r] += 1
        return load


def _cosine_matrix(paper_vecs: np.ndarray, reviewer_vecs: np.ndarray) -> np.ndarray:
    pn = np.sqrt(np.sum(paper_vecs**2, axis=1, keepdims=True))
    rn = np.sqrt(np.sum(reviewer_vecs**2, axis=1, keepdims=True))
    denom = pn @ rn.T
    sim = np.zeros((paper_vecs.shape[0], reviewer_vecs.shape[0]))
    ok = denom > 0
    raw = paper_vecs @ reviewer_vecs.T
    sim[ok] = raw[ok] / denom[ok]
    return sim


def assign_reviewers(
    model: LSIModel,
    reviewer_vecs: np.ndarray,
    submissions: Sequence[str],
    *,
    reviews_per_paper: int = 3,
    max_papers_per_reviewer: int = 6,
) -> ReviewerAssignment:
    """Assign reviewers to submitted abstracts under the p/r constraints.

    Greedy by descending similarity with a feasibility repair pass; raises
    if the constraints are infeasible (``p·papers > r·reviewers``).
    """
    n_papers = len(submissions)
    n_reviewers = reviewer_vecs.shape[0]
    p, r = reviews_per_paper, max_papers_per_reviewer
    if p < 1 or r < 1:
        raise ShapeError("reviews_per_paper and max_papers_per_reviewer must be >= 1")
    if p > n_reviewers:
        raise ShapeError(f"cannot give {p} reviews with {n_reviewers} reviewers")
    if p * n_papers > r * n_reviewers:
        raise ShapeError(
            f"infeasible: {p}×{n_papers} reviews needed but capacity is "
            f"{r}×{n_reviewers}"
        )
    paper_vecs = np.stack(
        [project_query(model, s) * model.s for s in submissions]
    )
    sim = _cosine_matrix(paper_vecs, reviewer_vecs)

    # Greedy: highest-similarity (paper, reviewer) pairs first.
    order = np.argsort(-sim, axis=None, kind="stable")
    need = np.full(n_papers, p, dtype=np.int64)
    capacity = np.full(n_reviewers, r, dtype=np.int64)
    chosen: list[set[int]] = [set() for _ in range(n_papers)]
    for flat in order:
        i, j = divmod(int(flat), n_reviewers)
        if need[i] > 0 and capacity[j] > 0 and j not in chosen[i]:
            chosen[i].add(j)
            need[i] -= 1
            capacity[j] -= 1
        if not need.any():
            break

    # Repair: any still-unmet demand takes the best reviewers with spare
    # capacity (can only happen when r binds hard and greedy locally
    # exhausted a paper's good reviewers).
    for i in range(n_papers):
        while need[i] > 0:
            candidates = [
                j for j in range(n_reviewers)
                if capacity[j] > 0 and j not in chosen[i]
            ]
            if not candidates:
                raise ShapeError(
                    f"repair failed for paper {i}: no reviewer capacity left"
                )
            j = max(candidates, key=lambda jj: sim[i, jj])
            chosen[i].add(j)
            need[i] -= 1
            capacity[j] -= 1

    assignments = [sorted(c) for c in chosen]
    total = float(sum(sim[i, j] for i in range(n_papers) for j in assignments[i]))
    return ReviewerAssignment(assignments, sim, total)
