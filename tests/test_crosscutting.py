"""Cross-cutting behaviours not covered by the per-module suites."""

import numpy as np
import pytest

from repro.core import fit_lsi, project_query
from repro.core.similarity import cosine_similarities
from repro.errors import ShapeError
from repro.retrieval import KeywordRetrieval, LSIRetrieval


def test_lsi_engine_factors_mode(small_collection):
    scaled = LSIRetrieval.from_texts(
        small_collection.documents, 8, scheme="log_entropy", mode="scaled"
    )
    factors = LSIRetrieval(scaled.model, mode="factors")
    q = small_collection.queries[0]
    s1 = scaled.scores(q)
    s2 = factors.scores(q)
    assert s1.shape == s2.shape
    assert not np.allclose(s1, s2)  # Σ-scaling changes the geometry
    # both are valid cosines
    for s in (s1, s2):
        assert np.all(s <= 1 + 1e-9) and np.all(s >= -1 - 1e-9)


def test_fit_with_block_lanczos_backend(small_collection):
    model = fit_lsi(
        small_collection.documents, 6, scheme="log_entropy",
        method="block-lanczos", seed=0,
    )
    ref = fit_lsi(
        small_collection.documents, 6, scheme="log_entropy",
        method="dense", seed=0,
    )
    assert np.allclose(model.s, ref.s, atol=1e-6)


def test_keyword_engine_empty_query(small_collection):
    kw = KeywordRetrieval.from_texts(small_collection.documents)
    assert np.allclose(kw.scores(""), 0.0)
    assert kw.search("", top=3) == [
        (0, 0.0), (1, 0.0), (2, 0.0)
    ]


def test_lsi_and_keyword_share_weighting_semantics(med_texts):
    """Both engines weight the same query identically (Eq. 5): the LSI
    query vector is the keyword query vector projected by U_kΣ_k⁻¹."""
    from repro.text import ParsingRules

    rules = ParsingRules(min_doc_freq=2)
    lsi = LSIRetrieval.from_texts(
        med_texts, 2, scheme="log_entropy", rules=rules
    )
    kw = KeywordRetrieval.from_texts(
        med_texts, scheme="log_entropy", rules=rules
    )
    q = "age blood abnormalities"
    kw_vec = kw.query_vector(q)
    lsi_vec = lsi.query_vector(q)
    projected = (kw_vec @ lsi.model.U) / lsi.model.s
    assert np.allclose(lsi_vec, projected)


def test_scaled_cosine_invariant_to_column_sign(med_model):
    """Retrieval must not depend on SVD sign conventions: flipping a
    factor's sign in both U and V leaves every cosine unchanged."""
    from dataclasses import replace

    U = med_model.U.copy()
    V = med_model.V.copy()
    U[:, 1] *= -1
    V[:, 1] *= -1
    flipped = replace(med_model, U=U, V=V)
    q = "age blood abnormalities"
    a = cosine_similarities(med_model, project_query(med_model, q))
    b = cosine_similarities(flipped, project_query(flipped, q))
    assert np.allclose(a, b, atol=1e-12)


def test_retrieval_invariant_to_document_order(small_collection):
    """Shuffling the corpus must permute scores, not change them."""
    rng = np.random.default_rng(0)
    perm = rng.permutation(small_collection.n_documents)
    shuffled_docs = [small_collection.documents[int(i)] for i in perm]
    a = LSIRetrieval.from_texts(
        small_collection.documents, 8, scheme="log_entropy", seed=0,
        method="dense",
    )
    b = LSIRetrieval.from_texts(
        shuffled_docs, 8, scheme="log_entropy", seed=0, method="dense"
    )
    q = small_collection.queries[0]
    sa = a.scores(q)
    sb = b.scores(q)
    assert np.allclose(sb, sa[perm], atol=1e-8)


def test_duplicate_documents_get_identical_vectors(med_texts):
    model = fit_lsi(med_texts + [med_texts[0]], 2)
    assert np.allclose(model.V[0], model.V[-1], atol=1e-10)


def test_query_longer_than_any_document(med_model):
    giant = " ".join(med_model.vocabulary.to_list() * 3)
    qhat = project_query(med_model, giant)
    cos = cosine_similarities(med_model, qhat)
    assert np.all(np.isfinite(cos))


def test_single_document_collection():
    model = fit_lsi(["lonely document about rats and fast things"], 1)
    assert model.n_documents == 1
    qhat = project_query(model, "rats")
    assert cosine_similarities(model, qhat)[0] == pytest.approx(1.0)
