"""Tests for the store primitives: checkpoints and the write-ahead log."""

import json
import os

import numpy as np
import pytest

from repro.errors import StoreCorruptError, StoreError
from repro.store.checkpoint import (
    CHECKPOINT_FORMAT,
    MANIFEST_NAME,
    checkpoint_name,
    iter_array_files,
    latest_valid_checkpoint,
    list_checkpoints,
    read_arrays,
    verify_checkpoint,
    write_checkpoint,
)
from repro.store.wal import (
    WAL_MAGIC,
    WriteAheadLog,
    decode_array,
    encode_array,
    encode_array_auto,
    scan_wal,
    verify_wal,
)


@pytest.fixture
def arrays(rng):
    return {
        "U": rng.standard_normal((7, 3)),
        "s": np.array([3.0, 2.0, 1.0]),
        "ids": np.arange(5, dtype=np.int64),
    }


# --------------------------------------------------------------------- #
# checkpoints
# --------------------------------------------------------------------- #
def test_checkpoint_round_trip_bit_exact(tmp_path, arrays):
    info = write_checkpoint(tmp_path, arrays, {"n_documents": 5})
    assert info.checkpoint_id == 1
    assert info.path.name == checkpoint_name(1)
    assert info.manifest["format"] == CHECKPOINT_FORMAT
    assert info.meta == {"n_documents": 5}
    loaded = read_arrays(info.path)
    for name, array in arrays.items():
        assert np.array_equal(loaded[name], array)
        assert loaded[name].dtype == array.dtype


def test_checkpoint_ids_increment_and_sort(tmp_path, arrays):
    for _ in range(3):
        write_checkpoint(tmp_path, arrays, {})
    infos = list_checkpoints(tmp_path)
    assert [i.checkpoint_id for i in infos] == [1, 2, 3]


def test_verify_detects_single_flipped_byte(tmp_path, arrays):
    info = write_checkpoint(tmp_path, arrays, {})
    assert verify_checkpoint(info.path) == []
    victim = next(iter_array_files(info))
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0x01  # one flipped bit, size unchanged
    victim.write_bytes(bytes(blob))
    problems = verify_checkpoint(info.path)
    assert len(problems) == 1
    assert "crc32" in problems[0]
    with pytest.raises(StoreCorruptError):
        read_arrays(info.path)


def test_verify_detects_truncation_and_missing_file(tmp_path, arrays):
    info = write_checkpoint(tmp_path, arrays, {})
    files = list(iter_array_files(info))
    files[0].write_bytes(files[0].read_bytes()[:-1])
    files[1].unlink()
    problems = verify_checkpoint(info.path)
    assert any("size" in p for p in problems)
    assert any("missing" in p for p in problems)


def test_tmp_debris_is_reaped_and_invisible(tmp_path, arrays):
    write_checkpoint(tmp_path, arrays, {})
    debris = tmp_path / (checkpoint_name(2) + ".tmp")
    debris.mkdir()
    (debris / "half.npy").write_bytes(b"partial")
    infos = list_checkpoints(tmp_path)
    assert [i.checkpoint_id for i in infos] == [1]
    assert not debris.exists()
    # The next checkpoint takes id 2 — debris never claimed it.
    assert write_checkpoint(tmp_path, arrays, {}).checkpoint_id == 2


def test_latest_valid_falls_back_past_corruption(tmp_path, arrays):
    write_checkpoint(tmp_path, arrays, {"gen": 1})
    newest = write_checkpoint(tmp_path, arrays, {"gen": 2})
    victim = next(iter_array_files(newest))
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0xFF
    victim.write_bytes(bytes(blob))
    info, problems = latest_valid_checkpoint(tmp_path)
    assert info is not None and info.meta["gen"] == 1
    assert problems  # the skipped newest is reported


def test_duplicate_id_and_bad_manifest_rejected(tmp_path, arrays):
    info = write_checkpoint(tmp_path, arrays, {})
    with pytest.raises(StoreError):
        write_checkpoint(tmp_path, arrays, {}, checkpoint_id=1)
    (info.path / MANIFEST_NAME).write_text("{not json")
    assert list_checkpoints(tmp_path) == []
    assert verify_checkpoint(info.path)


def test_mmap_read_is_lazy_and_equal(tmp_path, arrays):
    info = write_checkpoint(tmp_path, arrays, {})
    mapped = read_arrays(info.path, mmap=True, verify=False)
    assert isinstance(mapped["U"], np.memmap)
    for name, array in arrays.items():
        assert np.array_equal(np.asarray(mapped[name]), array)


# --------------------------------------------------------------------- #
# write-ahead log
# --------------------------------------------------------------------- #
def test_wal_append_scan_round_trip(tmp_path, rng):
    path = tmp_path / "wal.log"
    block = rng.standard_normal((4, 2))
    with WriteAheadLog(path) as wal:
        assert wal.append("add_counts", {"counts": block, "doc_ids": ["a"]}) == 1
        assert wal.append("consolidate", {}) == 2
        assert wal.n_records == 2 and wal.last_lsn == 2
    scan = scan_wal(path)
    assert not scan.torn_tail and scan.problems == []
    assert [(r.lsn, r.op) for r in scan.records] == [
        (1, "add_counts"), (2, "consolidate"),
    ]
    assert np.array_equal(scan.records[0].payload["counts"], block)
    assert scan.records[0].payload["doc_ids"] == ["a"]


def test_wal_torn_tail_truncated_on_reopen(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append("add_counts", {"n": 1})
        wal.append("add_counts", {"n": 2})
        clean_size = wal.size_bytes
    # Simulate a crash mid-append: garbage frame bytes at the tail.
    with open(path, "ab") as fh:
        fh.write(b"\x99" * 11)
    scan = scan_wal(path)
    assert scan.torn_tail and len(scan.records) == 2
    wal = WriteAheadLog(path)
    assert wal.recovered_drop == 11
    assert path.stat().st_size == clean_size
    # LSNs continue after the torn record, no gap and no reuse.
    assert wal.append("add_counts", {"n": 3}) == 3
    wal.close()
    assert verify_wal(path) == []


def test_wal_mid_file_corruption_reported(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append("add_counts", {"n": 1})
        first_end = wal.size_bytes
        wal.append("add_counts", {"n": 2})
    blob = bytearray(path.read_bytes())
    blob[first_end + 12] ^= 0x01  # flip one bit inside record 2's payload
    path.write_bytes(bytes(blob))
    problems = verify_wal(path)
    assert len(problems) == 1 and "checksum" in problems[0]
    scan = scan_wal(path)
    assert [r.lsn for r in scan.records] == [1]


def test_wal_truncate_preserves_lsn_numbering(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    for i in range(3):
        wal.append("add_counts", {"n": i})
    wal.truncate()
    assert wal.n_records == 0 and wal.last_lsn == 3
    assert wal.append("add_counts", {"n": 99}) == 4
    wal.close()
    # Survives reopen: the base LSN lives in the header.
    reopened = WriteAheadLog(path)
    assert reopened.last_lsn == 4
    assert [r.lsn for r in reopened.records()] == [4]
    assert list(reopened.records(after_lsn=4)) == []
    reopened.close()


def test_wal_rejects_foreign_file(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"definitely not " + WAL_MAGIC)
    with pytest.raises(StoreCorruptError):
        WriteAheadLog(path)


def test_wal_closed_append_raises(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.close()
    with pytest.raises(StoreError):
        wal.append("add_counts", {})


def test_ndarray_codec_bit_exact(rng):
    for array in (
        rng.standard_normal((3, 4)),
        np.arange(6, dtype=np.int64).reshape(2, 3),
        np.array([], dtype=np.float64),
        np.array(3.5),
    ):
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert np.array_equal(decoded, array)


def test_wal_append_failure_leaves_clean_boundary(tmp_path):
    class FlakyFile:
        """Writes half the frame, then fails — a mid-append ENOSPC."""

        def __init__(self, fh):
            self._fh = fh
            self.fail = False

        def write(self, data):
            if self.fail:
                self._fh.write(data[: len(data) // 2])
                raise OSError("disk glitch mid-write")
            return self._fh.write(data)

        def __getattr__(self, name):
            return getattr(self._fh, name)

    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append("add_counts", {"n": 1})
    clean_size = wal.size_bytes
    flaky = FlakyFile(wal._fh)
    flaky.fail = True
    wal._fh = flaky
    with pytest.raises(OSError, match="disk glitch"):
        wal.append("add_counts", {"n": 2})
    # The torn frame was truncated away: the file is back on the
    # last-good record boundary, not hiding a bad frame mid-file.
    assert path.stat().st_size == clean_size
    assert verify_wal(path) == []
    # The next append (on the handle the repair reopened) lands cleanly
    # and reuses the never-acknowledged LSN.
    assert wal.append("add_counts", {"n": 3}) == 2
    wal.close()
    scan = scan_wal(path)
    assert not scan.torn_tail and scan.problems == []
    assert [(r.lsn, r.payload["n"]) for r in scan.records] == [(1, 1), (2, 3)]


def test_wal_rollback_unappends_record(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append("add_counts", {"n": 1})
    mark = wal.mark()
    wal.append("add_counts", {"n": 2})
    wal.rollback(mark)
    assert wal.n_records == 1 and wal.last_lsn == 1
    assert path.stat().st_size == wal.size_bytes
    # the rolled-back LSN was never acknowledged, so it is reassigned
    assert wal.append("add_counts", {"n": 3}) == 2
    with pytest.raises(StoreError, match="forward"):
        wal.rollback((wal.size_bytes + 10, 99, 99))
    wal.close()
    assert [(r.lsn, r.payload["n"]) for r in scan_wal(path).records] == [
        (1, 1), (2, 3),
    ]


def test_sparse_codec_bit_exact_and_smaller(rng):
    dense = rng.standard_normal((8, 4))
    assert "data" in encode_array_auto(dense)  # dense stays dense

    sparse = np.zeros((300, 5))
    sparse[rng.integers(0, 300, size=12), rng.integers(0, 5, size=12)] = 3.0
    sparse[7, 0] = -0.0  # must survive bitwise, not collapse to +0.0
    encoded = encode_array_auto(sparse)
    assert "indices" in encoded and "data" not in encoded
    decoded = decode_array(encoded)
    assert decoded.dtype == sparse.dtype and decoded.shape == sparse.shape
    assert np.array_equal(decoded, sparse)
    assert np.array_equal(np.signbit(decoded), np.signbit(sparse))
    # The point: the record is a fraction of the dense base64 encoding.
    assert len(json.dumps(encoded)) < len(json.dumps(encode_array(sparse))) / 5


def test_wal_append_uses_sparse_encoding_for_count_blocks(tmp_path, rng):
    path = tmp_path / "wal.log"
    block = np.zeros((500, 2))
    block[rng.integers(0, 500, size=10), rng.integers(0, 2, size=10)] = 1.0
    with WriteAheadLog(path) as wal:
        wal.append("add_counts", {"counts": block, "doc_ids": ["a", "b"]})
        sparse_size = wal.size_bytes
    dense_size = len(json.dumps({"counts": encode_array(block)}))
    assert sparse_size < dense_size / 5
    scan = scan_wal(path)
    assert np.array_equal(scan.records[0].payload["counts"], block)


def test_fsync_called_per_append(tmp_path, monkeypatch):
    calls = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
    wal = WriteAheadLog(tmp_path / "wal.log")
    header_syncs = len(calls)
    wal.append("add_counts", {"n": 1})
    wal.append("add_counts", {"n": 2})
    wal.close()
    assert len(calls) == header_syncs + 2
