"""Novel applications of LSI (paper §5.4).

Each module is a self-contained application built on the public core API:

* :mod:`repro.apps.thesaurus` — return nearby *terms* instead of documents
  ("online thesauri ... automatically constructed by LSI").
* :mod:`repro.apps.crosslanguage` — Landauer & Littman's combined-abstract
  training, monolingual fold-in, cross-language matching.
* :mod:`repro.apps.synonyms` — the TOEFL synonym test (LSI 64% vs 33%
  word overlap).
* :mod:`repro.apps.people` — matching people instead of documents: the
  Bellcore Advisor and conference reviewer assignment with the paper's
  p-reviews-per-paper / r-papers-per-reviewer constraints.
* :mod:`repro.apps.spelling` — Kukich's n-gram × word LSI spelling
  corrector.
* :mod:`repro.apps.noisy` — OCR-robust retrieval (8.8% word error rate).
"""

from repro.apps.thesaurus import build_thesaurus, suggest_index_terms
from repro.apps.crosslanguage import CrossLanguageRetrieval, mate_retrieval_accuracy
from repro.apps.synonyms import SynonymTestResult, run_synonym_test, word_overlap_baseline
from repro.apps.people import ReviewerAssignment, assign_reviewers, find_experts
from repro.apps.spelling import SpellingCorrector
from repro.apps.noisy import noisy_retrieval_experiment
from repro.apps.classification import (
    CentroidClassifier,
    classification_accuracy,
    lsi_features,
)
from repro.apps.netlib import NetlibSearch

__all__ = [
    "build_thesaurus",
    "suggest_index_terms",
    "CrossLanguageRetrieval",
    "mate_retrieval_accuracy",
    "run_synonym_test",
    "word_overlap_baseline",
    "SynonymTestResult",
    "ReviewerAssignment",
    "assign_reviewers",
    "find_experts",
    "SpellingCorrector",
    "noisy_retrieval_experiment",
    "CentroidClassifier",
    "classification_accuracy",
    "lsi_features",
    "NetlibSearch",
]
