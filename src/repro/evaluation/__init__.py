"""Retrieval evaluation in the paper's idiom (§5.1 and footnotes 1-2).

"Two measures, precision and recall, are used to summarize retrieval
performance. ... Average precision across several levels of recall can
then be used as a summary measure"; the paper's §5.2 footnote pins the
specific summary: "Performance is average precision over recall levels of
0.25, 0.50 and 0.75."
"""

from repro.evaluation.metrics import (
    average_precision,
    eleven_point_average_precision,
    interpolated_precision_at,
    precision_at,
    precision_recall_curve,
    recall_at,
    three_point_average_precision,
)
from repro.evaluation.harness import (
    EngineComparison,
    RetrievalRun,
    compare_engines,
    evaluate_run,
    percent_improvement,
    run_engine,
)
from repro.evaluation.pooling import pooled_judgments
from repro.evaluation.significance import (
    PairedTestResult,
    randomization_test,
    sign_test,
)
from repro.evaluation.report import comparison_table, recall_precision_table

__all__ = [
    "precision_at",
    "recall_at",
    "precision_recall_curve",
    "interpolated_precision_at",
    "three_point_average_precision",
    "eleven_point_average_precision",
    "average_precision",
    "RetrievalRun",
    "run_engine",
    "evaluate_run",
    "compare_engines",
    "EngineComparison",
    "percent_improvement",
    "pooled_judgments",
    "PairedTestResult",
    "sign_test",
    "randomization_test",
    "recall_precision_table",
    "comparison_table",
]
