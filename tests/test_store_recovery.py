"""Tests for cold-start recovery: capture/restore + WAL replay parity."""

import numpy as np
import pytest

from repro.corpus import SyntheticSpec, topic_collection
from repro.errors import StoreCorruptError, StoreError
from repro.store import (
    DurableIndexStore,
    capture_manager,
    recover_manager,
    restore_manager,
)
from repro.store.checkpoint import MANIFEST_NAME, iter_array_files
from repro.text import ParsingRules, build_tdm
from repro.updating import LSIIndexManager


@pytest.fixture(scope="module")
def corpus():
    col = topic_collection(
        SyntheticSpec(n_topics=3, docs_per_topic=12, doc_length=25,
                      concepts_per_topic=8, queries_per_topic=1),
        seed=7,
    )
    return col.documents[:24], col.documents[24:]


def fresh_manager(corpus, **kwargs):
    train, _ = corpus
    tdm = build_tdm(train, ParsingRules())
    kwargs.setdefault("distortion_budget", 0.15)
    return LSIIndexManager(tdm, k=6, scheme="log_entropy", **kwargs)


def assert_managers_identical(a, b):
    assert np.array_equal(a.model.U, b.model.U)
    assert np.array_equal(a.model.s, b.model.s)
    assert np.array_equal(a.model.V, b.model.V)
    assert np.array_equal(a.model.global_weights, b.model.global_weights)
    assert a.model.doc_ids == b.model.doc_ids
    assert a.model.provenance == b.model.provenance
    assert a.pending == b.pending
    assert a.n_documents == b.n_documents
    assert np.array_equal(a.tdm.matrix.data, b.tdm.matrix.data)
    assert [e.action for e in a.events] == [e.action for e in b.events]


def test_capture_restore_bit_identical(corpus):
    mgr = fresh_manager(corpus)
    later = corpus[1]
    for text in later[:3]:
        mgr.add_texts([text])  # leave pending + consolidation history
    restored = restore_manager(*capture_manager(mgr))
    assert_managers_identical(mgr, restored)
    # The restored manager keeps evolving identically.
    e1 = mgr.add_texts([later[3]], doc_ids=["NEXT"])
    e2 = restored.add_texts([later[3]], doc_ids=["NEXT"])
    assert e1.action == e2.action
    assert_managers_identical(mgr, restored)


def test_recovery_replay_matches_live_manager(corpus, tmp_path):
    train, later = corpus
    mgr = fresh_manager(corpus)
    store = DurableIndexStore.initialize(tmp_path / "store", mgr)
    for i, text in enumerate(later[:6]):
        store.add_texts([text], doc_ids=[f"W{i}"])
    store.close(flush=False)  # crash-like: no final checkpoint

    recovered, report = recover_manager(*DurableIndexStore.paths(tmp_path / "store"))
    assert report.replayed_records > 0
    assert_managers_identical(mgr, recovered)


def test_recovery_from_mid_stream_checkpoint(corpus, tmp_path):
    _, later = corpus
    store = DurableIndexStore.initialize(tmp_path / "s", fresh_manager(corpus))
    for text in later[:3]:
        store.add_texts([text])
    store.checkpoint(reason="mid")
    for text in later[3:6]:
        store.add_texts([text])
    live = store.manager
    store.close(flush=False)

    recovered, report = recover_manager(*DurableIndexStore.paths(tmp_path / "s"))
    # Only the records after the mid-stream checkpoint are replayed.
    assert 0 < report.replayed_records < 6
    assert_managers_identical(live, recovered)


def test_torn_tail_drops_only_last_record(corpus, tmp_path):
    _, later = corpus
    store = DurableIndexStore.initialize(tmp_path / "s", fresh_manager(corpus))
    sizes = []
    for i, text in enumerate(later[:4]):
        store.add_texts([text], doc_ids=[f"W{i}"])
        sizes.append(store.wal.size_bytes)
    store.close(flush=False)

    # Crash mid-append: cut into the final record's bytes.
    checkpoints_dir, wal_path = DurableIndexStore.paths(tmp_path / "s")
    with open(wal_path, "r+b") as fh:
        fh.truncate(sizes[-1] - 5)

    recovered, report = recover_manager(checkpoints_dir, wal_path)
    assert report.torn_tail
    assert recovered.n_documents == 24 + 3  # W3 lost, W0..W2 survive
    assert "W2" in recovered.model.doc_ids
    assert "W3" not in recovered.model.doc_ids


def test_manifest_doc_count_tamper_detected(corpus, tmp_path):
    import json

    store = DurableIndexStore.initialize(tmp_path / "s", fresh_manager(corpus))
    store.close(flush=False)
    checkpoints_dir, wal_path = DurableIndexStore.paths(tmp_path / "s")
    [ckpt] = list(checkpoints_dir.iterdir())
    manifest_path = ckpt / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["meta"]["n_documents"] = 999
    manifest_path.write_text(json.dumps(manifest))
    # The CRC audit does not cover meta consistency; the doc-count
    # cross-check in recovery is what refuses to serve the wrong index.
    with pytest.raises(StoreCorruptError, match="999"):
        recover_manager(checkpoints_dir, wal_path)


def test_corrupt_array_falls_back_to_older_checkpoint(corpus, tmp_path):
    _, later = corpus
    store = DurableIndexStore.initialize(tmp_path / "s", fresh_manager(corpus))
    store.add_texts([later[0]], doc_ids=["W0"])
    store.checkpoint(reason="second")
    store.close(flush=False)
    checkpoints_dir, wal_path = DurableIndexStore.paths(tmp_path / "s")

    from repro.store import list_checkpoints

    newest = list_checkpoints(checkpoints_dir)[-1]
    victim = next(iter_array_files(newest))
    blob = bytearray(victim.read_bytes())
    blob[-3] ^= 0x40
    victim.write_bytes(bytes(blob))

    recovered, report = recover_manager(checkpoints_dir, wal_path)
    # Fell back to checkpoint 1 and replayed the WAL over it.
    assert report.checkpoint_id == 1
    assert report.problems
    assert report.replayed_records == 1
    assert "W0" in recovered.model.doc_ids


def test_no_checkpoint_raises(tmp_path):
    with pytest.raises(StoreError, match="no valid checkpoint"):
        recover_manager(tmp_path / "checkpoints", tmp_path / "wal.log")


def test_compact_is_bit_identical_and_resets_replay(corpus, tmp_path):
    _, later = corpus
    store = DurableIndexStore.initialize(tmp_path / "s", fresh_manager(corpus))
    for text in later[:5]:
        store.add_texts([text])
    live = store.manager
    before = store.wal.n_records
    assert before == 5
    store.compact()
    assert store.wal.n_records == 0
    assert store.verify() == []
    store.close(flush=False)

    recovered, report = recover_manager(*DurableIndexStore.paths(tmp_path / "s"))
    assert report.replayed_records == 0
    assert_managers_identical(live, recovered)
