"""Tests for batched query scoring and the morphology corpus."""

import numpy as np
import pytest

from repro.core import fit_lsi, project_query
from repro.core.similarity import cosine_similarities, term_term_similarities
from repro.corpus.morphology import morphology_corpus
from repro.errors import ShapeError
from repro.parallel.batch import (
    batch_cosine_scores,
    batch_project_queries,
    batch_search,
)


# --------------------------------------------------------------------- #
# batched scoring
# --------------------------------------------------------------------- #
def test_batch_matches_per_query(med_model):
    queries = ["age blood abnormalities", "rats fast", "oestrogen"]
    Q = batch_project_queries(med_model, queries)
    assert Q.shape == (3, med_model.k)
    batched = batch_cosine_scores(med_model, Q)
    for i, q in enumerate(queries):
        single = cosine_similarities(med_model, project_query(med_model, q))
        assert np.allclose(batched[i], single, atol=1e-12)


def test_batch_search_top(med_model):
    results = batch_search(
        med_model, ["age blood abnormalities", "rats"], top=4
    )
    assert len(results) == 2
    assert all(len(r) == 4 for r in results)
    for r in results:
        scores = [c for _, c in r]
        assert scores == sorted(scores, reverse=True)


def test_batch_validation(med_model):
    with pytest.raises(ShapeError):
        batch_project_queries(med_model, [])
    with pytest.raises(ShapeError):
        batch_cosine_scores(med_model, np.ones((2, 7)))
    with pytest.raises(ShapeError):
        batch_search(med_model, ["x"], top=0)


def test_batch_single_query_vector(med_model):
    qhat = project_query(med_model, "blood")
    out = batch_cosine_scores(med_model, qhat)
    assert out.shape == (1, med_model.n_documents)


# --------------------------------------------------------------------- #
# morphology corpus: the doctor/doctors/doctoral claim
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def morph_model():
    corpus = morphology_corpus(n_families=6, seed=3)
    model = fit_lsi(corpus.documents, k=12, scheme="log_entropy", seed=0)
    return corpus, model


def test_corpus_structure():
    corpus = morphology_corpus(n_families=3, docs_per_context=4, seed=1)
    assert len(corpus.families) == 3
    assert len(corpus.documents) == 3 * 2 * 4
    base, inflection, derivation = corpus.families[0]
    assert inflection == base + "s"
    assert derivation == base + "al"


def test_inflections_near_derivations_far(morph_model):
    """'doctor is quite near doctors but not as similar to doctoral'."""
    corpus, model = morph_model
    for base, inflection, derivation in corpus.families:
        sims = term_term_similarities(model, base)
        v = model.vocabulary
        cos_infl = sims[v.id_of(inflection)]
        cos_deriv = sims[v.id_of(derivation)]
        assert cos_infl > 0.8, (base, cos_infl)
        assert cos_infl > cos_deriv + 0.3, (base, cos_infl, cos_deriv)


def test_inflections_rarely_cooccur(morph_model):
    """The corpus realizes the premise: base and inflection share
    contexts without sharing documents."""
    corpus, model = morph_model
    base, inflection, _ = corpus.families[0]
    both = sum(
        1 for doc in corpus.documents
        if base in doc.split() and inflection in doc.split()
    )
    assert both == 0


def test_no_stemming_needed(morph_model):
    """The tokenizer keeps all three forms distinct (no stemming), yet
    retrieval by the base form finds inflection-form documents."""
    corpus, model = morph_model
    base, inflection, _ = corpus.families[0]
    qhat = project_query(model, base)
    cos = cosine_similarities(model, qhat)
    ranked = np.argsort(-cos)
    top_docs = [corpus.documents[int(i)] for i in ranked[:10]]
    assert any(inflection in d.split() for d in top_docs)
