"""Composite queries: terms, documents, or combinations (§5.4).

"The fact that both terms and documents are represented in the same
reduced-dimension space adds another dimension of flexibility to the
LSI retrieval model.  Queries can be either terms (as in most
information retrieval applications), documents or combinations of the
two (as in relevance feedback)."

:class:`CompositeQuery` builds a k-space query vector from any mixture
of free text, vocabulary terms, and example documents (by id or index),
each with its own weight — the one query-construction surface behind
plain search, query-by-example, and the more-like-this-but-about-X
idiom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.errors import ShapeError

__all__ = ["CompositeQuery"]


@dataclass
class CompositeQuery:
    """Accumulates weighted query components against one model.

    Components are combined as a weighted sum of k-space vectors — the
    same linear-combination semantics Eq. 6 gives a multi-word query,
    extended to whole documents.
    """

    model: LSIModel
    _parts: list[tuple[np.ndarray, float]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def add_text(self, text: str, weight: float = 1.0) -> "CompositeQuery":
        """Add free text (tokenized, weighted, projected by Eq. 6)."""
        self._parts.append((project_query(self.model, text), float(weight)))
        return self

    def add_term(self, term: str, weight: float = 1.0) -> "CompositeQuery":
        """Add a single vocabulary term (its U-row scaled to q̂ space)."""
        idx = self.model.vocabulary.id_of(term)
        counts = np.zeros(self.model.n_terms)
        counts[idx] = 1.0
        vec = (counts * self.model.global_weights @ self.model.U) / self.model.s
        self._parts.append((vec, float(weight)))
        return self

    def add_document(self, doc, weight: float = 1.0) -> "CompositeQuery":
        """Add an indexed document by id (str) or index (int) —
        query-by-example."""
        j = self.model.doc_index(doc) if isinstance(doc, str) else int(doc)
        if not 0 <= j < self.model.n_documents:
            raise ShapeError(f"document index {j} out of range")
        self._parts.append((self.model.V[j].copy(), float(weight)))
        return self

    def subtract_document(self, doc, weight: float = 1.0) -> "CompositeQuery":
        """Move the query *away* from a document (negative feedback —
        the §5.1 'use of negative information' extension)."""
        return self.add_document(doc, -abs(weight))

    # ------------------------------------------------------------------ #
    @property
    def n_components(self) -> int:
        """How many weighted components have been added."""
        return len(self._parts)

    def vector(self) -> np.ndarray:
        """The combined k-space query vector (weighted sum)."""
        if not self._parts:
            raise ShapeError("composite query has no components")
        out = np.zeros(self.model.k)
        for vec, w in self._parts:
            out += w * vec
        return out

    def search(
        self,
        *,
        top: int | None = None,
        threshold: float | None = None,
        exclude_examples: bool = True,
    ) -> list[tuple[str, float]]:
        """Rank documents for the combined query.

        ``exclude_examples`` drops documents that were added as positive
        examples (query-by-example rarely wants the example back).
        """
        from repro.core.similarity import rank_documents

        ranked = rank_documents(self.model, self.vector())
        if exclude_examples:
            example_rows = {
                tuple(np.round(vec, 12).tolist())
                for vec, w in self._parts
                if w > 0
            }
            if example_rows:
                keep = []
                for doc_id, cos in ranked:
                    row = self.model.V[self.model.doc_index(doc_id)]
                    if tuple(np.round(row, 12).tolist()) in example_rows:
                        continue
                    keep.append((doc_id, cos))
                ranked = keep
        if threshold is not None:
            ranked = [(d, c) for d, c in ranked if c >= threshold]
        if top is not None:
            ranked = ranked[:top]
        return ranked
