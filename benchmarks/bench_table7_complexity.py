"""Table 7 — computational complexity of the updating methods.

Regenerates: the flop-model table (folding-in documents/terms, the three
SVD-updating phases, recomputing) over a parameter sweep, validates the
model's crossover structure against *measured* wall-clock on synthetic
matrices, and checks the Lanczos cost model ``I·cost(GᵀGx)+trp·cost(Gx)``
against measured matvec counts.
"""

import time

import numpy as np

from conftest import emit
from repro.core import fit_lsi_from_tdm
from repro.corpus import SyntheticSpec, topic_collection
from repro.text import ParsingRules, build_tdm
from repro.updating import (
    fold_documents_flops,
    fold_in_documents,
    fold_terms_flops,
    recompute_flops,
    recompute_with_documents,
    svd_update_correction_flops,
    svd_update_documents_flops,
    svd_update_terms_flops,
    update_documents,
)


def _workload():
    col = topic_collection(
        SyntheticSpec(n_topics=6, docs_per_topic=40, doc_length=60,
                      concepts_per_topic=20, queries_per_topic=0),
        seed=3,
    )
    tdm = build_tdm(col.documents, ParsingRules())
    return tdm


def test_table7_flop_model_and_measured_times(benchmark):
    tdm = _workload()
    m, n = tdm.shape
    k, p = 20, 8
    model = fit_lsi_from_tdm(tdm, k)
    new_docs = np.zeros((m, p))
    rng = np.random.default_rng(0)
    for j in range(p):
        new_docs[rng.choice(m, 30, replace=False), j] = 1.0
    ids = [f"NEW{j}" for j in range(p)]

    # --- flop model table -------------------------------------------- #
    nnz_d = int(np.count_nonzero(new_docs))
    nnz_a = tdm.matrix.nnz
    flops = {
        "folding-in documents (2mkp)": fold_documents_flops(m, k, p),
        "folding-in terms (2nkq)": fold_terms_flops(n, k, p),
        "SVD-updating documents": svd_update_documents_flops(m, n, k, p, nnz_d),
        "SVD-updating terms": svd_update_terms_flops(m, n, k, p, nnz_d),
        "SVD-updating correction": svd_update_correction_flops(m, n, k, p, nnz_d),
        "recomputing the SVD": recompute_flops(nnz_a + nnz_d, k),
    }

    # --- measured wall-clock ------------------------------------------ #
    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    measured = {
        "folding-in documents (2mkp)": timed(
            lambda: fold_in_documents(model, new_docs, ids)
        ),
        "SVD-updating documents": timed(
            lambda: update_documents(model, new_docs, ids)
        ),
        "recomputing the SVD": timed(
            lambda: recompute_with_documents(tdm, new_docs, ids, k)
        ),
    }

    benchmark(fold_in_documents, model, new_docs, ids)

    rows = [f"m={m} n={n} k={k} p={p} nnz(A)={nnz_a} nnz(D)={nnz_d}",
            f"{'method':<32s}{'model flops':>14s}{'measured s':>12s}"]
    for name, fl in flops.items():
        t = measured.get(name)
        rows.append(
            f"{name:<32s}{fl:>14,d}{t:>12.4f}" if t is not None
            else f"{name:<32s}{fl:>14,d}{'—':>12s}"
        )
    emit("Table 7 — updating-method complexity (model + measured)", rows)

    # Shape claims: folding is the cheapest by model AND by measurement;
    # the model's fold ≪ update ordering matches the measured ordering.
    assert flops["folding-in documents (2mkp)"] < flops["SVD-updating documents"]
    assert measured["folding-in documents (2mkp)"] < measured["SVD-updating documents"]
    assert measured["folding-in documents (2mkp)"] < measured["recomputing the SVD"]


def test_lanczos_cost_model_matches_measured_counts(benchmark):
    """The §4.2 cost expression: I gram products + trp extractions."""
    from repro.linalg import lanczos_svd
    from repro.linalg.counters import OperatorCounter

    tdm = _workload()
    counter = OperatorCounter(tdm.matrix)
    k = 12

    def run():
        counter.reset()
        return lanczos_svd(counter, k, seed=1)

    U, s, V, stats = benchmark(run)
    nonzero = int(np.sum(s > 0))
    rows = [
        f"I (iterations) = {stats.iterations}",
        f"trp (accepted triplets) = {nonzero}",
        f"measured GᵀGx products = {counter.gram_products}",
        f"measured total matvecs = {counter.matvecs + counter.rmatvecs}",
        f"model total = 2·I + trp = {2 * stats.iterations + nonzero}",
        f"flops (2·nnz per matvec) = {counter.flops.total:,d}",
    ]
    emit("Sparse-SVD cost model: I·cost(GᵀGx) + trp·cost(Gx)", rows)
    assert counter.gram_products == stats.iterations
    assert counter.matvecs + counter.rmatvecs == 2 * stats.iterations + nonzero
