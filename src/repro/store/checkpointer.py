"""Background checkpoint policy: snapshot without blocking queries.

A WAL-only store replays ever more records on each restart; the
checkpointer bounds that by periodically folding live state into a
fresh checkpoint.  :class:`CheckpointPolicy` says *when* (every N WAL
records, every M seconds of dirty state, or immediately after a
consolidation — consolidations rewrite the factor matrices, so the WAL
suffix before one is expensive to replay); :class:`Checkpointer` is the
daemon thread that evaluates it.

The non-blocking contract: the query path reads epoch snapshots
lock-free and is never touched here.  A checkpoint holds the store's
writer lock only to *capture* array references (the manager replaces
arrays, never mutates them, so capture is O(pending) copying at most) —
serialization and fsync happen after the lock is released.  Writers
(`/add`) can therefore collide with a capture for microseconds, and
readers never collide at all; the server throughput benchmark asserts
p99 query latency is unchanged with the checkpointer active.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import registry

__all__ = ["CheckpointPolicy", "Checkpointer"]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the background checkpointer snapshots.

    Any satisfied trigger fires; ``None`` disables that trigger.  The
    time trigger only fires when there is something to flush (dirty
    records > 0) — an idle server does not churn identical checkpoints.
    """

    every_records: int | None = 64
    every_seconds: float | None = 300.0
    on_consolidate: bool = True

    def due(
        self,
        *,
        dirty_records: int,
        seconds_since: float,
        consolidated: bool,
    ) -> str | None:
        """The trigger that fired, or None (the checkpoint ``reason``)."""
        if self.on_consolidate and consolidated and dirty_records > 0:
            return "consolidation"
        if (
            self.every_records is not None
            and dirty_records >= self.every_records
        ):
            return f"wal_records>={self.every_records}"
        if (
            self.every_seconds is not None
            and dirty_records > 0
            and seconds_since >= self.every_seconds
        ):
            return f"age>={self.every_seconds:g}s"
        return None


class Checkpointer:
    """Daemon thread driving a store's policy-based snapshots.

    The store calls :meth:`notify` after each applied mutation (cheap:
    set an event); the thread wakes, asks the policy, and calls
    ``store.checkpoint(reason)`` when due.  A failing checkpoint is
    counted (``store.checkpoint_errors``) and retried at the next
    trigger — the serving path must not die because a disk filled.
    """

    def __init__(
        self,
        store,
        policy: CheckpointPolicy | None = None,
        *,
        poll_seconds: float = 1.0,
    ):
        self.store = store
        self.policy = policy or CheckpointPolicy()
        self.poll_seconds = poll_seconds
        self._wake = threading.Event()
        self._stop = threading.Event()
        # Pending consolidation notifications.  A counter (not a flag)
        # under its own lock, debited only by the amount observed before
        # a *successful* checkpoint: a notify() landing mid-checkpoint
        # stays pending and retriggers, and a failed checkpoint loses
        # nothing.
        self._consolidations = 0
        self._flag_lock = threading.Lock()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the background thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-checkpointer", daemon=True
            )
            self._thread.start()

    def stop(self, *, timeout: float = 30.0) -> None:
        """Stop the thread; does not flush (see ``store.close``)."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ #
    def notify(self, *, consolidated: bool = False) -> None:
        """Signal that the store applied a mutation (called under its
        writer lock — must stay O(1))."""
        if consolidated:
            with self._flag_lock:
                self._consolidations += 1
        self._wake.set()

    def maybe_checkpoint(self) -> str | None:
        """Evaluate the policy once, synchronously; returns the reason
        if a checkpoint was written (test/maintenance entry point)."""
        with self._flag_lock:
            seen = self._consolidations
        reason = self.policy.due(
            dirty_records=self.store.dirty_records,
            seconds_since=self.store.seconds_since_checkpoint,
            consolidated=seen > 0,
        )
        if reason is None:
            return None
        try:
            self.store.checkpoint(reason=reason)
        except Exception:
            registry.inc("store.checkpoint_errors")
            return None
        if seen:
            with self._flag_lock:
                self._consolidations -= seen
        return reason

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.poll_seconds)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                self.maybe_checkpoint()
            except Exception:
                # maybe_checkpoint already swallows store errors; this
                # catches policy/accounting bugs so the thread survives.
                registry.inc("store.checkpoint_errors")
                time.sleep(self.poll_seconds)
