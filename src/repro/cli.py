"""Command-line interface: ``python -m repro <command>``.

The paper's toolchain was a set of command-line utilities ("a number of
software tools have been developed to perform operations such as parsing
document texts, creating a term by document matrix, computing the
truncated SVD ..., matching user queries to documents, and adding new
terms or documents").  This CLI is the same toolbox over this library:

``index``
    Build an LSI database from a directory of ``.txt`` files (or a
    single file with one document per line) and save it.
``query``
    Load a database and rank documents for a query string.
``add``
    Fold new documents into a saved database (Eq. 7) or SVD-update it
    (``--method update``), saving the result.
``info``
    Print a database's dimensions, weighting, and provenance.
``terms``
    Nearest-term (thesaurus) lookup.
``serve``
    Run the long-lived async query server (:mod:`repro.server`):
    micro-batched ``/search``, live ``/add`` through the index manager,
    ``/healthz`` and ``/stats``, graceful drain on SIGINT/SIGTERM.
    With ``--data-dir`` the index is durable (:mod:`repro.store`):
    every ``/add`` is write-ahead-logged before acknowledgment, a
    background checkpointer snapshots on policy, and a warm restart
    recovers the exact pre-crash index from the same directory.
    With repeated ``--tenant NAME=PATH`` flags the server hosts many
    named indexes behind one port (:mod:`repro.tenancy`): requests
    route by ``X-Tenant`` header or ``tenant`` body field, cold
    tenants mmap-attach on first query, and ``--max-resident`` bounds
    how many stay attached (LRU detach after in-flight queries drain).
``store``
    Maintain a durable data directory: ``inspect`` (checkpoints, WAL,
    recovery state), ``verify`` (checksum audit of every array and log
    record), ``compact`` (fold the WAL into a fresh checkpoint and
    truncate it).
``cluster``
    Multi-process serving over a durable store (:mod:`repro.cluster`):
    ``serve`` spawns shard worker processes that memory-map the newest
    checkpoint and mounts a scatter-gather router behind the HTTP front
    end — with ``--writable`` it also embeds the primary writer, so
    ``/add`` WAL-logs through the store, checkpoints seal on policy,
    and worker epochs bump live; with ``--tenants tenants.json`` it
    serves N named stores behind one front end, spawning each tenant's
    worker fleet lazily on first query; ``status`` queries a running
    cluster's health (per-worker epochs, writer lag); ``worker`` is the
    per-shard process entry point the supervisor launches.
``tenants``
    List a multi-tenant server's tenants (``list``) or print their
    residency, quota, and per-tenant index status (``status``).
``stats``
    Print the observability snapshot: counters, gauges, latency
    histograms, recent tracing spans, and (with ``--slowlog``) the
    slow-query log a server wrote with its own ``--slowlog`` flag.

Observability
-------------
Every data command runs with tracing enabled and, on success, merges
the process's metrics registry and recent spans into a state file
(``.repro_obs.json`` in the working directory, overridable with
``--obs-state`` or ``$REPRO_OBS_STATE``; ``--no-obs`` skips the write).
``repro stats`` renders the merged view, so an ``index`` + ``query``
sequence — separate processes — still yields one coherent report of
search latency histograms, cache hit rates, and Lanczos matvec/flop
gauges.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence

from repro import obs
from repro.core.build import fit_lsi
from repro.core.persistence import load_model, save_model
from repro.core.similarity import nearest_terms
from repro.errors import ReproError
from repro.retrieval.engine import LSIRetrieval
from repro.text.parser import ParsingRules

__all__ = ["main", "build_parser"]


def _read_documents(path: pathlib.Path) -> tuple[list[str], list[str]]:
    """Directory of .txt files → one document each; file → one per line."""
    if path.is_dir():
        files = sorted(path.glob("*.txt"))
        if not files:
            raise ReproError(f"no .txt files under {path}")
        return [f.read_text(encoding="utf-8") for f in files], [
            f.stem for f in files
        ]
    if path.is_file():
        lines = [
            line.strip()
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if not lines:
            raise ReproError(f"{path} contains no documents")
        return lines, [f"L{i + 1}" for i in range(len(lines))]
    raise ReproError(f"{path} does not exist")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the toolbox (see module doc)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Latent Semantic Indexing toolbox (Berry/Dumais/"
                    "Letsche SC'95 reproduction)",
    )
    parser.add_argument(
        "--obs-state", type=pathlib.Path, default=None,
        help="observability state file (default $REPRO_OBS_STATE or "
             "./.repro_obs.json)",
    )
    parser.add_argument(
        "--no-obs", action="store_true",
        help="do not persist metrics/spans for `repro stats`",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="build an LSI database")
    p_index.add_argument("source", type=pathlib.Path,
                         help=".txt directory or one-doc-per-line file")
    p_index.add_argument("output", type=pathlib.Path, help=".npz database")
    p_index.add_argument("-k", "--factors", type=int, default=100)
    p_index.add_argument("--scheme", default="log_entropy",
                         help="weighting scheme, e.g. log_entropy, raw_none")
    p_index.add_argument("--min-doc-freq", type=int, default=1)
    p_index.add_argument(
        "--svd-method", default="auto",
        choices=["auto", "dense", "lanczos", "gkl", "block-lanczos"],
        help="truncated-SVD backend (default auto)",
    )

    p_query = sub.add_parser("query", help="rank documents for a query")
    p_query.add_argument("database", type=pathlib.Path)
    p_query.add_argument("text", nargs="+", help="query words")
    p_query.add_argument("-n", "--top", type=int, default=10)
    p_query.add_argument("--threshold", type=float, default=None)

    p_add = sub.add_parser("add", help="add documents to a database")
    p_add.add_argument("database", type=pathlib.Path)
    p_add.add_argument("source", type=pathlib.Path)
    p_add.add_argument("--method", choices=["fold", "update"],
                       default="fold")
    p_add.add_argument("--output", type=pathlib.Path, default=None,
                       help="write here instead of overwriting")

    p_info = sub.add_parser("info", help="describe a database")
    p_info.add_argument("database", type=pathlib.Path)

    p_terms = sub.add_parser("terms", help="nearest terms (thesaurus)")
    p_terms.add_argument("database", type=pathlib.Path)
    p_terms.add_argument("term")
    p_terms.add_argument("-n", "--top", type=int, default=10)

    p_serve = sub.add_parser(
        "serve",
        help="run the async query server (micro-batching, live /add)",
    )
    p_serve.add_argument(
        "source", type=pathlib.Path, nargs="?", default=None,
        help=".txt directory / one-doc-per-line file (live-updatable) "
             "or a saved .npz database (read-only); optional when "
             "--data-dir holds a recoverable store",
    )
    p_serve.add_argument("-k", "--factors", type=int, default=50)
    p_serve.add_argument("--scheme", default="log_entropy")
    p_serve.add_argument("--min-doc-freq", type=int, default=1)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="largest micro-batch coalesced into one GEMM")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="batching window: how long an open batch "
                              "waits for more requests")
    p_serve.add_argument("--queue-depth", type=int, default=256,
                         help="bounded admission queue (excess → 429)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="document shards per batched GEMM")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="threads scoring shards (default sequential)")
    p_serve.add_argument("--timeout-ms", type=float, default=None,
                         help="default per-request deadline")
    p_serve.add_argument(
        "--ann-clusters", type=int, default=None,
        help="coarse-quantizer cells for ANN probing (default: auto "
             "sqrt(n); 0 disables training)",
    )
    p_serve.add_argument(
        "--probes", type=int, default=None,
        help="default ANN probe count for requests that don't specify "
             "one (default: exact scan)",
    )
    p_serve.add_argument("--distortion-budget", type=float, default=0.1,
                         help="folded fraction before /add consolidates")
    p_serve.add_argument(
        "--slow-ms", type=float, default=500.0,
        help="slow-query log threshold in milliseconds (0 disables)",
    )
    p_serve.add_argument(
        "--slowlog", type=pathlib.Path, default=None,
        help="JSONL file for slow-query records (default in-memory only)",
    )
    p_serve.add_argument(
        "--data-dir", type=pathlib.Path, default=None,
        help="durable store directory: WAL-logged /add, background "
             "checkpoints, crash-recoverable warm restarts",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=64,
        help="checkpoint after this many WAL records (0 disables)",
    )
    p_serve.add_argument(
        "--checkpoint-interval", type=float, default=300.0,
        help="checkpoint dirty state older than this many seconds "
             "(0 disables)",
    )
    p_serve.add_argument(
        "--retain", type=int, default=3,
        help="versioned checkpoints kept after pruning",
    )
    p_serve.add_argument(
        "--tenant", action="append", default=None, metavar="NAME=PATH",
        dest="tenants",
        help="host a named tenant from a saved .npz database or a "
             "durable store directory (repeatable; cold tenants "
             "mmap-attach on first query; excludes a positional "
             "source and --data-dir)",
    )
    p_serve.add_argument(
        "--max-resident", type=int, default=None,
        help="multi-tenant: most tenants attached at once — past the "
             "cap the least-recently-used detaches after its in-flight "
             "queries drain (default unbounded)",
    )

    p_store = sub.add_parser(
        "store", help="inspect/verify/compact a durable index store"
    )
    p_store.add_argument(
        "action", choices=["inspect", "verify", "compact"],
        help="inspect: describe checkpoints + WAL (read-only); verify: "
             "checksum audit (read-only); compact: fold the WAL into a "
             "fresh checkpoint (takes the writer lock)",
    )
    p_store.add_argument("data_dir", type=pathlib.Path,
                         help="store directory (the serve --data-dir)")
    p_store.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON (inspect)")

    p_cluster = sub.add_parser(
        "cluster",
        help="multi-process shard cluster over a durable store",
    )
    cluster_sub = p_cluster.add_subparsers(dest="action", required=True)

    pc_serve = cluster_sub.add_parser(
        "serve",
        help="spawn shard workers + scatter-gather router over HTTP",
    )
    pc_serve.add_argument(
        "--data-dir", type=pathlib.Path, default=None,
        help="durable store directory whose newest checkpoint to serve "
             "(exactly one of --data-dir / --tenants)",
    )
    pc_serve.add_argument(
        "--tenants", type=pathlib.Path, default=None,
        help="JSON file mapping tenant name -> durable store directory; "
             "serves every tenant behind one front end, spawning each "
             "fleet lazily on first query (read-only: excludes "
             "--writable/--standby)",
    )
    pc_serve.add_argument(
        "--max-resident", type=int, default=None,
        help="multi-tenant: most tenant fleets resident at once — past "
             "the cap the least-recently-used is drained after its "
             "in-flight queries finish (default unbounded)",
    )
    pc_serve.add_argument(
        "--queue-depth", type=int, default=256,
        help="multi-tenant: bounded front-end admission queue, carved "
             "into per-tenant shares (excess per tenant → 429)",
    )
    pc_serve.add_argument("--workers", type=int, default=4,
                          help="shard worker processes (workers // "
                               "replication shard ranges are carved)")
    pc_serve.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="replicas per shard range: reads load-balance across them, "
             "a dead replica fails over to a sibling, and epoch bumps "
             "publish on per-range quorum (default 1)",
    )
    pc_serve.add_argument("--host", default="127.0.0.1")
    pc_serve.add_argument("--port", type=int, default=8080,
                          help="HTTP port (0 picks an ephemeral port)")
    pc_serve.add_argument("--worker-timeout-ms", type=float, default=2000.0,
                          help="per-worker scatter deadline; a shard past "
                               "it is left out of a partial response")
    pc_serve.add_argument("--timeout-ms", type=float, default=None,
                          help="default whole-request deadline")
    pc_serve.add_argument(
        "--probes", type=int, default=None,
        help="default ANN probe count for requests that don't specify "
             "one (default: exact scatter)",
    )
    pc_serve.add_argument("--hedge-quantile", type=float, default=0.95,
                          help="hedge a straggling worker after this "
                               "quantile of its own latency history")
    pc_serve.add_argument("--no-hedge", action="store_true",
                          help="disable hedged requests")
    pc_serve.add_argument("--heartbeat-interval", type=float, default=1.0,
                          help="seconds between worker heartbeats")
    pc_serve.add_argument("--heartbeat-misses", type=int, default=3,
                          help="consecutive missed heartbeats before a "
                               "worker is evicted and restarted")
    pc_serve.add_argument("--restart-backoff", type=float, default=0.5,
                          help="first restart delay (doubles per retry)")
    pc_serve.add_argument("--restart-backoff-cap", type=float, default=10.0,
                          help="restart delay ceiling")
    pc_serve.add_argument(
        "--slow-ms", type=float, default=500.0,
        help="slow-query log threshold in milliseconds (0 disables)",
    )
    pc_serve.add_argument(
        "--slowlog", type=pathlib.Path, default=None,
        help="JSONL file for slow-query records (default in-memory only)",
    )
    pc_serve.add_argument(
        "--writable", action="store_true",
        help="embed the primary writer: accept /add, seal checkpoints "
             "on policy, and bump worker epochs live (the process takes "
             "the store's single-writer lock)",
    )
    pc_serve.add_argument(
        "--seal-every", type=int, default=64, metavar="RECORDS",
        help="writable: seal + bump once this many WAL records are "
             "dirty (0 disables the record trigger)",
    )
    pc_serve.add_argument(
        "--seal-interval", type=float, default=15.0, metavar="SECONDS",
        help="writable: seal + bump dirty state older than this many "
             "seconds (0 disables the age trigger)",
    )
    pc_serve.add_argument(
        "--ingest-method", choices=("fast-update", "fold-in"),
        default="fast-update",
        help="writable: per-batch ingest kernel (fast-update = "
             "Vecharynski-Saad projection update; fold-in = Eq. 7)",
    )
    pc_serve.add_argument(
        "--fast-update-rank", type=int, default=8,
        help="writable: residual sketch rank for fast-update",
    )
    pc_serve.add_argument(
        "--ann-clusters", type=int, default=None,
        help="writable: ANN cells per sealed checkpoint "
             "(default auto, 0 disables)",
    )
    pc_serve.add_argument(
        "--retain", type=int, default=3,
        help="writable: checkpoints retained on disk (min 3)",
    )
    pc_serve.add_argument(
        "--standby", action="store_true",
        help="warm standby writer: tail the primary's checkpoints + WAL "
             "read-only and adopt the store lock (promote, replay the "
             "WAL tail, resume sealing) when the primary dies; mutually "
             "exclusive with --writable",
    )
    pc_serve.add_argument(
        "--standby-poll", type=float, default=0.5, metavar="SECONDS",
        help="standby: epoch-tail and lock-probe cadence",
    )
    pc_serve.add_argument(
        "--promotion-log", type=pathlib.Path, default=None,
        help="standby: JSONL file recording the promotion timeline",
    )

    pc_status = cluster_sub.add_parser(
        "status", help="query a running cluster's health"
    )
    pc_status.add_argument("--host", default="127.0.0.1")
    pc_status.add_argument("--port", type=int, default=8080)
    pc_status.add_argument("--json", action="store_true",
                           help="emit the raw healthz JSON")

    pc_worker = cluster_sub.add_parser(
        "worker",
        help="one shard worker process (launched by the supervisor)",
    )
    pc_worker.add_argument("--data-dir", type=pathlib.Path, required=True)
    pc_worker.add_argument("--shard", type=int, required=True,
                           help="shard id within the plan")
    pc_worker.add_argument("--replica", type=int, default=0,
                           help="replica index within the shard's "
                                "replica set (identity only)")
    pc_worker.add_argument("--plan", required=True,
                           help="canonical shard-plan JSON")
    pc_worker.add_argument("--host", default="127.0.0.1")
    pc_worker.add_argument("--port", type=int, default=0,
                           help="worker port (0 picks ephemeral)")
    pc_worker.add_argument("--tenant", default=None,
                           help="tenant this worker serves (set by a "
                                "multi-tenant supervisor; score frames "
                                "naming another tenant are rejected)")

    p_tenants = sub.add_parser(
        "tenants", help="inspect a multi-tenant server's tenants"
    )
    tenants_sub = p_tenants.add_subparsers(dest="action", required=True)
    pt_list = tenants_sub.add_parser(
        "list", help="one line per registered tenant"
    )
    pt_status = tenants_sub.add_parser(
        "status", help="residency, quotas, and per-tenant index status"
    )
    for pt in (pt_list, pt_status):
        pt.add_argument("--host", default="127.0.0.1")
        pt.add_argument("--port", type=int, default=8080)
        pt.add_argument("--json", action="store_true",
                        help="emit the raw /tenants JSON")

    p_stats = sub.add_parser(
        "stats", help="print the observability snapshot"
    )
    p_stats.add_argument(
        "--data-dir", type=pathlib.Path, action="append", default=None,
        help="also publish store.* gauges from this durable store "
             "directory (read-only scan; safe while a server is live); "
             "repeat the flag for a per-tenant table over many stores",
    )
    p_stats.add_argument("--json", action="store_true",
                         help="emit the raw JSON blob instead of text")
    p_stats.add_argument("--spans", type=int, default=20,
                         help="recent spans to show (text mode)")
    p_stats.add_argument(
        "--slowlog", type=pathlib.Path, default=None,
        help="also render this slow-query JSONL file (the serve/cluster "
             "--slowlog path)",
    )
    p_stats.add_argument("--reset", action="store_true",
                         help="delete the persisted state after printing")

    return parser


def _cmd_index(args, out) -> int:
    docs, ids = _read_documents(args.source)
    k = min(args.factors, len(docs), 10**9)
    model = fit_lsi(
        docs, max(1, min(k, len(docs))),
        scheme=args.scheme,
        rules=ParsingRules(min_doc_freq=args.min_doc_freq),
        doc_ids=ids,
        method=args.svd_method,
    )
    written = save_model(model, args.output)
    print(
        f"indexed {model.n_documents} documents, {model.n_terms} terms, "
        f"k={model.k} → {written}",
        file=out,
    )
    return 0


def _cmd_query(args, out) -> int:
    model = load_model(args.database)
    query = " ".join(args.text)
    # Serve through the retrieval engine so the query takes the same
    # instrumented fast path production traffic does (lsi.search span,
    # query-vector cache, cached DocumentIndex, argpartition top-k).
    engine = LSIRetrieval(model)
    ranked = engine.search(query, top=args.top, threshold=args.threshold)
    for doc_index, cosine in ranked:
        print(f"{cosine:.4f}  {model.doc_ids[doc_index]}", file=out)
    return 0


def _cmd_add(args, out) -> int:
    from repro.text.tdm import count_vector
    from repro.text.tokenizer import tokenize
    import numpy as np

    model = load_model(args.database)
    docs, ids = _read_documents(args.source)
    if args.method == "fold":
        from repro.updating.folding import fold_in_texts

        model = fold_in_texts(model, docs, doc_ids=ids)
    else:
        from repro.updating.svd_update import update_documents

        counts = np.stack(
            [count_vector(tokenize(t), model.vocabulary) for t in docs],
            axis=1,
        )
        model = update_documents(model, counts, ids, exact=True)
    target = args.output or args.database
    written = save_model(model, target)
    print(
        f"{args.method}: +{len(docs)} documents → {written} "
        f"(now {model.n_documents} documents, provenance "
        f"{model.provenance})",
        file=out,
    )
    return 0


def _cmd_info(args, out) -> int:
    model = load_model(args.database)
    print(f"documents : {model.n_documents}", file=out)
    print(f"terms     : {model.n_terms}", file=out)
    print(f"factors   : {model.k}", file=out)
    print(f"weighting : {model.scheme.name}", file=out)
    print(f"provenance: {model.provenance}", file=out)
    print(f"sigma     : {model.s[:8].round(4).tolist()}"
          + ("..." if model.k > 8 else ""), file=out)
    return 0


def _cmd_terms(args, out) -> int:
    model = load_model(args.database)
    for term, cosine in nearest_terms(model, args.term, top=args.top):
        print(f"{cosine:.4f}  {term}", file=out)
    return 0


def _durable_state(args, out):
    """Recover or seed the durable store behind ``serve --data-dir``."""
    from repro.server import manager_from_texts
    from repro.store import (
        CheckpointPolicy,
        DurableIndexStore,
        DurableServingState,
    )

    if DurableIndexStore.exists(args.data_dir):
        store = DurableIndexStore.open(
            args.data_dir, retain=args.retain,
            ann_clusters=args.ann_clusters,
        )
        report = store.last_recovery
        print(
            f"recovered {report.n_documents} documents from "
            f"{report.checkpoint_path.name} "
            f"(+{report.replayed_records} WAL records replayed"
            + (", torn tail dropped" if report.torn_tail else "")
            + ")",
            file=out, flush=True,
        )
        if args.source is not None:
            print(
                f"note: --data-dir {args.data_dir} is recoverable; "
                f"ignoring source {args.source}",
                file=out, flush=True,
            )
    else:
        if args.source is None:
            raise ReproError(
                f"{args.data_dir} holds no recoverable store; provide a "
                "document source to seed it"
            )
        docs, ids = _read_documents(args.source)
        manager = manager_from_texts(
            docs, ids,
            k=args.factors,
            scheme=args.scheme,
            min_doc_freq=args.min_doc_freq,
            distortion_budget=args.distortion_budget,
        )
        store = DurableIndexStore.initialize(
            args.data_dir, manager, retain=args.retain,
            ann_clusters=args.ann_clusters,
        )
        print(f"seeded durable store at {args.data_dir}", file=out, flush=True)
    store.start_checkpointer(
        CheckpointPolicy(
            every_records=args.checkpoint_every or None,
            every_seconds=args.checkpoint_interval or None,
        )
    )
    return DurableServingState(store)


def _parse_tenant_specs(specs: list[str]) -> dict[str, pathlib.Path]:
    """``NAME=PATH`` flags → an ordered ``{name: path}`` map."""
    tenants: dict[str, pathlib.Path] = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(
                f"--tenant expects NAME=PATH, got {spec!r}"
            )
        if name in tenants:
            raise ReproError(f"duplicate tenant {name!r}")
        tenants[name] = pathlib.Path(path)
    return tenants


def _cmd_serve(args, out) -> int:
    """Build the serving state and run the async server until SIGINT."""
    import asyncio
    import signal

    from repro.server import (
        ServerConfig,
        QueryService,
        ServingState,
        start_http_server,
        state_from_texts,
    )

    store = None
    state = None
    tenant_registry = None
    if args.tenants:
        if args.source is not None or args.data_dir is not None:
            raise ReproError(
                "--tenant excludes a positional source and --data-dir; "
                "every index comes from a NAME=PATH flag"
            )
        from repro.tenancy import IndexRegistry

        tenant_names = _parse_tenant_specs(args.tenants)
        tenant_registry = IndexRegistry(max_resident=args.max_resident)
        for name, path in tenant_names.items():
            if not path.exists():
                raise ReproError(
                    f"tenant {name!r}: {path} does not exist"
                )
            tenant_registry.register(name, data_dir=path)
    elif args.data_dir is not None:
        state = _durable_state(args, out)
        store = state.store
    elif args.source is None:
        raise ReproError(
            "serve needs a document source, --data-dir, or --tenant flags"
        )
    elif args.source.suffix == ".npz":
        state = ServingState.for_model(load_model(args.source))
    else:
        docs, ids = _read_documents(args.source)
        state = state_from_texts(
            docs, ids,
            k=args.factors,
            scheme=args.scheme,
            min_doc_freq=args.min_doc_freq,
            distortion_budget=args.distortion_budget,
        )
    if state is not None and args.data_dir is None and args.ann_clusters != 0:
        # In-memory serving trains its quantizer at startup (the durable
        # path gets one from the checkpoint, trained by the writer).
        state.train_ann(n_clusters=args.ann_clusters)
    config = ServerConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        shards=args.shards,
        workers=args.workers,
        default_timeout_ms=args.timeout_ms,
        default_probes=args.probes,
        slow_ms=args.slow_ms,
        slowlog_path=(
            str(args.slowlog) if args.slowlog is not None else None
        ),
    )

    async def run() -> None:
        service = QueryService(tenant_registry or state, config)
        server = await start_http_server(service, args.host, args.port)
        port = server.sockets[0].getsockname()[1]
        if tenant_registry is not None:
            names = ", ".join(tenant_registry.tenant_ids)
            print(
                f"serving {len(tenant_registry.tenant_ids)} tenants "
                f"({names}) lazily"
                + (
                    f", max {args.max_resident} resident"
                    if args.max_resident is not None else ""
                )
                + f" on http://{args.host}:{port}",
                file=out, flush=True,
            )
        else:
            snapshot = state.current()
            print(
                f"serving {snapshot.n_documents} documents "
                f"(k={snapshot.k}, "
                f"{'live-updatable' if state.writable else 'read-only'}"
                + (", durable" if store is not None else "")
                + (", ann" if snapshot.ann is not None else "")
                + f") on http://{args.host}:{port}",
                file=out, flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # platforms without loop signals
                signal.signal(sig, lambda *_: stop.set())
        await stop.wait()
        print("draining: rejecting new requests, flushing the queue",
              file=out, flush=True)
        server.close()
        await server.wait_closed()
        await service.drain()
        if store is not None:
            # Graceful-drain flush: a clean restart replays zero records.
            store.close(flush=True)
            print("store flushed", file=out, flush=True)
        print("drained cleanly", file=out, flush=True)

    asyncio.run(run())
    return 0


def _cmd_cluster(args, out) -> int:
    """Dispatch the ``cluster`` verbs: serve / status / worker."""
    if args.action == "worker":
        from repro.cluster.worker import run_worker

        return run_worker(
            args.data_dir, args.plan, args.shard,
            replica=args.replica, host=args.host, port=args.port,
            tenant=args.tenant, out=out,
        )

    if args.action == "status":
        from repro.server.client import ServerClient

        with ServerClient(args.host, args.port) as client:
            health = client.healthz()
        if args.json:
            print(json.dumps(health, indent=2, sort_keys=True), file=out)
            return 0
        print(f"status    : {health.get('status')}", file=out)
        print(f"epoch     : {health.get('epoch')}", file=out)
        print(f"checkpoint: {health.get('checkpoint')}", file=out)
        print(f"documents : {health.get('n_documents')}", file=out)
        print(
            f"shards    : {health.get('workers_live')}/"
            f"{health.get('n_workers', health.get('n_shards'))} "
            "workers live",
            file=out,
        )
        if health.get("replication", 1) > 1:
            print(f"replication: {health['replication']}", file=out)
        for rng in health.get("ranges", []):
            print(
                f"range {rng['shard']:<4}: "
                f"{rng['replicas_healthy']}/{rng['replicas_total']} "
                f"replicas healthy rows=[{rng['lo']},{rng['hi']})",
                file=out,
            )
        for row in health.get("workers", []):
            replica = (
                f" replica={row['replica']}" if "replica" in row else ""
            )
            print(
                f"shard {row['shard']:<4}: {row['state']:<10} "
                f"rows=[{row['lo']},{row['hi']}) epoch={row.get('epoch')}"
                f"{replica} pid={row['pid']} port={row['port']} "
                f"restarts={row['restarts']}",
                file=out,
            )
        writer = health.get("writer") or {}
        if writer.get("enabled"):
            print(
                f"writer    : {writer.get('ingest_method')} "
                f"wal_lsn={writer.get('wal_lsn')} "
                f"sealed_epoch={writer.get('sealed_epoch')} "
                f"lag={writer.get('lag_records')} record(s) "
                f"seals={writer.get('seals_total')}",
                file=out,
            )
        else:
            print("writer    : read-only", file=out)
        slowlog = health.get("slowlog") or {}
        if slowlog:
            slowest = slowlog.get("slowest_ms")
            print(
                f"slowlog   : {slowlog.get('records', 0)} record(s) over "
                f"{slowlog.get('threshold_ms')}ms"
                + (f", slowest {slowest:.1f}ms" if slowest else "")
                + (
                    f" → {slowlog['path']}"
                    if slowlog.get("path") else " (in-memory)"
                ),
                file=out,
            )
        return 0

    # serve
    import asyncio
    import signal

    from repro.cluster import ClusterConfig, ClusterService
    from repro.server import start_http_server

    if (args.data_dir is None) == (args.tenants is None):
        raise ReproError(
            "cluster serve needs exactly one of --data-dir (single "
            "tenant) or --tenants (a name -> store-directory JSON map)"
        )

    config = ClusterConfig(
        writable=args.writable,
        seal_every_records=(
            args.seal_every if args.seal_every > 0 else None
        ),
        seal_interval_s=(
            args.seal_interval if args.seal_interval > 0 else None
        ),
        ingest_method=args.ingest_method,
        fast_update_rank=args.fast_update_rank,
        ann_clusters=args.ann_clusters,
        retain=args.retain,
        workers=args.workers,
        replication=args.replication,
        standby=args.standby,
        standby_poll_s=args.standby_poll,
        promotion_log=(
            str(args.promotion_log)
            if args.promotion_log is not None else None
        ),
        worker_timeout_ms=args.worker_timeout_ms,
        hedge_quantile=args.hedge_quantile,
        hedge=not args.no_hedge,
        heartbeat_interval=args.heartbeat_interval,
        miss_limit=args.heartbeat_misses,
        restart_backoff=args.restart_backoff,
        restart_backoff_cap=args.restart_backoff_cap,
        default_timeout_ms=args.timeout_ms,
        default_probes=args.probes,
        slow_ms=args.slow_ms,
        slowlog_path=(
            str(args.slowlog) if args.slowlog is not None else None
        ),
    )

    tenant_map: dict[str, pathlib.Path] | None = None
    if args.tenants is not None:
        try:
            raw = json.loads(args.tenants.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ReproError(f"cannot read {args.tenants}: {exc}")
        except ValueError as exc:
            raise ReproError(f"{args.tenants} is not valid JSON: {exc}")
        if not isinstance(raw, dict) or not raw or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in raw.items()
        ):
            raise ReproError(
                f"{args.tenants} must be a non-empty JSON object "
                "mapping tenant name -> store directory"
            )
        tenant_map = {name: pathlib.Path(path) for name, path in raw.items()}
        for name, path in tenant_map.items():
            if not path.is_dir():
                raise ReproError(
                    f"tenant {name!r}: {path} is not a directory"
                )

    announce = lambda line: print(
        f"[supervisor] {line}", file=out, flush=True
    )

    async def run() -> None:
        if tenant_map is not None:
            from repro.tenancy import TenantClusterService

            service = TenantClusterService(
                tenant_map, config,
                max_resident=args.max_resident,
                queue_depth=args.queue_depth,
                host=args.host,
                announce=announce,
            )
        else:
            service = ClusterService(
                args.data_dir, config, announce=announce,
            )
        server = await start_http_server(service, args.host, args.port)
        port = server.sockets[0].getsockname()[1]
        if tenant_map is not None:
            names = ", ".join(tenant_map)
            print(
                f"cluster serving {len(tenant_map)} tenants ({names}) "
                "lazily"
                + (
                    f", max {args.max_resident} resident"
                    if args.max_resident is not None else ""
                )
                + f" on http://{args.host}:{port}",
                file=out, flush=True,
            )
        else:
            print(
                f"cluster serving {service.model.n_documents} documents "
                f"across {service.plan.n_shards} shards "
                f"(epoch {service.epoch}, checkpoint {service.checkpoint}"
                + (
                    f", replication={service.plan.replication}"
                    if service.plan.replication > 1 else ""
                )
                + (", ann" if service.ann else "")
                + (", writable" if service.primary is not None else "")
                + (", standby" if service.standby is not None else "")
                + f") on http://{args.host}:{port}",
                file=out, flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # platforms without loop signals
                signal.signal(sig, lambda *_: stop.set())
        await stop.wait()
        print("draining: stopping the router and workers",
              file=out, flush=True)
        server.close()
        await server.wait_closed()
        await service.drain()
        print("drained cleanly", file=out, flush=True)

    asyncio.run(run())
    return 0


def _cmd_store(args, out) -> int:
    """Maintain a durable data directory (inspect / verify / compact).

    ``inspect`` and ``verify`` are read-only: they scan manifests and
    the WAL without opening the store, so they are safe against a data
    directory a live server owns.  ``compact`` rewrites the WAL and
    therefore takes the single-writer lock — it refuses (with a clear
    error) while a server holds the directory.
    """
    from repro.store import DurableIndexStore

    if args.action == "verify":
        checkpoints_dir, wal_path = DurableIndexStore.paths(args.data_dir)
        from repro.store import list_checkpoints, verify_checkpoint, verify_wal

        infos = list_checkpoints(checkpoints_dir)
        if not infos and not wal_path.exists():
            print(f"error: {args.data_dir} is not a store", file=sys.stderr)
            return 1
        problems: list[str] = []
        for info in infos:
            problems.extend(verify_checkpoint(info.path))
        problems.extend(verify_wal(wal_path))
        if problems:
            for problem in problems:
                print(f"CORRUPT  {problem}", file=out)
            print(f"{len(problems)} integrity problem(s) found", file=out)
            return 1
        print(
            f"ok: {len(infos)} checkpoint(s) and the WAL verified clean",
            file=out,
        )
        return 0

    if not DurableIndexStore.exists(args.data_dir):
        print(f"error: {args.data_dir} is not a store", file=sys.stderr)
        return 1

    if args.action == "compact":
        store = DurableIndexStore.open(args.data_dir)
        try:
            before = store.wal.n_records
            path = store.compact()
            print(
                f"compacted: folded {before} WAL record(s) into "
                f"{path.name}; WAL truncated",
                file=out,
            )
            return 0
        finally:
            store.close(flush=False)

    # inspect: lock-free read-only scan, safe while a server is live
    from repro.store import read_store_status

    description = read_store_status(args.data_dir)
    if args.json:
        print(json.dumps(description, indent=2, sort_keys=True), file=out)
        return 0
    print(f"store     : {description['data_dir']}", file=out)
    print(
        f"documents : {description['n_documents']} "
        f"({description['pending']} pending fold-in)",
        file=out,
    )
    for ckpt in description["checkpoints"]:
        ann = (
            f"ann={ckpt['ann_clusters']} cells" if ckpt["ann"] else "ann=no"
        )
        print(
            f"checkpoint: {pathlib.Path(ckpt['path']).name}  "
            f"docs={ckpt['n_documents']}  wal_lsn={ckpt['wal_lsn']}  "
            f"{ckpt['bytes']} bytes  {ann}  ({ckpt['reason']})",
            file=out,
        )
    wal = description["wal"]
    print(
        f"wal       : {wal['records']} record(s), {wal['bytes']} bytes, "
        f"last LSN {wal['last_lsn']} "
        f"({description['dirty_records']} not yet checkpointed)",
        file=out,
    )
    print(
        f"recovery  : a cold start would replay "
        f"{description['last_recovery_replayed']} record(s)",
        file=out,
    )
    for problem in description["problems"]:
        print(f"PROBLEM   : {problem}", file=out)
    return 0


def _cmd_tenants(args, out) -> int:
    """Inspect a multi-tenant server through its ``/tenants`` route."""
    from repro.server.client import ServerClient

    with ServerClient(args.host, args.port) as client:
        info = client.tenants()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True), file=out)
        return 0
    tenants = info.get("tenants", {})
    if args.action == "list":
        for tid in tenants:
            print(tid, file=out)
        return 0
    # status
    quotas = info.get("quotas", {})
    pending = quotas.get("pending", {})
    max_resident = info.get("max_resident")
    print(
        f"tenants    : {len(tenants)}"
        + (
            f" (max {max_resident} resident)"
            if max_resident is not None else ""
        ),
        file=out,
    )
    if quotas:
        print(
            f"quota share: {quotas.get('share')} admission slot(s) per "
            "tenant",
            file=out,
        )
    for tid, row in tenants.items():
        if row.get("resident"):
            docs = row.get("n_documents")
            detail = (
                f"resident   docs={docs if docs is not None else '?'} "
                f"epoch={row.get('epoch', '?')} "
                f"pins={row.get('pins', 0)}"
            )
            if row.get("evict_pending"):
                detail += " evict-pending"
        else:
            detail = "cold      "
        detail += (
            f" attaches={row.get('attaches', 0)}"
            f" pending={pending.get(tid, 0)}"
        )
        if row.get("data_dir"):
            detail += f"  {row['data_dir']}"
        print(f"{tid:<12}: {detail}", file=out)
    return 0


def _state_path(args) -> pathlib.Path:
    return args.obs_state if args.obs_state is not None else obs.export.default_state_path()


def _stats_tenant_table(dirs: list[pathlib.Path], args, out) -> int:
    """Repeated ``--data-dir`` flags: one status row per tenant store.

    Lock-free read-only scan (:func:`~repro.store.read_store_status`
    never opens the store), so it is safe against the data directories
    of a live multi-tenant server.  Tenant names are the directory
    basenames.
    """
    from repro.store import DurableIndexStore, read_store_status

    rows: dict[str, dict] = {}
    for path in dirs:
        if not DurableIndexStore.exists(path):
            raise ReproError(f"{path} is not a durable store")
        name = path.name or str(path)
        if name in rows:
            raise ReproError(f"duplicate tenant directory name {name!r}")
        rows[name] = read_store_status(path)
    if args.json:
        print(json.dumps({"tenants": rows}, indent=2, sort_keys=True),
              file=out)
        return 0
    header = (
        f"{'tenant':<16} {'docs':>8} {'pending':>8} {'ckpts':>6} "
        f"{'wal':>6} {'dirty':>6} {'replay':>7}"
    )
    print(header, file=out)
    for name in sorted(rows):
        status = rows[name]
        print(
            f"{name:<16} {status['n_documents']:>8} "
            f"{status['pending']:>8} {len(status['checkpoints']):>6} "
            f"{status['wal']['records']:>6} {status['dirty_records']:>6} "
            f"{status['last_recovery_replayed']:>7}",
            file=out,
        )
        for problem in status["problems"]:
            print(f"  PROBLEM: {problem}", file=out)
    return 0


def _cmd_stats(args, out) -> int:
    """Render the persisted + live observability state."""
    if args.data_dir is not None and len(args.data_dir) > 1:
        return _stats_tenant_table(args.data_dir, args, out)
    if args.data_dir is not None:
        # Publish store.* gauges (wal_records, checkpoint_age_seconds,
        # last_recovery_replayed, ...) into this process's registry so they
        # merge into the rendered snapshot below.  Read-only: the store is
        # never opened (no lock, no WAL handle, no tail truncation), so
        # this is safe to run against a live server's data directory.
        from repro.store import DurableIndexStore, publish_store_gauges

        data_dir = args.data_dir[0]
        if not DurableIndexStore.exists(data_dir):
            raise ReproError(f"{data_dir} is not a durable store")
        publish_store_gauges(data_dir)
    path = _state_path(args)
    state = obs.load_state(path) or {"metrics": {}, "spans": []}
    # Merge in anything recorded by this process (in-process callers see
    # live data; the fresh `python -m repro stats` process contributes
    # nothing and just renders the file).
    metrics = obs.merge_snapshots(
        state.get("metrics", {}), obs.registry.snapshot()
    )
    spans = list(state.get("spans", [])) + [
        s.to_dict() for s in obs.recent_spans()
    ]
    slow_entries = (
        obs.read_slowlog(args.slowlog) if args.slowlog is not None else []
    )
    if args.json:
        blob = {"schema": obs.export.SCHEMA, "metrics": metrics, "spans": spans}
        if args.slowlog is not None:
            blob["slow_queries"] = slow_entries
        print(json.dumps(blob, indent=2, sort_keys=True), file=out)
    else:
        print(f"observability state: {path}", file=out)
        print(obs.format_snapshot(metrics), file=out)
        print(obs.format_spans(spans, limit=args.spans), file=out)
        if args.slowlog is not None:
            print(obs.format_slowlog(slow_entries), file=out)
    if args.reset:
        try:
            path.unlink()
        except OSError:
            pass
        print(f"reset: removed {path}", file=out)
    return 0


_COMMANDS = {
    "index": _cmd_index,
    "query": _cmd_query,
    "add": _cmd_add,
    "info": _cmd_info,
    "terms": _cmd_terms,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "store": _cmd_store,
    "tenants": _cmd_tenants,
    "stats": _cmd_stats,
}


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "stats":
        try:
            return _cmd_stats(args, out)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    # Data commands run traced so `repro stats` can show their spans;
    # the previous tracing state is restored for in-process callers.
    prev_tracing = obs.enable_tracing(True)
    try:
        code = _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        obs.enable_tracing(prev_tracing)
    if code == 0 and not args.no_obs:
        try:
            obs.dump_state(_state_path(args))
        except OSError as exc:  # unwritable state dir: warn, don't fail
            print(f"warning: could not persist obs state: {exc}",
                  file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
