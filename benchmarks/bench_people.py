"""§5.4 (Matching People) — Bellcore Advisor and reviewer assignment.

Regenerates: expert finding (query → nearest people) and the constrained
reviewer assignment ("each paper was reviewed p times and ... each
reviewer received no more than r papers"), checking assignment quality
against the topical ground truth.  Times the constrained assignment.
"""

import numpy as np

from conftest import emit
from repro.apps import assign_reviewers
from repro.apps.people import find_experts, people_vectors
from repro.core import fit_lsi
from repro.corpus import SyntheticSpec, topic_collection


def test_reviewer_assignment(benchmark):
    n_topics = 6
    col = topic_collection(
        SyntheticSpec(
            n_topics=n_topics, docs_per_topic=8, queries_per_topic=2,
            query_length=4, query_synonym_shift=0.3,
        ),
        seed=6,
    )
    model = fit_lsi(col.documents, k=12, scheme="log_entropy", seed=0)
    # Three reviewers per topic, each represented by texts they "wrote".
    authored = [
        [t * 8 + i, t * 8 + i + 3]
        for t in range(n_topics)
        for i in range(3)
    ]
    reviewer_topic = [t for t in range(n_topics) for _ in range(3)]
    vecs = people_vectors(model, authored)
    submissions = col.queries  # 12 "papers", 2 per topic
    paper_topic = [t for t in range(n_topics) for _ in range(2)]

    asg = benchmark(
        assign_reviewers, model, vecs, submissions,
        reviews_per_paper=3, max_papers_per_reviewer=4,
    )

    load = asg.reviewer_load(len(authored))
    topical = np.mean([
        np.mean([reviewer_topic[r] == paper_topic[i] for r in revs])
        for i, revs in enumerate(asg.assignments)
    ])
    experts = find_experts(model, vecs, submissions[0], top=3)

    rows = [
        f"papers={len(submissions)} reviewers={len(authored)} "
        "p=3 r=4",
        f"reviewer load: max={load.max()} total={load.sum()}",
        f"fraction of assignments topically correct: {topical:.2f}",
        f"total assignment similarity: {asg.total_similarity:.2f}",
        f"advisor: top experts for paper 0 = {[e for e, _ in experts]} "
        f"(true topic reviewers: 0, 1, 2)",
    ]
    emit("§5.4 — reviewer assignment / Bellcore Advisor", rows)

    assert all(len(r) == 3 for r in asg.assignments)
    assert load.max() <= 4
    assert topical > 0.8  # "as good as those of human experts"
    assert {e for e, _ in experts} <= {0, 1, 2}
