"""``python -m repro`` — the LSI command-line toolbox."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
