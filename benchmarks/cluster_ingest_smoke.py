"""End-to-end smoke test for the writable cluster's ingest tier.

Boots the real thing — ``python -m repro cluster serve --writable`` as
a subprocess, shard workers under it — and checks the write-path
acceptance criteria that only hold across process boundaries:

* **ingest while serving**: a background ``/add`` stream runs while the
  foreground hammers ``/search``; every response must be complete
  (``partial=false``) across at least one epoch bump — the
  seal -> bump -> publish ordering drops zero in-flight queries;
* **propagation**: after the stream drains, the serving epoch has
  advanced, every worker reports the serving epoch, the writer's lag is
  zero, and the new documents are searchable;
* **SIGKILL mid-stream**: the front end (which owns the store) is
  killed -9 between acknowledged batches;
* **bit-identical recovery**: replaying the surviving WAL twice
  in-process yields byte-identical factors, and every acknowledged
  document is in the replayed model — acknowledged means WAL-fsynced;
* **restart**: a fresh ``--writable`` boot on the same store seals the
  recovered state (``reason=recover``) and serves every acknowledged
  document, then drains cleanly on SIGTERM.

The phase evidence lands in ``SMOKE_cluster_ingest.json`` (CI uploads
it).  Run directly (CI does)::

    PYTHONPATH=src:benchmarks python benchmarks/cluster_ingest_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from repro.server import ServerClient
from repro.server.state import manager_from_texts
from repro.store.durable import DurableIndexStore
from repro.store.recovery import recover_manager

K = 8
SHARDS = 2
TOP = 10
SEED_DOCS = 40
STREAM_BATCHES = 8
BATCH = 3


def _corpus(n: int, seed: int = 43) -> list[str]:
    rng = np.random.default_rng(seed)
    vocab = [f"w{i}" for i in range(50)]
    return [" ".join(rng.choice(vocab, size=15)) for _ in range(n)]


def _seed_store(data_dir: str, texts: list[str]) -> None:
    ids = [f"D{i}" for i in range(len(texts))]
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=K)
    )
    store.close(flush=False)


def _start_cluster(data_dir: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro cluster serve --writable``; return (proc, port)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--no-obs", "cluster", "serve",
            "--data-dir", data_dir, "--workers", str(SHARDS),
            "--port", "0", "--heartbeat-interval", "0.25",
            "--writable", "--seal-every", "3", "--seal-interval", "1.0",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"cluster exited before its banner (rc={proc.poll()})"
            )
        line = line.strip()
        print(f"  | {line}")
        if line.startswith("cluster serving ") and "on http://" in line:
            assert ", writable" in line, line
            return proc, int(line.rsplit(":", 1)[1])
    proc.kill()
    raise SystemExit("cluster banner never appeared")


class _AddStream(threading.Thread):
    """A background ``/add`` stream recording which batches were acked.

    ``acked`` only ever grows on an HTTP 200 — an ack is the server's
    claim that the batch is WAL-fsynced, which the recovery phase then
    holds it to.  A connection error (the SIGKILL phase) just ends the
    stream.
    """

    def __init__(self, port: int, prefix: str, *, pause: float = 0.0):
        super().__init__(daemon=True)
        self.port = port
        self.prefix = prefix
        self.pause = pause
        self.acked: list[str] = []
        self.error: str | None = None

    def run(self) -> None:
        texts = _corpus(STREAM_BATCHES * BATCH, seed=100 + ord(self.prefix[0]))
        try:
            with ServerClient(port=self.port) as client:
                for b in range(STREAM_BATCHES):
                    ids = [
                        f"{self.prefix}{b * BATCH + j}" for j in range(BATCH)
                    ]
                    ack = client.add(
                        texts[b * BATCH:(b + 1) * BATCH], ids
                    )
                    assert ack["durable"] is True, ack
                    self.acked.extend(ids)
                    if self.pause:
                        time.sleep(self.pause)
        except Exception as exc:  # noqa: BLE001 — expected on SIGKILL
            self.error = repr(exc)


def _wait_converged(client: ServerClient, *, past_epoch: int) -> dict:
    """Block until the cluster serves an epoch past ``past_epoch`` with
    every worker on it and the writer fully drained; return healthz."""
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        h = client.healthz()
        if (
            h["epoch"] > past_epoch
            and h["writer"]["lag_records"] == 0
            and all(w["epoch"] == h["epoch"] for w in h["workers"])
        ):
            return h
        time.sleep(0.1)
    raise SystemExit(f"cluster never converged past epoch {past_epoch}")


def main() -> None:
    evidence: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        _seed_store(data_dir, _corpus(SEED_DOCS))

        proc, port = _start_cluster(data_dir)
        worker_pids: list[int] = []
        try:
            client = ServerClient(port=port)
            health = client.healthz()
            assert health["status"] == "ok", health
            assert health["writer"]["enabled"] is True, health["writer"]
            assert health["writer"]["ingest_method"] == "fast-update"
            epoch0 = health["epoch"]
            worker_pids = [w["pid"] for w in health["workers"]]

            # Phase 1: ingest while serving — zero in-flight drops
            # across at least one epoch bump.
            stream = _AddStream(port, "A", pause=0.05)
            stream.start()
            searches = 0
            bumped_mid_flight = False
            deadline = time.monotonic() + 90
            while stream.is_alive() or not bumped_mid_flight:
                assert time.monotonic() < deadline, "phase 1 stalled"
                data = client.search("w1 w2 w3", top=TOP)
                assert data["partial"] is False, data
                searches += 1
                if data["epoch"] > epoch0:
                    bumped_mid_flight = True
            stream.join()
            assert stream.error is None, stream.error
            assert len(stream.acked) == STREAM_BATCHES * BATCH

            h = _wait_converged(client, past_epoch=epoch0)
            n_after_stream = SEED_DOCS + len(stream.acked)
            assert h["n_documents"] == n_after_stream, h
            data = client.search("w1 w2 w3", top=h["n_documents"])
            assert data["partial"] is False, data
            served = {row[2] for row in data["results"]}
            assert served >= set(stream.acked), "acked docs not searchable"
            print(
                f"ingest-while-serving: {searches} searches complete "
                f"(zero partial) across epoch {epoch0} -> {h['epoch']}, "
                f"{len(stream.acked)} docs acked + searchable, lag 0"
            )
            evidence["phase1"] = {
                "searches": searches,
                "drops": 0,
                "epoch_boot": epoch0,
                "epoch_converged": h["epoch"],
                "docs_acked": len(stream.acked),
            }

            # Phase 2: SIGKILL the writer mid-stream.  The stream's
            # pause makes "between acknowledged batches" likely; any
            # in-flight batch simply never gets its ack (and so is not
            # owed durability).
            stream2 = _AddStream(port, "B", pause=0.2)
            stream2.start()
            while len(stream2.acked) < 2 * BATCH and stream2.is_alive():
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
            # wait(), not communicate(): the orphaned shard workers
            # still hold the stdout pipe's write end, so EOF never
            # comes — they are reaped in the finally below.
            proc.wait(timeout=30)
            stream2.join(timeout=30)
            acked = list(stream2.acked)  # snapshot: the durability claim
            print(
                f"sigkill: writer killed -9 mid-stream "
                f"({len(acked)} docs acked before death)"
            )
            assert len(acked) >= 2 * BATCH
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            # The shard workers outlive a SIGKILLed supervisor (they
            # are its children, not a process group) — reap them so
            # they don't hold the ports/files (or the stdout pipe).
            for pid in worker_pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            proc.stdout.close()

        # Phase 3: bit-identical recovery, in-process.  Two independent
        # WAL replays of the crashed store must agree byte-for-byte,
        # and every acknowledged document must be in the replayed model.
        paths = DurableIndexStore.paths(data_dir)
        m1, report1 = recover_manager(*paths)
        m2, report2 = recover_manager(*paths)
        assert np.array_equal(m1.model.U, m2.model.U)
        assert np.array_equal(m1.model.s, m2.model.s)
        assert np.array_equal(m1.model.V, m2.model.V)
        assert m1.model.doc_ids == m2.model.doc_ids
        assert report1.replayed_records == report2.replayed_records
        assert m1.ingest_method == "fast-update", m1.ingest_method
        recovered_ids = set(m1.model.doc_ids)
        missing = [d for d in acked if d not in recovered_ids]
        assert not missing, f"acked but lost in recovery: {missing}"
        print(
            f"recovery: {report1.replayed_records} WAL record(s) replayed "
            f"bit-identically twice; all {len(acked)} acked docs present"
        )
        evidence["phase3"] = {
            "replayed_records": report1.replayed_records,
            "acked_docs_recovered": len(acked),
            "n_documents": m1.model.n_documents,
        }

        # Phase 4: restart on the same store — the boot seal publishes
        # the recovered state, and the cluster serves every
        # acknowledged document.
        proc, port = _start_cluster(data_dir)
        try:
            client = ServerClient(port=port)
            h = client.healthz()
            assert h["n_documents"] == m1.model.n_documents, h
            assert h["writer"]["lag_records"] == 0, h["writer"]
            data = client.search("w1 w2 w3", top=h["n_documents"])
            assert data["partial"] is False, data
            served = {row[2] for row in data["results"]}
            assert served >= set(acked), "acked docs lost across restart"
            print(
                f"restart: {h['n_documents']} documents served at epoch "
                f"{h['epoch']} (boot seal covers the recovered WAL)"
            )
            evidence["phase4"] = {
                "epoch": h["epoch"],
                "n_documents": h["n_documents"],
            }

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=45)
            assert proc.returncode == 0, (proc.returncode, out)
            assert "drained cleanly" in out, out
            print("drain: exit 0, drained cleanly")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

    with open("SMOKE_cluster_ingest.json", "w") as fh:
        json.dump(evidence, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("cluster ingest smoke: OK")


if __name__ == "__main__":
    t0 = time.perf_counter()
    main()
    print(f"({time.perf_counter() - t0:.1f}s)")
