"""Store open time: memory-mapped checkpoint vs full array load.

Checkpoints store one ``.npy`` per array precisely so a read-only
replica can ``np.load(mmap_mode="r")`` them: the kernel maps the pages
and the open costs O(header-parse) per array, independent of how many
megabytes ``U``/``V`` hold — pages fault in only when a query touches
their rows.  This bench writes a serving-scale checkpoint, then times

* **full** — ``read_arrays(mmap=False)``: every array byte is read and
  materialized (what a naive "load the whole model at boot" restart
  pays, scaling with checkpoint size);
* **mmap** — ``read_arrays(mmap=True)``: header parse + page-table
  setup only, O(1)-ish in array bytes.

The end-to-end ``open_checkpoint_model`` time (manifest JSON with every
doc id + vocabulary rebuild + the mapped arrays) is reported alongside,
and the first query against the mapped model must match the eagerly
loaded arrays element-identically.

Acceptance: the mmap array open is ≥ 5× faster than the full load.
"""

import os
import pathlib
import tempfile
import time

import numpy as np

from conftest import emit
from obs_export import maybe_export_obs
from repro.serving.kernel import cosine_scores
from repro.store.checkpoint import write_checkpoint
from repro.store.mmap_io import open_checkpoint_model

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 60_000 if SMOKE else 400_000
M_TERMS = 2_000 if SMOKE else 6_000
K = 64
REPEATS = 3
MIN_SPEEDUP = 5.0


def _write_serving_checkpoint(root: pathlib.Path) -> pathlib.Path:
    rng = np.random.default_rng(99)
    arrays = {
        "base_U": rng.standard_normal((M_TERMS, K)),
        "base_s": np.sort(rng.random(K) + 0.5)[::-1],
        "base_gw": np.ones(M_TERMS),
        "model_V": rng.standard_normal((N_DOCS, K)),
    }
    meta = {
        "vocabulary": [f"term{i}" for i in range(M_TERMS)],
        "doc_ids": [f"D{j}" for j in range(N_DOCS)],
        "model_scheme": {"local": "raw", "global": "none"},
        "provenance": "svd",
        "n_documents": N_DOCS,
    }
    info = write_checkpoint(root, arrays, meta)
    return info.path


def _time(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_mmap_open_is_fast_and_identical():
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = _write_serving_checkpoint(pathlib.Path(tmp))
        total_bytes = sum(f.stat().st_size for f in ckpt.glob("*.npy"))

        files = sorted(ckpt.glob("*.npy"))

        def full_load():
            arrays = {f.stem: np.load(f) for f in files}
            # Touch every array so lazy readers can't cheat the clock.
            for a in arrays.values():
                a.sum()
            return arrays

        def mmap_arrays():
            return {f.stem: np.load(f, mmap_mode="r") for f in files}

        t_full, eager = _time(full_load)
        t_mmap, mapped = _time(mmap_arrays)
        t_model, model = _time(lambda: open_checkpoint_model(ckpt, mmap=True))
        speedup = t_full / t_mmap

        # One real query: fault in exactly the pages scoring needs and
        # check parity between the mapped model and the eager arrays.
        q = np.random.default_rng(7).standard_normal((1, K))
        t0 = time.perf_counter()
        mapped_scores = cosine_scores(np.asarray(model.V) * model.s, q)
        t_first_query = time.perf_counter() - t0
        eager_scores = cosine_scores(eager["model_V"] * eager["base_s"], q)
        assert np.array_equal(mapped_scores, eager_scores)
        # LSIModel.__post_init__'s asarray keeps the mapping (a view over
        # the memmap, no copy) — confirm no eager materialization happened.
        assert isinstance(model.V, np.memmap) or isinstance(
            model.V.base, np.memmap
        )
        assert isinstance(mapped["model_V"], np.memmap)

        emit(
            f"store open (V: {N_DOCS}x{K}, {total_bytes / 1e6:.0f} MB "
            "checkpoint)",
            [
                f"full array load : {t_full * 1e3:>9.2f} ms",
                f"mmap array open : {t_mmap * 1e3:>9.2f} ms   "
                f"({speedup:.0f}x)",
                f"model open (mmap + manifest): {t_model * 1e3:.2f} ms",
                f"first query on mapped model : {t_first_query * 1e3:.2f} ms",
            ],
        )
        maybe_export_obs(
            "store_open",
            extra={
                "n_docs": N_DOCS,
                "k": K,
                "checkpoint_bytes": total_bytes,
                "full_load_seconds": t_full,
                "mmap_open_seconds": t_mmap,
                "model_open_seconds": t_model,
                "speedup": speedup,
                "first_query_seconds": t_first_query,
            },
        )
        assert speedup >= MIN_SPEEDUP, (
            f"mmap open only {speedup:.1f}x faster than full load, "
            f"need >= {MIN_SPEEDUP}x"
        )


if __name__ == "__main__":
    test_mmap_open_is_fast_and_identical()
