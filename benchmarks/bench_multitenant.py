"""Multi-tenant serving overheads: routing, lazy attach, isolation.

The tenancy layer's claim is that hosting N indexes behind one front
end costs almost nothing on the serving path and cannot let one tenant
ruin another's latency.  Three measurements:

* **routing overhead** — per-tenant QPS when one tenant of a 4-tenant
  registry takes the whole load, vs an identical single-tenant
  service: the registry resolve/pin + quota admit on every request
  must keep >= ``MIN_TENANT_QPS_FRACTION`` of the baseline throughput
  (same model, same batching).  The 4-way round-robin aggregate is
  reported alongside (its batches are 4x thinner, so it is context,
  not an acceptance bound);
* **attach latency** — first query to a cold tenant pays the mmap/load
  attach (and, under ``max_resident``, the LRU detach of the coldest
  peer); the next query must drop back to warm-path latency.  Cold and
  warm medians are reported and warm must beat cold;
* **quota isolation** — a hot tenant saturated far past its admission
  share (drawing per-tenant 429s) must leave a cold tenant's p99
  within ``MAX_COLD_P99_RATIO`` of its unloaded baseline (with an
  absolute floor so millisecond-scale noise cannot fail the run).

Results land in ``BENCH_multitenant.json`` (committed at repo root,
re-written by CI and uploaded as an artifact).
"""

import asyncio
import json
import os
import pathlib
import tempfile
import time

import numpy as np

from conftest import emit
from obs_export import maybe_export_obs
from repro.core.model import LSIModel
from repro.core.persistence import save_model
from repro.errors import ServerOverloadError
from repro.server import QueryService, ServerConfig, ServingState
from repro.tenancy import IndexRegistry
from repro.text.vocabulary import Vocabulary

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 4_000 if SMOKE else 16_000
K = 64
M_TERMS = 300
TOP = 10
N_TENANTS = 4
CONCURRENCY = 8
REQUESTS = 160 if SMOKE else 480
#: Routed single-tenant QPS must keep this fraction of the unrouted
#: baseline — the per-request cost of resolve/pin/quota bookkeeping.
MIN_TENANT_QPS_FRACTION = 0.7
#: Cold-tenant p99 under a saturated hot tenant, relative to unloaded.
MAX_COLD_P99_RATIO = 8.0
COLD_P99_FLOOR_S = 0.25


def _model(seed: int) -> LSIModel:
    """A synthetic serving-scale model straight from random factors."""
    rng = np.random.default_rng(seed)
    vocab = Vocabulary(f"term{i}" for i in range(M_TERMS))
    vocab.freeze()
    return LSIModel(
        U=rng.standard_normal((M_TERMS, K)),
        s=np.sort(rng.random(K) + 0.5)[::-1],
        V=rng.standard_normal((N_DOCS, K)),
        vocabulary=vocab,
        doc_ids=[f"D{j}" for j in range(N_DOCS)],
    )


def _queries(n: int, seed: int = 5) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    return [
        [f"term{t}" for t in rng.choice(M_TERMS, size=4, replace=False)]
        for _ in range(n)
    ]


def _registry() -> IndexRegistry:
    reg = IndexRegistry()
    for i in range(N_TENANTS):
        # t0 shares the baseline's seed so the routed-vs-unrouted
        # comparison scores the identical model.
        reg.register(f"t{i}", state=ServingState.for_model(_model(1 + i)))
    return reg


def _config(queue_depth: int | None = None) -> ServerConfig:
    return ServerConfig(
        max_batch=CONCURRENCY,
        max_wait_ms=2.0,
        queue_depth=queue_depth or 4 * CONCURRENCY * N_TENANTS,
    )


def _qps(source, queries, *, tenant=None, round_robin=False) -> float:
    """Batched QPS over ``queries`` in waves of ``CONCURRENCY``."""

    def _tenant(i: int):
        return f"t{i % N_TENANTS}" if round_robin else tenant

    async def main() -> float:
        service = QueryService(source, _config())
        await service.start()
        await asyncio.gather(
            *(
                service.search(q, top=TOP, tenant=_tenant(i))
                for i, q in enumerate(queries[:CONCURRENCY])
            )
        )
        t0 = time.perf_counter()
        for start in range(0, len(queries), CONCURRENCY):
            wave = queries[start:start + CONCURRENCY]
            await asyncio.gather(
                *(
                    service.search(q, top=TOP, tenant=_tenant(start + i))
                    for i, q in enumerate(wave)
                )
            )
        elapsed = time.perf_counter() - t0
        await service.drain()
        return len(queries) / elapsed

    return asyncio.run(main())


def _merge_artifact(update: dict) -> None:
    """Fold a phase's results into ``BENCH_multitenant.json``."""
    path = pathlib.Path("BENCH_multitenant.json")
    blob = json.loads(path.read_text()) if path.exists() else {}
    blob.update(update)
    blob["smoke"] = SMOKE
    path.write_text(json.dumps(blob, indent=2, sort_keys=True) + "\n")


def test_tenant_routing_overhead_bounded():
    queries = _queries(REQUESTS)
    single_qps = _qps(ServingState.for_model(_model(1)), queries)
    routed_qps = _qps(_registry(), queries, tenant="t0")
    aggregate_qps = _qps(_registry(), queries, round_robin=True)
    fraction = routed_qps / single_qps
    emit(
        f"tenant routing overhead (n={N_DOCS}/tenant, k={K}, "
        f"c={CONCURRENCY}, {REQUESTS} requests)",
        [
            f"single-tenant baseline : {single_qps:>8.0f} QPS",
            f"routed, 1 of 4 tenants : {routed_qps:>8.0f} QPS "
            f"({fraction:.2f}x)",
            f"round-robin, 4 tenants : {aggregate_qps:>8.0f} QPS "
            f"(4x thinner batches)",
        ],
    )
    _merge_artifact(
        {
            "routing": {
                "single_tenant_qps": single_qps,
                "routed_qps": routed_qps,
                "routed_fraction": fraction,
                "round_robin_qps": aggregate_qps,
                "n_tenants": N_TENANTS,
            }
        }
    )
    maybe_export_obs(
        "multitenant_routing",
        extra={"routed_fraction": fraction, "single_qps": single_qps},
    )
    assert fraction >= MIN_TENANT_QPS_FRACTION, (
        f"tenant routing kept only {fraction:.2f}x of baseline QPS, "
        f"need >= {MIN_TENANT_QPS_FRACTION}x"
    )


def test_attach_cold_vs_warm_latency():
    query = _queries(2, seed=11)
    with tempfile.TemporaryDirectory() as tmp:
        reg = IndexRegistry(max_resident=2)
        for i in range(N_TENANTS):
            path = pathlib.Path(tmp) / f"t{i}.npz"
            save_model(_model(100 + i), path)
            reg.register(f"t{i}", data_dir=path)

        async def main() -> tuple[list[float], list[float]]:
            service = QueryService(reg, _config())
            await service.start()
            cold, warm = [], []
            # Two sweeps: the second re-attaches tenants the 2-resident
            # LRU cap already evicted, so "cold" includes steady-state
            # detach+attach churn, not just first-boot opens.
            for sweep in range(2):
                for i in range(N_TENANTS):
                    tid = f"t{i}"
                    t0 = time.perf_counter()
                    await service.search(query[0], top=TOP, tenant=tid)
                    cold.append(time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    await service.search(query[1], top=TOP, tenant=tid)
                    warm.append(time.perf_counter() - t0)
            attaches = {
                tid: row["attaches"]
                for tid, row in service.registry.describe().items()
            }
            await service.drain()
            return cold, warm, attaches

        cold, warm, attaches = asyncio.run(main())
    cold_ms = 1e3 * float(np.median(cold))
    warm_ms = 1e3 * float(np.median(warm))
    emit(
        f"lazy attach latency (n={N_DOCS}/tenant, {N_TENANTS} tenants, "
        "max_resident=2, 2 sweeps)",
        [
            f"cold first query (attach) : {cold_ms:>8.2f} ms median",
            f"warm next query           : {warm_ms:>8.2f} ms median",
            f"attaches per tenant       : {sorted(attaches.values())}",
        ],
    )
    _merge_artifact(
        {
            "attach": {
                "cold_median_ms": cold_ms,
                "warm_median_ms": warm_ms,
                "max_resident": 2,
                "attaches": attaches,
            }
        }
    )
    # Every tenant re-attached at least once under the cap, and the
    # warm path does not pay the attach cost again.
    assert all(n >= 2 for n in attaches.values()), attaches
    assert warm_ms <= cold_ms, (warm_ms, cold_ms)


def test_cold_tenant_p99_bounded_under_hot_saturation():
    queries = _queries(64, seed=7)
    reg = IndexRegistry()
    reg.register("hot", state=ServingState.for_model(_model(31)))
    reg.register("cold", state=ServingState.for_model(_model(32)))
    probe_n = 40 if SMOKE else 80

    async def main():
        service = QueryService(reg, _config(queue_depth=2 * CONCURRENCY))
        await service.start()
        share = service.quotas.share

        async def cold_p99(n: int) -> float:
            lat = []
            for i in range(n):
                t0 = time.perf_counter()
                await service.search(
                    queries[i % len(queries)], top=TOP, tenant="cold"
                )
                lat.append(time.perf_counter() - t0)
            return float(np.percentile(lat, 99))

        baseline = await cold_p99(probe_n)

        stop = [False]
        served = [0]
        rejected = [0]

        async def flood() -> None:
            i = 0
            while not stop[0]:
                try:
                    await service.search(
                        queries[i % len(queries)], top=TOP, tenant="hot"
                    )
                    served[0] += 1
                except ServerOverloadError as exc:
                    if exc.reason == "tenant_quota":
                        rejected[0] += 1
                    await asyncio.sleep(0.001)
                i += 1

        floods = [
            asyncio.ensure_future(flood()) for _ in range(3 * share)
        ]
        await asyncio.sleep(0.05)  # the flood reaches saturation
        saturated = await cold_p99(probe_n)
        stop[0] = True
        await asyncio.gather(*floods)
        await service.drain()
        return baseline, saturated, share, served[0], rejected[0]

    baseline, saturated, share, served, rejected = asyncio.run(main())
    ratio = saturated / baseline
    bound = max(MAX_COLD_P99_RATIO * baseline, COLD_P99_FLOOR_S)
    emit(
        f"quota isolation (share={share}, {3 * share} hot clients, "
        f"{probe_n} cold probes)",
        [
            f"cold p99, unloaded     : {baseline * 1e3:>8.2f} ms",
            f"cold p99, hot saturated: {saturated * 1e3:>8.2f} ms "
            f"({ratio:.2f}x)",
            f"hot flood              : {served} served, "
            f"{rejected} per-tenant 429(s)",
        ],
    )
    _merge_artifact(
        {
            "isolation": {
                "cold_p99_baseline_ms": baseline * 1e3,
                "cold_p99_saturated_ms": saturated * 1e3,
                "p99_ratio": ratio,
                "hot_served": served,
                "hot_rejected_quota": rejected,
                "share": share,
            }
        }
    )
    maybe_export_obs(
        "multitenant_isolation",
        extra={"p99_ratio": ratio, "hot_rejected_quota": rejected},
    )
    assert rejected >= 1, "the flood never tripped the tenant quota"
    assert saturated <= bound, (
        f"cold-tenant p99 {saturated * 1e3:.1f} ms under hot saturation "
        f"vs {baseline * 1e3:.1f} ms unloaded exceeds the bound "
        f"({MAX_COLD_P99_RATIO}x or {COLD_P99_FLOOR_S * 1e3:.0f} ms)"
    )


if __name__ == "__main__":
    test_tenant_routing_overhead_bounded()
    test_attach_cold_vs_warm_latency()
    test_cold_tenant_p99_bounded_under_hot_saturation()
