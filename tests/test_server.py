"""Integration tests for the async query service (repro.server).

The acceptance criteria under test, per the server's contracts:

* **Parity** — batched, coalesced responses are element-identical to
  ``LSIRetrieval.search`` for the same query and filters;
* **Backpressure** — the bounded admission queue rejects overload fast
  (429 semantics) instead of growing memory;
* **Epoch consistency** — ``/add`` under concurrent query load never
  produces torn reads: every response was computed wholly against one
  epoch, and epochs map 1:1 onto document counts;
* **Drain** — shutdown finishes every queued request and rejects new
  ones (503 semantics);
* **Transport** — the stdlib HTTP front end and blocking client round-
  trip all of the above, with failures mapped onto the exception
  hierarchy.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.cli import build_parser
from repro.corpus.med import MED_TOPICS
from repro.errors import DeadlineExceededError, ReproError, ServerOverloadError
from repro.obs.metrics import registry
from repro.retrieval import LSIRetrieval
from repro.server import (
    MicroBatcher,
    QueryService,
    ServerClient,
    ServerConfig,
    ServingState,
    start_http_server,
    state_from_texts,
)

QUERIES = [
    "blood pressure age",
    "oestrogen blood",
    "fast fourier transform",
    "age of children with blood abnormalities",
    "renal flow",
    "heart rate oxygen",
]


def _texts() -> list[str]:
    """A small deterministic corpus: MEDLINE topics plus filler docs."""
    extra = [
        "renal blood flow measurement in anesthetized dogs",
        "oxygen consumption and heart rate during moderate exercise",
        "growth hormone levels in fasting children",
        "spectral analysis of heart rate variability signals",
    ]
    return [MED_TOPICS[f"M{i}"] for i in range(1, 15)] + extra


def _fresh_state(**kwargs) -> ServingState:
    params = dict(k=6, scheme="log_entropy", distortion_budget=0.5)
    params.update(kwargs)
    return state_from_texts(_texts(), **params)


def _pairs(response: dict) -> list[tuple[int, float]]:
    return [(int(j), float(score)) for j, score, _ in response["results"]]


# --------------------------------------------------------------------- #
# parity with the unbatched engine
# --------------------------------------------------------------------- #
def test_coalesced_batch_identical_to_engine():
    registry.reset("server.")
    state = _fresh_state()
    engine = LSIRetrieval(state.current().model)
    cases = [
        (QUERIES[i % len(QUERIES)], kwargs)
        for i, kwargs in enumerate(
            [
                {},
                {"top": 5},
                {"top": 1},
                {"threshold": 0.2},
                {"top": 3, "threshold": 0.1},
                {"top": 1000},
            ]
            * 2
        )
    ]

    async def main():
        service = QueryService(
            state, ServerConfig(max_batch=len(cases), max_wait_ms=50.0)
        )
        await service.start()
        responses = await asyncio.gather(
            *(service.search(q, **kw) for q, kw in cases)
        )
        await service.drain()
        return responses

    responses = asyncio.run(main())
    for (q, kw), response in zip(cases, responses):
        want = engine.search(q, **kw)
        got = _pairs(response)
        assert [j for j, _ in got] == [j for j, _ in want], (q, kw)
        assert np.allclose(
            [c for _, c in got], [c for _, c in want], atol=1e-12
        ), (q, kw)
        assert response["epoch"] == 0
        assert response["n_documents"] == engine.n_documents
    # The requests were actually coalesced, not served one by one.
    hist = registry.histogram("server.batch_size")
    assert hist is not None and hist.max > 1


def test_single_request_batch_bit_identical_to_engine():
    """A batch of one takes the kernel's q=1 GEMV path, so scores are
    bit-identical to the engine, not merely allclose."""
    state = _fresh_state()
    engine = LSIRetrieval(state.current().model)

    async def main():
        service = QueryService(state, ServerConfig(max_wait_ms=0.0))
        await service.start()
        response = await service.search(QUERIES[0], top=7)
        await service.drain()
        return response

    assert _pairs(asyncio.run(main())) == engine.search(QUERIES[0], top=7)


def test_batches_respect_max_batch():
    registry.reset("server.")
    state = _fresh_state()

    async def main():
        service = QueryService(
            state, ServerConfig(max_batch=4, max_wait_ms=50.0)
        )
        await service.start()
        await asyncio.gather(
            *(service.search(QUERIES[i % 6], top=3) for i in range(10))
        )
        await service.drain()

    asyncio.run(main())
    hist = registry.histogram("server.batch_size")
    assert hist.max <= 4
    assert registry.counter("server.batches_total") >= 3


def test_sharded_batch_scoring_matches_flat():
    state = _fresh_state()
    snapshot = state.current()
    rng = np.random.default_rng(11)
    Q = rng.standard_normal((5, snapshot.k))
    flat = snapshot.score_batch(Q, shards=1)
    for shards, workers in ((2, None), (3, 2), (50, 2)):
        assert np.allclose(
            snapshot.score_batch(Q, shards=shards, workers=workers),
            flat,
            atol=1e-12,
        )


# --------------------------------------------------------------------- #
# admission control: bounded queue, deadlines
# --------------------------------------------------------------------- #
def _slow_scorer(monkeypatch, seconds: float) -> None:
    """Make every batch flush take at least ``seconds`` (executor side)."""
    original = MicroBatcher._score_batch

    def slow(self, snapshot, batch):
        time.sleep(seconds)
        return original(self, snapshot, batch)

    monkeypatch.setattr(MicroBatcher, "_score_batch", slow)


def test_overload_rejected_not_queued(monkeypatch):
    registry.reset("server.")
    _slow_scorer(monkeypatch, 0.05)
    state = _fresh_state()

    async def main():
        service = QueryService(
            state,
            ServerConfig(max_batch=1, max_wait_ms=0.0, queue_depth=3),
        )
        await service.start()
        results = await asyncio.gather(
            *(service.search(QUERIES[i % 6], top=2) for i in range(10)),
            return_exceptions=True,
        )
        await service.drain()
        return results

    results = asyncio.run(main())
    rejected = [r for r in results if isinstance(r, ServerOverloadError)]
    served = [r for r in results if isinstance(r, dict)]
    # All 10 admissions happen before the first slow batch resolves, so
    # exactly queue_depth requests fit and the rest bounce immediately.
    assert len(served) == 3
    assert len(rejected) == 7
    assert all(exc.reason == "queue_full" for exc in rejected)
    assert registry.counter("server.rejected_queue_full") == 7
    for response in served:
        assert response["results"]


def test_deadline_expires_in_queue(monkeypatch):
    registry.reset("server.")
    _slow_scorer(monkeypatch, 0.05)
    state = _fresh_state()

    async def main():
        service = QueryService(
            state, ServerConfig(max_batch=1, max_wait_ms=0.0)
        )
        await service.start()
        first = asyncio.ensure_future(service.search(QUERIES[0], top=2))
        await asyncio.sleep(0.01)  # first batch is now in its slow flush
        with pytest.raises(DeadlineExceededError):
            await service.search(QUERIES[1], top=2, timeout_ms=1.0)
        await first
        await service.drain()

    asyncio.run(main())
    assert registry.counter("server.deadline_expired") == 1


# --------------------------------------------------------------------- #
# graceful drain
# --------------------------------------------------------------------- #
def test_drain_flushes_queue_then_rejects(monkeypatch):
    _slow_scorer(monkeypatch, 0.02)
    state = _fresh_state()

    async def main():
        service = QueryService(
            state, ServerConfig(max_batch=2, max_wait_ms=1.0)
        )
        await service.start()
        inflight = [
            asyncio.ensure_future(service.search(QUERIES[i % 6], top=3))
            for i in range(6)
        ]
        await asyncio.sleep(0)  # let every request pass admission
        await service.drain()
        # Every admitted request completed with a real result.
        responses = await asyncio.gather(*inflight)
        assert all(r["results"] for r in responses)
        # New work is refused with the draining (503) reason.
        with pytest.raises(ServerOverloadError) as info:
            await service.search(QUERIES[0])
        assert info.value.reason == "draining"

    asyncio.run(main())


# --------------------------------------------------------------------- #
# live updates: epochs, no torn reads
# --------------------------------------------------------------------- #
def test_live_add_under_query_load_has_consistent_epochs():
    # A small budget forces consolidation (recompute/SVD-update) along
    # the way, so the epoch swap is exercised across all three actions.
    state = _fresh_state(distortion_budget=0.05)
    n0 = state.current().n_documents
    observations: list[tuple[int, int, int]] = []

    async def reader(service: QueryService):
        for i in range(40):
            response = await service.search(QUERIES[i % 6], top=4)
            top_index = max((j for j, _, _ in response["results"]), default=-1)
            observations.append(
                (response["epoch"], response["n_documents"], top_index)
            )
            await asyncio.sleep(0)

    async def writer(service: QueryService):
        for i in range(6):
            result = await service.add(
                [f"additional study of blood oxygen level {i}"]
            )
            assert result["epoch"] == i + 1
            await asyncio.sleep(0.002)

    async def main():
        service = QueryService(
            state, ServerConfig(max_batch=4, max_wait_ms=1.0)
        )
        await service.start()
        await asyncio.gather(reader(service), writer(service))
        final = await service.search(QUERIES[0], top=3)
        await service.drain()
        return final

    final = asyncio.run(main())
    # Each add inserts exactly one document, so epoch e ↔ n0 + e: any
    # response pairing an epoch with the wrong count is a torn read.
    for epoch, n_documents, top_index in observations:
        assert n_documents == n0 + epoch
        assert top_index < n_documents
    # A single reader observes monotonically non-decreasing epochs.
    epochs = [e for e, _, _ in observations]
    assert epochs == sorted(epochs)
    assert final["epoch"] == 6
    assert final["n_documents"] == n0 + 6
    assert state.current().model.n_documents == n0 + 6


def test_read_only_state_rejects_add(med_model):
    state = ServingState.for_model(med_model)
    assert not state.writable

    async def main():
        service = QueryService(state, ServerConfig(max_wait_ms=0.0))
        await service.start()
        with pytest.raises(ReproError, match="read-only"):
            await service.add(["new document"])
        response = await service.search("blood age", top=3)
        await service.drain()
        return response

    assert asyncio.run(main())["n_documents"] == med_model.n_documents


# --------------------------------------------------------------------- #
# HTTP front end + blocking client
# --------------------------------------------------------------------- #
class _ServerThread:
    """Run service + HTTP server on a private loop in a worker thread."""

    def __init__(self, state: ServingState, config: ServerConfig):
        self.state = state
        self.config = config
        self.port: int | None = None
        self.service: QueryService | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def drain(self) -> None:
        """Drain the service from the test thread (new requests → 503)."""
        asyncio.run_coroutine_threadsafe(
            self.service.drain(), self._loop
        ).result(timeout=30)

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            service = self.service = QueryService(self.state, self.config)
            server = await start_http_server(service, "127.0.0.1", 0)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            await self._stop.wait()
            server.close()
            await server.wait_closed()
            await service.drain()

        asyncio.run(main())

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=30), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server failed to drain"


def test_http_roundtrip_search_add_health_stats():
    state = _fresh_state()
    engine = LSIRetrieval(state.current().model)
    n0 = state.current().n_documents
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        client = ServerClient(port=server.port)

        health = client.healthz()
        assert health["status"] == "ok"
        assert health["n_documents"] == n0

        for q in QUERIES[:3]:
            got = client.search_pairs(q, top=5)
            want = engine.search(q, top=5)
            assert [j for j, _ in got] == [j for j, _ in want]
            assert np.allclose(
                [c for _, c in got], [c for _, c in want], atol=1e-12
            )

        added = client.add(["renal oxygen study in children"])
        assert added["n_documents"] == n0 + 1
        assert added["epoch"] == 1
        follow_up = client.search("renal oxygen", top=3)
        assert follow_up["epoch"] >= 1
        assert follow_up["n_documents"] == n0 + 1

        stats = client.stats()
        assert stats["schema"] == "repro-obs/1"
        assert stats["metrics"]["counters"]["server.requests_total"] >= 4
        assert "server.queue_wait_seconds" in stats["metrics"]["histograms"]
        assert stats["server"]["writable"]


def test_http_error_mapping():
    state = _fresh_state()
    with _ServerThread(state, ServerConfig(max_wait_ms=0.0)) as server:
        client = ServerClient(port=server.port)
        # Unknown route → 404 → ReproError.
        with pytest.raises(ReproError, match="404"):
            client._request("GET", "/nope")
        # Missing query field → 400.
        with pytest.raises(ReproError, match="400"):
            client._request("POST", "/search", {})
        # Malformed JSON body → 400.
        import http.client as http_client

        conn = http_client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/search", body=b"{not json")
        assert conn.getresponse().status == 400
        conn.close()


def test_http_probes_validation():
    state = _fresh_state()
    with _ServerThread(state, ServerConfig(max_wait_ms=0.0)) as server:
        client = ServerClient(port=server.port)
        for bad in (0, -3, True, 2.5, "many"):
            with pytest.raises(ReproError, match="400"):
                client._request(
                    "POST", "/search", {"query": QUERIES[0], "probes": bad}
                )
        with pytest.raises(ReproError, match="400"):
            client._request(
                "POST", "/search", {"query": QUERIES[0], "exact": "yes"}
            )


def test_http_probes_roundtrip_and_full_probe_parity():
    # Through the whole stack — HTTP parse, micro-batcher ANN grouping,
    # snapshot probe — a full-probe request answers element-identically
    # to the exact scan, and a bounded one reports its ann stats block.
    state = _fresh_state()
    quantizer = state.train_ann(4, seed=0)
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        client = ServerClient(port=server.port)
        assert client.healthz()["ann"] is True
        for q in QUERIES[:3]:
            exact = client.search(q, top=5, exact=True)
            full = client.search(q, top=5, probes=quantizer.n_clusters)
            assert full["results"] == exact["results"]
            assert full["ann"]["cells_probed"] == quantizer.n_clusters
            assert "ann" not in exact

            bounded = client.search(q, top=5, probes=1)
            assert bounded["ann"]["probes"] == 1
            assert bounded["ann"]["candidates"] <= state.current().n_documents
            got = {j for j, _, _ in bounded["results"]}
            assert got <= {j for j, _, _ in client.search(q)["results"]}


def test_default_probes_applied_and_exact_escape_hatch():
    state = _fresh_state()
    state.train_ann(4, seed=0)
    registry.reset("ann.")
    with _ServerThread(
        state, ServerConfig(max_wait_ms=1.0, default_probes=2)
    ) as server:
        client = ServerClient(port=server.port)
        assert client.healthz()["default_probes"] == 2
        probed = client.search(QUERIES[0], top=5)
        assert probed["ann"]["probes"] == 2
        exact = client.search(QUERIES[0], top=5, exact=True)
        assert "ann" not in exact


def test_http_client_reuses_keep_alive_connection():
    state = _fresh_state()
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        with ServerClient(port=server.port) as client:
            client.healthz()
            conn = client._local.conn
            assert conn is not None
            client.healthz()
            client.search(QUERIES[0], top=3)
            # Same pooled connection object served all three calls
            # (pooling is per thread; this is the only thread).
            assert client._local.conn is conn


def test_http_client_metrics_and_draining_flag():
    state = _fresh_state()
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        with ServerClient(port=server.port) as client:
            client.search(QUERIES[0], top=3)
            health = client.healthz()
            assert health["draining"] is False
            metrics = client.metrics()
            assert metrics["counters"]["server.requests_total"] >= 1
            assert "server.queue_wait_seconds" in metrics["histograms"]
            # /metrics is the bare registry dump — no server table.
            assert "server" not in metrics


def test_healthz_reports_draining_after_drain():
    state = _fresh_state()

    async def main():
        service = QueryService(state, ServerConfig(max_wait_ms=1.0))
        await service.start()
        assert service.healthz()["draining"] is False
        await service.drain()
        health = service.healthz()
        assert health["draining"] is True
        assert health["status"] == "draining"

    asyncio.run(main())


class _OneShotKeepAliveServer:
    """A raw HTTP server that *advertises* keep-alive but closes the
    socket after every response — the classic stale-reuse race the
    client must absorb with its single transparent retry."""

    def __init__(self):
        import socket

        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.accepted = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        body = b'{"status": "ok"}'
        response = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: keep-alive\r\n\r\n" + body
        )
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.accepted += 1
            with conn:
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                if data:
                    conn.sendall(response)
            # ...and the socket is now closed, despite the header.

    def close(self) -> None:
        self.sock.close()


def test_http_client_retries_stale_keep_alive_once():
    server = _OneShotKeepAliveServer()
    try:
        with ServerClient(port=server.port) as client:
            # First call: fresh connection, succeeds, gets pooled.
            assert client.healthz() == {"status": "ok"}
            # Second call: the pooled socket is dead — the client must
            # notice, retry once on a fresh connection, and succeed.
            assert client.healthz() == {"status": "ok"}
        assert server.accepted == 2
    finally:
        server.close()


def test_http_client_does_not_retry_fresh_connection_failures():
    import socket

    # Reserve a port with no listener: connecting must fail.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    client = ServerClient(port=dead_port, timeout=2.0)
    with pytest.raises(ConnectionError):
        client.healthz()


# --------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------- #
def test_cli_serve_parser_flags():
    args = build_parser().parse_args(
        [
            "serve", "docs", "--port", "0", "--max-batch", "8",
            "--max-wait-ms", "1.5", "--queue-depth", "16",
            "--shards", "2", "--workers", "3", "--timeout-ms", "250",
        ]
    )
    assert args.command == "serve"
    assert args.port == 0
    assert args.max_batch == 8
    assert args.max_wait_ms == 1.5
    assert args.queue_depth == 16
    assert args.shards == 2
    assert args.workers == 3
    assert args.timeout_ms == 250.0


def test_cli_slowlog_parser_flags(tmp_path):
    args = build_parser().parse_args(
        ["serve", "docs", "--slow-ms", "75",
         "--slowlog", str(tmp_path / "s.jsonl")]
    )
    assert args.slow_ms == 75.0
    assert args.slowlog == tmp_path / "s.jsonl"
    args = build_parser().parse_args(
        ["cluster", "serve", "--data-dir", "d", "--slow-ms", "0"]
    )
    assert args.slow_ms == 0.0
    assert args.slowlog is None


# --------------------------------------------------------------------- #
# Observability over HTTP: request ids, traces, Prometheus, slow log
# --------------------------------------------------------------------- #
import re as _re

from repro import obs

_HEX_ID = _re.compile(r"[0-9a-f]{32}")


def test_request_id_echoed_and_minted():
    state = _fresh_state()
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        with ServerClient(port=server.port) as client:
            client.search(QUERIES[0], top=3, request_id="req-abc.1")
            assert client.last_request_id == "req-abc.1"
            # No caller id → the server mints one and still echoes it.
            client.search(QUERIES[0], top=3)
            assert _HEX_ID.fullmatch(client.last_request_id)
            # A malformed id is replaced, not echoed verbatim.
            client._request(
                "GET", "/healthz", request_id="not a valid id!"
            )
            assert client.last_request_id != "not a valid id!"
            assert _HEX_ID.fullmatch(client.last_request_id)


def test_request_id_surfaces_on_error_responses():
    state = _fresh_state()
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        with ServerClient(port=server.port) as client:
            # 404: id echoed in the header, the exception, and its message.
            with pytest.raises(ReproError, match=r"request_id=req-404") as ei:
                client._request("GET", "/nope", request_id="req-404")
            assert ei.value.request_id == "req-404"
            assert client.last_request_id == "req-404"
            # 504: deadline spent in the queue still gets the echo.
            with pytest.raises(DeadlineExceededError) as ei:
                client.search(
                    QUERIES[0], timeout_ms=0.0001, request_id="req-504"
                )
            assert ei.value.request_id == "req-504"
            # 503: draining rejections stay correlatable too.
            server.drain()
            with pytest.raises(ServerOverloadError) as ei:
                client.search(QUERIES[0], request_id="req-503")
            assert ei.value.reason == "draining"
            assert ei.value.request_id == "req-503"


def test_metrics_prom_endpoint_renders_text_exposition():
    state = _fresh_state()
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        with ServerClient(port=server.port) as client:
            client.search(QUERIES[0], top=3)
            text = client.metrics_prom()
            assert "# TYPE repro_server_requests_total_total counter" in text
            assert 'worker="server"' in text
            assert 'repro_server_request_seconds{quantile="0.95"' in text
            # The JSON shape at plain /metrics is untouched.
            metrics = client.metrics()
            assert set(metrics) == {"counters", "gauges", "histograms"}


def test_trace_endpoint_assembles_request_spans():
    state = _fresh_state()
    obs.clear_spans()
    prev = obs.enable_tracing(True)
    try:
        with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
            with ServerClient(port=server.port) as client:
                client.search(QUERIES[0], top=3, request_id="trace-me-1")
                trace = client.trace("trace-me-1")
        assert trace["trace_id"] == "trace-me-1"
        names = {s["name"] for s in trace["spans"]}
        assert "http.request" in names
        # The batch span serves many traces, so it joins via trace_ids.
        assert "server.batch" in names
        (http_span,) = [
            s for s in trace["spans"] if s["name"] == "http.request"
        ]
        assert http_span["trace_id"] == "trace-me-1"
        assert http_span["attrs"]["request_id"] == "trace-me-1"
    finally:
        obs.enable_tracing(prev)
        obs.clear_spans()


def test_slow_query_log_records_over_threshold_requests():
    state = _fresh_state()
    config = ServerConfig(max_wait_ms=1.0, slow_ms=0.0001)
    with _ServerThread(state, config) as server:
        with ServerClient(port=server.port) as client:
            client.search(QUERIES[0], top=3, request_id="slow-1")
            stats = client.stats()
            health = client.healthz()
    slow = stats["slow_queries"]
    assert slow, "every request crosses a 0.0001ms threshold"
    assert slow[-1]["trace_id"] == "slow-1"
    assert slow[-1]["duration_ms"] > 0
    assert health["slowlog"]["records"] >= 1
    assert stats["metrics"]["counters"]["server.slow_queries_total"] >= 1


def test_slow_query_log_disabled_below_threshold():
    state = _fresh_state()
    config = ServerConfig(max_wait_ms=1.0, slow_ms=0.0)
    with _ServerThread(state, config) as server:
        with ServerClient(port=server.port) as client:
            client.search(QUERIES[0], top=3)
            stats = client.stats()
    assert stats["slow_queries"] == []
