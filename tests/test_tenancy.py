"""Tests for multi-tenant serving (repro.tenancy).

The contracts under test:

* **Registry semantics** — ``tenant=None`` resolves the default (or
  sole) tenant, unknown ids raise the typed
  :class:`~repro.errors.UnknownTenantError`, cold tenants attach
  lazily, and ``max_resident`` LRU-detaches — deferred while pinned;
* **Transparency** — an evicting registry is element-identical to one
  that never evicts, across random attach/evict/query interleavings
  (hypothesis), because detach never loses state a loader can't
  rebuild and never fires under a pin;
* **Isolation** — a saturated tenant draws per-tenant 429s
  (``reason="tenant_quota"``) while a cold tenant's latency stays
  bounded, and per-tenant query caches are partitioned;
* **Transport** — tenant routing end to end over HTTP: ``X-Tenant`` /
  ``tenant`` field, 404 with ``unknown_tenant`` + request id on the
  client, per-tenant 429 reason on the client, ``/tenants``;
* **CLI** — ``serve --tenant NAME=PATH`` wiring and the per-tenant
  ``repro stats --data-dir A --data-dir B`` table.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.med import MED_TOPICS
from repro.errors import ReproError, ServerOverloadError, UnknownTenantError
from repro.retrieval import LSIRetrieval
from repro.server import (
    MicroBatcher,
    QueryService,
    ServerClient,
    ServerConfig,
    ServingState,
    start_http_server,
    state_from_texts,
)
from repro.tenancy import DEFAULT_TENANT, IndexRegistry, TenantQuotas

# Three disjoint mini-corpora so cross-tenant routing bugs cannot hide:
# a query against the wrong tenant's index ranks different documents.
TENANT_TEXTS = {
    "alpha": [MED_TOPICS[f"M{i}"] for i in range(1, 7)],
    "beta": [MED_TOPICS[f"M{i}"] for i in range(7, 13)],
    "gamma": [
        "renal blood flow in anesthetized dogs",
        "heart rate and oxygen uptake during exercise",
        "growth hormone in fasting children",
        "spectral analysis of heart rate variability",
        "blood pressure response to postural change",
        "oxygen saturation during sleep apnea episodes",
    ],
}
TENANT_QUERIES = {
    "alpha": "blood pressure age",
    "beta": "cell growth culture",
    "gamma": "heart rate oxygen",
}


def _build_state(tid: str) -> ServingState:
    # Deterministic (seeded) build: re-attaching a tenant after an LRU
    # detach reconstructs the identical model, which the transparency
    # property below relies on.
    return state_from_texts(
        TENANT_TEXTS[tid], k=3, scheme="log_entropy", distortion_budget=0.5
    )


def _loader(tid: str):
    return lambda: _build_state(tid)


def _registry(tenants=("alpha", "beta", "gamma"), **kwargs) -> IndexRegistry:
    reg = IndexRegistry(**kwargs)
    for tid in tenants:
        reg.register(tid, loader=_loader(tid))
    return reg


def _search(reg: IndexRegistry, tid: str) -> list[tuple[int, float]]:
    with reg.pin(tid) as (resolved, state):
        assert resolved == tid
        engine = LSIRetrieval(state.current().model)
        return engine.search(TENANT_QUERIES[tid], top=5)


# --------------------------------------------------------------------- #
# registry resolution semantics
# --------------------------------------------------------------------- #
def test_single_registry_resolves_none_to_default():
    reg = IndexRegistry.single(_build_state("alpha"))
    tid, state = reg.resolve(None)
    assert tid == DEFAULT_TENANT
    assert state.current().n_documents == len(TENANT_TEXTS["alpha"])
    # The sole tenant also resolves when named explicitly.
    assert reg.resolve(DEFAULT_TENANT)[0] == DEFAULT_TENANT


def test_sole_non_default_tenant_resolves_none():
    reg = _registry(tenants=("alpha",))
    assert reg.resolve(None)[0] == "alpha"


def test_unknown_tenant_is_typed_lookup_error():
    reg = _registry()
    with pytest.raises(UnknownTenantError) as excinfo:
        reg.resolve("nobody")
    assert excinfo.value.tenant == "nobody"
    assert isinstance(excinfo.value, LookupError)
    assert isinstance(excinfo.value, ReproError)
    # No default tenant + several registered: None is ambiguous.
    with pytest.raises(UnknownTenantError) as excinfo:
        reg.resolve(None)
    assert excinfo.value.tenant is None


def test_register_validates_sources():
    reg = IndexRegistry()
    with pytest.raises(ReproError, match="needs one of"):
        reg.register("a")
    with pytest.raises(ReproError, match="non-empty string"):
        reg.register("")
    reg.register("a", loader=_loader("alpha"))
    with pytest.raises(ReproError, match="already registered"):
        reg.register("a", loader=_loader("alpha"))
    with pytest.raises(ReproError, match="excludes"):
        reg.register("b", state=_build_state("beta"), loader=_loader("beta"))


# --------------------------------------------------------------------- #
# lazy attach, LRU detach, pin-deferred eviction
# --------------------------------------------------------------------- #
def test_lazy_attach_and_lru_detach_under_cap():
    detached: list[str] = []
    reg = _registry(max_resident=1)
    reg.add_detach_hook(lambda tid, state: detached.append(tid))
    assert reg.resident_states() == {}

    _search(reg, "alpha")
    assert list(reg.resident_states()) == ["alpha"]
    _search(reg, "beta")  # over the cap: alpha is the LRU victim
    assert list(reg.resident_states()) == ["beta"]
    assert detached == ["alpha"]
    # Re-attach counts are visible in describe().
    _search(reg, "alpha")
    assert reg.describe()["alpha"]["attaches"] == 2
    assert detached == ["alpha", "beta"]


def test_detach_deferred_while_pinned():
    detached: list[str] = []
    reg = _registry(max_resident=1)
    reg.add_detach_hook(lambda tid, state: detached.append(tid))
    with reg.pin("alpha"):
        # Attaching beta marks alpha evict-pending but must not detach
        # it under the in-flight pin.
        reg.resolve("beta")
        assert detached == []
        assert reg.describe()["alpha"]["evict_pending"] is True
        assert reg.describe()["alpha"]["resident"] is True
    # Pin dropped → the deferred detach fires.
    assert detached == ["alpha"]
    assert list(reg.resident_states()) == ["beta"]


def test_resolve_rescinds_pending_eviction():
    reg = _registry(max_resident=1)
    with reg.pin("alpha"):
        reg.resolve("beta")  # alpha now evict-pending
        reg.resolve("alpha")  # hot again: the mark is rescinded
    assert reg.describe()["alpha"]["resident"] is True


def test_explicit_detach_and_eager_states():
    reg = IndexRegistry()
    reg.register("eager", state=_build_state("alpha"))
    reg.register("lazy", loader=_loader("beta"))
    with pytest.raises(ReproError, match="cannot be detached"):
        reg.detach("eager")
    assert reg.detach("lazy") is False  # not resident yet
    reg.resolve("lazy")
    assert reg.detach("lazy") is True
    assert reg.describe()["lazy"]["resident"] is False


def test_query_cache_partitioned_per_tenant(tmp_path):
    """Lazily attached tenants split the projected-query cache evenly."""
    from repro.core.persistence import save_model

    reg = IndexRegistry(query_cache_size=64)
    for tid in ("alpha", "beta", "gamma"):
        path = tmp_path / f"{tid}.npz"
        save_model(_build_state(tid).current().model, path)
        reg.register(tid, data_dir=path)
    for tid in ("alpha", "beta", "gamma"):
        _, state = reg.resolve(tid)
        assert state.current().query_cache.maxsize == 64 // 3


# --------------------------------------------------------------------- #
# transparency: evicting registry ≡ never-evicting registry
# --------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(sorted(TENANT_TEXTS)),
            st.sampled_from(["query", "detach"]),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_evicting_registry_element_identical_to_resident(ops):
    evicting = _registry(max_resident=1)
    resident = _registry()  # never evicts: the reference
    for tid in TENANT_TEXTS:
        resident.resolve(tid)
    for tid, op in ops:
        if op == "detach":
            evicting.detach(tid)
        else:
            assert _search(evicting, tid) == _search(resident, tid), (
                tid,
                op,
            )
        # The bound holds after every step (no pins are outstanding).
        assert len(evicting.resident_states()) <= 1


# --------------------------------------------------------------------- #
# per-tenant quotas
# --------------------------------------------------------------------- #
def test_quota_share_and_rejection():
    quotas = TenantQuotas(8)
    quotas.ensure(["a", "b"])
    assert quotas.share == 4
    for _ in range(4):
        quotas.admit("a")
    with pytest.raises(ServerOverloadError) as excinfo:
        quotas.admit("a")
    assert excinfo.value.reason == "tenant_quota"
    quotas.admit("b")  # the other tenant's share is untouched
    quotas.release("a")
    quotas.admit("a")  # released slot is reusable
    # A single tenant's share equals the global depth (invisible layer).
    solo = TenantQuotas(8)
    solo.ensure(["only"])
    assert solo.share == 8


def test_quota_starvation_cold_tenant_latency_bounded(monkeypatch):
    """A saturated hot tenant cannot starve a cold tenant's requests."""
    original = MicroBatcher._score_batch

    def slow(self, snapshot, batch):
        time.sleep(0.05)
        return original(self, snapshot, batch)

    monkeypatch.setattr(MicroBatcher, "_score_batch", slow)

    reg = IndexRegistry()
    reg.register("hot", state=_build_state("alpha"))
    reg.register("cold", state=_build_state("beta"))

    async def main():
        service = QueryService(
            reg, ServerConfig(max_batch=1, max_wait_ms=0.0, queue_depth=4)
        )
        await service.start()
        hot = [
            asyncio.ensure_future(
                service.search(TENANT_QUERIES["alpha"], top=2, tenant="hot")
            )
            for _ in range(12)
        ]
        await asyncio.sleep(0)  # every hot request reaches admission
        t0 = time.perf_counter()
        cold = await service.search(
            TENANT_QUERIES["beta"], top=2, tenant="cold"
        )
        cold_seconds = time.perf_counter() - t0
        hot_results = await asyncio.gather(*hot, return_exceptions=True)
        await service.drain()
        return cold, cold_seconds, hot_results

    cold, cold_seconds, hot_results = asyncio.run(main())
    assert cold["tenant"] == "cold"
    assert cold["results"]
    rejected = [
        r for r in hot_results if isinstance(r, ServerOverloadError)
    ]
    served = [r for r in hot_results if isinstance(r, dict)]
    # share = queue_depth // 2 = 2: the flood saturates it immediately.
    assert len(served) == 2
    assert len(rejected) == 10
    assert all(r.reason == "tenant_quota" for r in rejected)
    # The cold tenant rode its own batcher + quota share: one slow
    # batch (50ms), not the hot tenant's backlog.
    assert cold_seconds < 2.0


# --------------------------------------------------------------------- #
# HTTP transport end to end
# --------------------------------------------------------------------- #
class _ServerThread:
    """Run a (possibly multi-tenant) service on a private loop."""

    def __init__(self, source, config: ServerConfig):
        self.source = source
        self.config = config
        self.port: int | None = None
        self.service: QueryService | None = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            service = self.service = QueryService(self.source, self.config)
            server = await start_http_server(service, "127.0.0.1", 0)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            await self._stop.wait()
            server.close()
            await server.wait_closed()
            await service.drain()

        asyncio.run(main())

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=30), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server failed to drain"


def test_http_tenant_routing_end_to_end():
    reg = _registry(tenants=("alpha", "beta"))
    engines = {
        tid: LSIRetrieval(_build_state(tid).current().model)
        for tid in ("alpha", "beta")
    }
    with _ServerThread(reg, ServerConfig(max_wait_ms=1.0)) as server:
        client = ServerClient(port=server.port)

        # /tenants before any query: registered but cold.
        info = client.tenants()
        assert set(info["tenants"]) == {"alpha", "beta"}
        assert not any(r["resident"] for r in info["tenants"].values())

        # Per-call tenant routing: each response is element-identical
        # to that tenant's own engine and stamped with the tenant id.
        for tid in ("alpha", "beta"):
            data = client.search(TENANT_QUERIES[tid], top=3, tenant=tid)
            assert data["tenant"] == tid
            got = [(int(j), float(s)) for j, s, _ in data["results"]]
            want = engines[tid].search(TENANT_QUERIES[tid], top=3)
            assert [j for j, _ in got] == [j for j, _ in want]
            assert np.allclose(
                [c for _, c in got], [c for _, c in want], atol=1e-12
            )

        # A client-default tenant rides X-Tenant on every request.
        with ServerClient(port=server.port, tenant="beta") as bound:
            assert bound.search("growth", top=1)["tenant"] == "beta"

        # The body field overrides the header (checked via raw payload).
        data = client._request(
            "POST", "/search",
            {"query": "growth", "top": 1, "tenant": "alpha"},
            tenant="beta",
        )
        assert data["tenant"] == "alpha"

        # Unknown tenant → typed 404 carrying the request id.
        with pytest.raises(UnknownTenantError) as excinfo:
            client.search("x", top=1, tenant="ghost", request_id="rid-404")
        assert excinfo.value.tenant == "ghost"
        assert excinfo.value.request_id == "rid-404"
        # Ambiguous (no tenant named, none is "default") → same error.
        with pytest.raises(UnknownTenantError):
            client.search("x", top=1)

        # Per-tenant 429: pre-occupy alpha's whole share, then watch
        # the typed reason surface on the client while beta still runs.
        service = server.service
        service.quotas.ensure(service.registry.tenant_ids)
        for _ in range(service.quotas.share):
            service.quotas.admit("alpha")
        try:
            with pytest.raises(ServerOverloadError) as excinfo:
                client.search("x", top=1, tenant="alpha")
            assert excinfo.value.reason == "tenant_quota"
            assert excinfo.value.request_id
            assert client.search("growth", top=1, tenant="beta")["results"]
        finally:
            for _ in range(service.quotas.share):
                service.quotas.release("alpha")

        # /healthz grows a tenants block in multi-tenant mode.
        health = client.healthz()
        assert set(health["tenants"]) == {"alpha", "beta"}


def test_http_single_tenant_shape_unchanged():
    """Single-tenant responses keep their exact legacy shape."""
    state = _build_state("alpha")
    with _ServerThread(state, ServerConfig(max_wait_ms=1.0)) as server:
        client = ServerClient(port=server.port)
        data = client.search(TENANT_QUERIES["alpha"], top=2)
        assert "tenant" not in data
        health = client.healthz()
        assert "tenants" not in health
        # Naming the default tenant explicitly works and is echoed.
        data = client.search(
            TENANT_QUERIES["alpha"], top=2, tenant=DEFAULT_TENANT
        )
        assert data["tenant"] == DEFAULT_TENANT


# --------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------- #
def test_cli_parses_tenant_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--tenant", "a=/tmp/a.npz", "--tenant", "b=/tmp/b",
         "--max-resident", "2"]
    )
    assert args.tenants == ["a=/tmp/a.npz", "b=/tmp/b"]
    assert args.max_resident == 2
    args = build_parser().parse_args(
        ["cluster", "serve", "--tenants", "t.json", "--queue-depth", "64"]
    )
    assert args.data_dir is None and args.queue_depth == 64
    args = build_parser().parse_args(
        ["cluster", "worker", "--data-dir", "d", "--shard", "0",
         "--plan", "{}", "--tenant", "acme"]
    )
    assert args.tenant == "acme"


def test_cli_tenant_spec_validation():
    import pathlib

    from repro.cli import _parse_tenant_specs

    assert _parse_tenant_specs(["a=/x", "b=/y"]) == {
        "a": pathlib.Path("/x"),
        "b": pathlib.Path("/y"),
    }
    with pytest.raises(ReproError, match="NAME=PATH"):
        _parse_tenant_specs(["nodir"])
    with pytest.raises(ReproError, match="duplicate"):
        _parse_tenant_specs(["a=/x", "a=/y"])


def test_cli_cluster_serve_requires_one_source(tmp_path):
    from repro.cli import main as cli_main

    err = io.StringIO()
    # Neither --data-dir nor --tenants.
    assert cli_main(["--no-obs", "cluster", "serve"], out=err) == 1
    # Both at once.
    tenants = tmp_path / "tenants.json"
    tenants.write_text("{}", encoding="utf-8")
    assert (
        cli_main(
            ["--no-obs", "cluster", "serve", "--data-dir", str(tmp_path),
             "--tenants", str(tenants)],
            out=err,
        )
        == 1
    )
    # An empty or malformed map is refused before anything spawns.
    assert (
        cli_main(
            ["--no-obs", "cluster", "serve", "--tenants", str(tenants)],
            out=err,
        )
        == 1
    )
    tenants.write_text("not json", encoding="utf-8")
    assert (
        cli_main(
            ["--no-obs", "cluster", "serve", "--tenants", str(tenants)],
            out=err,
        )
        == 1
    )


def _seed_store(tmp_path, name: str, texts: list[str]):
    from repro.server import manager_from_texts
    from repro.store import DurableIndexStore

    data_dir = tmp_path / name
    ids = [f"{name}-{i}" for i in range(len(texts))]
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=3)
    )
    store.close(flush=False)
    return data_dir


def test_cli_stats_per_tenant_table(tmp_path):
    from repro.cli import main as cli_main

    dir_a = _seed_store(tmp_path, "acme", TENANT_TEXTS["alpha"])
    dir_b = _seed_store(tmp_path, "globex", TENANT_TEXTS["beta"])

    out = io.StringIO()
    code = cli_main(
        ["--no-obs", "stats", "--data-dir", str(dir_a),
         "--data-dir", str(dir_b)],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "tenant" in text and "acme" in text and "globex" in text

    out = io.StringIO()
    code = cli_main(
        ["--no-obs", "stats", "--json", "--data-dir", str(dir_a),
         "--data-dir", str(dir_b)],
        out=out,
    )
    assert code == 0
    blob = json.loads(out.getvalue())
    assert set(blob["tenants"]) == {"acme", "globex"}
    assert (
        blob["tenants"]["acme"]["n_documents"]
        == len(TENANT_TEXTS["alpha"])
    )

    # One --data-dir keeps the merged-snapshot behaviour (store gauges).
    out = io.StringIO()
    code = cli_main(
        ["--no-obs", "stats", "--data-dir", str(dir_a)], out=out
    )
    assert code == 0
    assert "observability state" in out.getvalue()
