"""Coordinate (COO) sparse format — the assembly format.

A COO matrix is three parallel arrays ``(row, col, data)``.  It is the
natural target for incremental construction (term counting emits triples)
and the pivot for conversions: both compressed formats are produced by a
single stable sort of the triples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ShapeError, SparseFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sparse.csc import CSCMatrix
    from repro.sparse.csr import CSRMatrix

__all__ = ["COOMatrix"]


class COOMatrix:
    """Immutable coordinate-format sparse matrix.

    Parameters
    ----------
    shape:
        ``(m, n)`` matrix dimensions.
    row, col:
        Integer arrays of equal length holding the coordinates of each
        stored entry.
    data:
        Float array of stored values, parallel to ``row``/``col``.
    sum_duplicates:
        When ``True`` (default) repeated coordinates are merged by summing
        their values — the semantics of accumulating term counts.
    """

    __slots__ = ("shape", "row", "col", "data")

    def __init__(
        self,
        shape: tuple[int, int],
        row: np.ndarray,
        col: np.ndarray,
        data: np.ndarray,
        *,
        sum_duplicates: bool = True,
    ):
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ShapeError(f"negative dimensions in shape {shape}")
        row = np.asarray(row, dtype=np.int64).ravel()
        col = np.asarray(col, dtype=np.int64).ravel()
        data = np.asarray(data, dtype=np.float64).ravel()
        if not (row.shape == col.shape == data.shape):
            raise SparseFormatError(
                f"row/col/data lengths differ: {row.size}/{col.size}/{data.size}"
            )
        if row.size:
            if row.min(initial=0) < 0 or (row.size and row.max() >= m):
                raise SparseFormatError("row index out of bounds")
            if col.min(initial=0) < 0 or (col.size and col.max() >= n):
                raise SparseFormatError("column index out of bounds")
        if sum_duplicates and row.size:
            row, col, data = _merge_duplicates(m, n, row, col, data)
        object.__setattr__(self, "shape", (m, n))
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "col", col)
        object.__setattr__(self, "data", data)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("COOMatrix is immutable")

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates already merged)."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Fraction of cells that are stored: ``nnz / (m*n)``."""
        m, n = self.shape
        return self.nnz / (m * n) if m and n else 0.0

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        # Duplicates were merged at construction, so plain assignment after
        # an np.add.at would be equivalent; np.add.at keeps this correct even
        # for subclasses that skip merging.
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def to_csr(self) -> "CSRMatrix":
        """Convert to compressed sparse row format (stable row-major sort)."""
        from repro.sparse.csr import CSRMatrix

        m, n = self.shape
        order = np.lexsort((self.col, self.row))
        rows = self.row[order]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=m), out=indptr[1:])
        return CSRMatrix(self.shape, indptr, self.col[order], self.data[order])

    def to_csc(self) -> "CSCMatrix":
        """Convert to compressed sparse column format."""
        from repro.sparse.csc import CSCMatrix

        m, n = self.shape
        order = np.lexsort((self.row, self.col))
        cols = self.col[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=n), out=indptr[1:])
        return CSCMatrix(self.shape, indptr, self.row[order], self.data[order])

    def transpose(self) -> "COOMatrix":
        """Return the transpose (an O(1) relabeling of coordinates)."""
        m, n = self.shape
        return COOMatrix((n, m), self.col, self.row, self.data, sum_duplicates=False)

    @property
    def T(self) -> "COOMatrix":
        """The transpose (see :meth:`transpose`)."""
        return self.transpose()

    # ------------------------------------------------------------------ #
    # elementwise helpers used by the weighting subsystem
    # ------------------------------------------------------------------ #
    def map_data(self, fn) -> "COOMatrix":
        """Return a copy with ``fn`` applied to the stored values only.

        Note sparse semantics: implicit zeros stay zero, so ``fn`` must map
        0 → 0 for the result to equal the dense elementwise application.
        """
        new = np.asarray(fn(self.data), dtype=np.float64)
        if new.shape != self.data.shape:
            raise SparseFormatError("map_data callback changed the data length")
        return COOMatrix(self.shape, self.row, self.col, new, sum_duplicates=False)

    def eliminate_zeros(self, tol: float = 0.0) -> "COOMatrix":
        """Drop stored entries with ``|value| <= tol``."""
        keep = np.abs(self.data) > tol
        return COOMatrix(
            self.shape, self.row[keep], self.col[keep], self.data[keep],
            sum_duplicates=False,
        )


def _merge_duplicates(m, n, row, col, data):
    """Sum values that share a coordinate; returns row-major-sorted triples."""
    key = row * n + col
    order = np.argsort(key, kind="stable")
    key = key[order]
    data = data[order]
    boundary = np.empty(key.size, dtype=bool)
    boundary[0] = True
    np.not_equal(key[1:], key[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    merged = np.add.reduceat(data, starts)
    ukey = key[starts]
    return ukey // n, ukey % n, merged
