"""Block Lanczos SVD — the SVDPACKC ``bls2`` analogue.

SVDPACKC shipped both single-vector (``las2``) and block (``bls2``)
Lanczos codes.  The block variant iterates with ``b`` vectors at a time:
each step applies the Gram operator to a whole block, builds a block
tridiagonal (band) matrix, and reorthogonalizes block-wise.

Why blocks, in the paper's setting:

* **clustered spectra** — term-document matrices have long plateaus of
  near-equal singular values; single-vector Lanczos resolves a cluster
  one vector at a time while a block of size ≥ cluster width captures it
  in one pass;
* **memory locality** — the block matvec is a sparse × dense-block
  product (our chunked ``matmat`` kernel), which amortizes the sparse
  index traversal over ``b`` right-hand sides — the same argument the
  HPC guides make for blocking.

The band matrix is assembled densely and solved with the one-sided
Jacobi SVD (it is tiny: ``steps·b`` square).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.linalg.householder import householder_qr
from repro.linalg.jacobi_svd import jacobi_svd
from repro.linalg.lanczos import LanczosStats
from repro.util.rng import ensure_rng

__all__ = ["block_lanczos_svd"]


def _matmat(a, X):
    if hasattr(a, "matmat"):
        return a.matmat(X)
    return np.asarray(a) @ X


def _rmatmat(a, Y):
    if hasattr(a, "rmatmat"):
        return a.rmatmat(Y)
    return np.asarray(a).T @ Y


def block_lanczos_svd(
    a,
    k: int,
    *,
    block: int = 4,
    tol: float = 1e-9,
    max_blocks: int | None = None,
    seed=0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, LanczosStats]:
    """Compute the ``k`` largest singular triplets of ``a`` by block
    Lanczos on the Gram operator of the smaller dimension.

    Parameters
    ----------
    a:
        Sparse matrix, dense ndarray, or matmat/rmatmat object.
    k:
        Number of triplets, ``1 ≤ k ≤ min(m, n)``.
    block:
        Block width ``b``; widths ≥ the largest singular-value cluster
        resolve plateaus in one pass.
    tol:
        Relative residual acceptance threshold for Ritz values.
    max_blocks:
        Cap on block steps; default sizes the Krylov space at roughly
        ``4k`` vectors.

    Returns
    -------
    (U, s, V, stats) with the same conventions as
    :func:`repro.linalg.lanczos.lanczos_svd`.
    """
    if not hasattr(a, "shape"):
        a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    dim = min(m, n)
    if not 1 <= k <= dim:
        raise ShapeError(f"k={k} must be in [1, min(m, n)={dim}]")
    if block < 1:
        raise ShapeError("block width must be >= 1")
    block = min(block, dim)
    if max_blocks is None:
        max_blocks = max((8 * k) // block + 4, 4)
    max_blocks = max(1, min(max_blocks, dim // block + 1))

    stats = LanczosStats(gram_dim=dim)
    rng = ensure_rng(seed)
    small_is_cols = m >= n

    def gram_block(X: np.ndarray) -> np.ndarray:
        stats.matvecs += 2 * X.shape[1]
        if small_is_cols:
            return _rmatmat(a, _matmat(a, X))
        return _matmat(a, _rmatmat(a, X))

    # Orthonormal start block.  Block widths may shrink at the end so the
    # Krylov space can span the whole dimension exactly.
    Q0, _ = householder_qr(rng.standard_normal((dim, block)))
    basis_blocks = [Q0]
    widths = [block]
    # Band matrix entries: diagonal blocks A_j (b_j×b_j symmetric) and
    # off-diagonal blocks B_j (b_{j+1}×b_j from QR of the residual).
    diag_blocks: list[np.ndarray] = []
    off_blocks: list[np.ndarray] = []

    def band_matrix(nblocks: int) -> np.ndarray:
        offsets = np.concatenate([[0], np.cumsum(widths[:nblocks])])
        size = int(offsets[-1])
        T = np.zeros((size, size))
        for jj in range(nblocks):
            lo, hi = offsets[jj], offsets[jj + 1]
            T[lo:hi, lo:hi] = diag_blocks[jj]
        for jj in range(nblocks - 1):
            lo, hi = offsets[jj], offsets[jj + 1]
            nxt = offsets[jj + 2]
            T[hi:nxt, lo:hi] = off_blocks[jj]
            T[lo:hi, hi:nxt] = off_blocks[jj].T
        return T

    total = 0
    theta_prev: np.ndarray | None = None
    stable_checks = 0
    for j in range(max_blocks):
        Qj = basis_blocks[j]
        W = gram_block(Qj)
        Aj = Qj.T @ W
        Aj = 0.5 * (Aj + Aj.T)  # symmetrize against rounding
        diag_blocks.append(Aj)
        W = W - Qj @ Aj
        if j > 0:
            W = W - basis_blocks[j - 1] @ off_blocks[j - 1].T
        # Full block reorthogonalization (twice).
        for _pass in range(2):
            for Qi in basis_blocks:
                W = W - Qi @ (Qi.T @ W)
        total += widths[j]
        stats.iterations = total
        next_width = min(block, dim - total)
        if next_width < 1 or j == max_blocks - 1:
            break
        # Adaptive stop: the top-k Ritz values must be stable across TWO
        # consecutive checks (a single small step can be a convergence
        # plateau, the classic Lanczos false positive).
        if total >= k:
            _, theta_now, _ = jacobi_svd(band_matrix(j + 1))
            head = theta_now[:k]
            if theta_prev is not None and head.size == k:
                scale = max(float(head[0]), 1e-300)
                if np.abs(head - theta_prev).max() <= tol * scale:
                    stable_checks += 1
                    if stable_checks >= 2:
                        break
                else:
                    stable_checks = 0
            theta_prev = head.copy() if head.size == k else None
        Qn_full, Bj_full = householder_qr(W)
        Qn = Qn_full[:, :next_width]
        Bj = Bj_full[:next_width, :]
        # Rank-deficient residual block: replace dead directions with
        # fresh random vectors orthogonal to everything.
        dead = np.abs(np.diag(Bj[:, :next_width])) < 1e-12 \
            if next_width <= Bj.shape[1] else np.zeros(next_width, bool)
        if np.any(dead):
            for idx in np.flatnonzero(dead):
                v = rng.standard_normal(dim)
                for Qi in basis_blocks + [Qn[:, :idx]]:
                    v = v - Qi @ (Qi.T @ v)
                norm = np.sqrt(v @ v)
                if norm < 1e-12:
                    break
                Qn[:, idx] = v / norm
            Bj = Bj * (~dead)[:, None]
        off_blocks.append(Bj)
        basis_blocks.append(Qn)
        widths.append(next_width)

    # Assemble the final band matrix T (total × total).
    T = band_matrix(len(diag_blocks))

    # Eigen via Jacobi SVD of the symmetric PSD band matrix: T = UΣUᵀ
    # (Gram operators are PSD so singular values are eigenvalues).
    UT, theta, VT = jacobi_svd(T)
    # Fix eigenvector signs: for PSD T, U and V columns agree up to sign.
    signs = np.sign(np.sum(UT * VT, axis=0))
    signs[signs == 0] = 1.0
    Z = UT * signs

    if theta.size < k:
        raise ConvergenceError(
            f"block Lanczos basis too small: {theta.size} < k={k}",
            iterations=total,
            achieved=theta.size,
        )
    Q = np.hstack(basis_blocks[: len(diag_blocks)])[:, :total]
    small_vecs = Q @ Z[:, :k]
    small_vecs /= np.maximum(
        np.sqrt(np.sum(small_vecs**2, axis=0)), 1e-300
    )
    s = np.sqrt(np.clip(theta[:k], 0.0, None))
    stats.converged = int(np.sum(s > tol * max(s[0], 1e-300)))

    long_dim = m if small_is_cols else n
    long_vecs = np.zeros((long_dim, k))
    for i in range(k):
        if s[i] > 1e-12 * max(s[0], 1.0):
            stats.matvecs += 1
            if small_is_cols:
                long_vecs[:, i] = _matmat(a, small_vecs[:, i : i + 1])[:, 0] / s[i]
            else:
                long_vecs[:, i] = _rmatmat(a, small_vecs[:, i : i + 1])[:, 0] / s[i]
        else:
            s[i] = 0.0
            v = rng.standard_normal(long_dim)
            prev = long_vecs[:, :i]
            v -= prev @ (prev.T @ v)
            norm = np.sqrt(v @ v)
            long_vecs[:, i] = v / norm if norm > 0 else v

    if small_is_cols:
        return long_vecs, s, small_vecs, stats
    return small_vecs, s, long_vecs, stats
