"""Dynamic micro-batching: coalesce concurrent queries into one GEMM.

The fast path (PR 1) made *batched* scoring cheap — one GEMM scores a
whole query matrix — but only for callers who arrive pre-batched.  A
server's callers arrive one by one; this module creates the batches,
the same dynamic-batching shape inference servers use: the scheduler
takes the first waiting request, then keeps collecting until either
``max_batch`` requests are in hand or ``max_wait_ms`` has elapsed since
the batch opened, and flushes the whole set through one
:meth:`EpochSnapshot.score_batch` call.  Per-request ``top`` /
``threshold`` are preserved because ranking happens per score row with
the same :func:`~repro.serving.topk.ranked_pairs` the unbatched engine
uses — results are element-identical to ``LSIRetrieval.search``.

The scheduler awaits each flush (the scoring runs on an executor thread
so the event loop stays responsive), which makes batching *adaptive*:
while a GEMM is in flight, arriving requests pile up and form a larger
next batch — exactly the behaviour that keeps throughput high under
load.  Memory stays bounded because admission caps outstanding
requests before they ever reach this queue.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeadlineExceededError
from repro.obs.metrics import registry
from repro.obs.trace_context import TraceContext
from repro.obs.tracing import span
from repro.server.state import EpochSnapshot, ServingState
from repro.serving.topk import ranked_pairs

__all__ = ["SearchRequest", "MicroBatcher", "BATCH_SIZE_BUCKETS"]

#: Batch-size histogram boundaries (requests per flush), powers of two.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class SearchRequest:
    """One admitted query waiting for (or being) scored.

    ``probes`` selects the ANN path (probe-bounded scan over that many
    coarse cells); ``None`` means the server default, which may itself
    be ``None`` (exact).  ``exact=True`` is the per-request escape
    hatch that forces the exhaustive GEMM regardless of any default.
    """

    query: object  # str | token sequence
    top: int | None = None
    threshold: float | None = None
    probes: int | None = None
    exact: bool = False
    deadline: float | None = None  # absolute time.monotonic() seconds
    #: The request's trace identity, captured at admission — the batch
    #: span lists every distinct trace it serves under ``trace_ids``.
    trace: TraceContext | None = None
    enqueued: float = field(default_factory=time.monotonic)
    future: asyncio.Future = None


class MicroBatcher:
    """The scheduler task that turns a request stream into batches."""

    def __init__(
        self,
        state: ServingState,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        shards: int = 1,
        workers: int | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.state = state
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self.shards = shards
        self.workers = workers
        self._queue: asyncio.Queue[SearchRequest] = asyncio.Queue()
        self._task: asyncio.Task | None = None

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the scheduler task on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-server-batcher"
            )

    def submit(self, request: SearchRequest) -> None:
        """Enqueue an admitted request (event-loop thread only)."""
        self._queue.put_nowait(request)

    async def drain(self) -> None:
        """Wait until every queued request has been flushed."""
        await self._queue.join()

    async def stop(self) -> None:
        """Cancel the scheduler task (call after :meth:`drain`)."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            window_closes = loop.time() + self.max_wait
            while len(batch) < self.max_batch:
                remaining = window_closes - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
            try:
                await self._flush(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _flush(self, batch: list[SearchRequest]) -> None:
        """Score one batch against the current epoch and resolve futures."""
        now = time.monotonic()
        live: list[SearchRequest] = []
        for req in batch:
            registry.observe("server.queue_wait_seconds", now - req.enqueued)
            if req.deadline is not None and now > req.deadline:
                registry.inc("server.deadline_expired")
                if not req.future.done():
                    req.future.set_exception(
                        DeadlineExceededError(
                            "request spent its deadline waiting in the "
                            "batch queue"
                        )
                    )
            else:
                live.append(req)
        registry.inc("server.batches_total")
        registry.observe(
            "server.batch_size", len(live), boundaries=BATCH_SIZE_BUCKETS
        )
        if not live:
            return
        snapshot = self.state.current()
        loop = asyncio.get_running_loop()
        try:
            with span(
                "server.batch", size=len(live), epoch=snapshot.epoch
            ) as batch_span:
                # One batch serves many requests, hence many traces: the
                # span cannot belong to one trace_id, so it joins each
                # via the trace_ids attribute (see spans_for_trace).
                trace_ids = sorted(
                    {req.trace.trace_id for req in live if req.trace}
                )
                if trace_ids:
                    batch_span.set_attr("trace_ids", trace_ids)
                # Context vars do not cross run_in_executor on their own;
                # copying the context hands the executor thread this batch
                # span as parent, so the scoring spans nest under it.
                call = contextvars.copy_context().run
                responses = await loop.run_in_executor(
                    None, call, self._score_batch, snapshot, live
                )
        except Exception as exc:  # noqa: BLE001 — fail the batch, not the server
            for req in live:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        for req, response in zip(live, responses):
            if not req.future.done():
                req.future.set_result(response)

    def _score_batch(
        self, snapshot: EpochSnapshot, batch: list[SearchRequest]
    ) -> list[dict]:
        """Project + score + rank one batch (runs on an executor thread).

        The batch splits into an *exact* group — scored by today's one
        GEMM over all documents — and ANN groups keyed by probe count,
        each probing the snapshot's quantizer per query (candidate sets
        differ per query, so there is no cross-query GEMM to share; the
        grouping bounds the per-probe-set bookkeeping and spans).
        Requests asking for probes on a snapshot without a quantizer
        fall back to the exact group, counted in
        ``ann.exact_fallbacks_total``.
        """
        exact: list[tuple[int, SearchRequest]] = []
        ann: dict[int, list[tuple[int, SearchRequest]]] = {}
        for i, req in enumerate(batch):
            if req.exact or req.probes is None:
                exact.append((i, req))
            elif snapshot.ann is None:
                registry.inc("ann.exact_fallbacks_total")
                exact.append((i, req))
            else:
                ann.setdefault(int(req.probes), []).append((i, req))
        doc_ids = snapshot.model.doc_ids
        responses: list[dict] = [None] * len(batch)

        def response(pairs, extra=None) -> dict:
            out = {
                "epoch": snapshot.epoch,
                "n_documents": snapshot.n_documents,
                "results": [[j, score, doc_ids[j]] for j, score in pairs],
            }
            if extra:
                out.update(extra)
            return out

        if exact:
            t0 = time.perf_counter()
            Q = np.stack([snapshot.project(req.query) for _, req in exact])
            with span("server.score", size=len(exact)):
                S = snapshot.score_batch(
                    Q, shards=self.shards, workers=self.workers
                )
            registry.observe(
                "server.batch_gemm_seconds", time.perf_counter() - t0
            )
            for (i, req), row in zip(exact, S):
                # Zero-vector (all-OOV) queries score exactly 0 everywhere
                # on this path too, so the engine's short-circuit needs no
                # mirror.
                pairs = ranked_pairs(row, top=req.top, threshold=req.threshold)
                responses[i] = response(pairs)
        for probes, group in ann.items():
            with span("server.ann_scan", size=len(group), probes=probes):
                for i, req in group:
                    qhat = snapshot.project(req.query)
                    pairs, stats = snapshot.search_ann(
                        qhat,
                        probes=probes,
                        top=req.top,
                        threshold=req.threshold,
                    )
                    responses[i] = response(
                        pairs,
                        {
                            "ann": {
                                "probes": probes,
                                "cells_probed": stats["cells_probed"],
                                "candidates": stats["candidates"],
                            }
                        },
                    )
        return responses
