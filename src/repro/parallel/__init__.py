"""Parallel and blocked execution helpers.

The paper sits in the HPC literature (SC '95) and its open issues (§5.6)
are explicitly computational: "computing the truncated SVD of extremely
large sparse matrices", "SVD-updating in real time", and "efficiently
comparing queries to documents (finding near neighbors in high-dimension
spaces)".  These helpers address the third at laptop scale and keep
memory bounded for the first two:

* :mod:`repro.parallel.chunked` — blocked cosine scoring and blocked
  fold-in that stream over document shards without materializing
  ``nnz × k`` temporaries;
* :mod:`repro.parallel.pool` — a thread-pool map (NumPy releases the GIL
  inside its kernels, so scoring shards in threads scales) with a
  deterministic sequential fallback;
* :mod:`repro.parallel.sharding` — splitting a document collection into
  shards and merging per-shard top-z results exactly, for one query
  (:func:`sharded_search`) or a whole batch
  (:func:`sharded_batch_search`) over the cached serving index.
"""

from repro.parallel.chunked import blocked_cosine_scores, blocked_fold_in
from repro.parallel.pool import parallel_map
from repro.parallel.sharding import (
    merge_topk,
    shard_documents,
    sharded_batch_search,
    sharded_search,
)
from repro.parallel.batch import (
    batch_cosine_scores,
    batch_project_queries,
    batch_search,
)

__all__ = [
    "blocked_cosine_scores",
    "blocked_fold_in",
    "parallel_map",
    "shard_documents",
    "sharded_search",
    "sharded_batch_search",
    "merge_topk",
    "batch_project_queries",
    "batch_cosine_scores",
    "batch_search",
]
