"""§5.3 (TREC) — long detailed queries and the sample-then-fold pipeline.

Regenerates three TREC findings:

* rich (≥50-term) queries shrink LSI's advantage over the keyword method
  (paper: 16% retrieval vs 30%+ on the short-query collections);
* the scale workaround — decompose a sample, fold the rest in — loses
  little compared with decomposing everything;
* pooled relevance judgments under-credit systems outside the pool
  (footnote 1).

Times the sample-then-fold pipeline.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi
from repro.corpus import SyntheticSpec, topic_collection, trec_like_collection
from repro.evaluation import (
    compare_engines,
    evaluate_run,
    pooled_judgments,
    run_engine,
)
from repro.retrieval import KeywordRetrieval, LSIRetrieval
from repro.updating import fold_in_texts


def test_trec_long_queries_and_fold_pipeline(benchmark):
    trec = trec_like_collection(
        n_topics=8, docs_per_topic=30, doc_length=60, query_length=50,
        queries_per_topic=2, seed=5,
    )
    short = topic_collection(
        SyntheticSpec(
            n_topics=8, docs_per_topic=30, doc_length=60,
            concepts_per_topic=25, synonyms_per_concept=3,
            queries_per_topic=2, query_length=2, query_synonym_shift=0.9,
            background_vocab=40, background_rate=0.12,
        ),
        seed=5,
    )

    kw_t = KeywordRetrieval.from_texts(trec.documents, scheme="log_entropy")
    lsi_t = LSIRetrieval.from_texts(
        trec.documents, k=24, scheme="log_entropy", seed=0
    )
    long_cmp = compare_engines(lsi_t, kw_t, trec)

    kw_s = KeywordRetrieval.from_texts(short.documents, scheme="log_entropy")
    lsi_s = LSIRetrieval.from_texts(
        short.documents, k=24, scheme="log_entropy", seed=0
    )
    short_cmp = compare_engines(lsi_s, kw_s, short)

    # Sample-then-fold: decompose 60% of the collection, fold the rest.
    def sample_then_fold():
        cut = int(trec.n_documents * 0.6)
        model = fit_lsi(
            trec.documents[:cut], k=24, scheme="log_entropy", seed=0
        )
        return LSIRetrieval(
            fold_in_texts(
                model, trec.documents[cut:],
                doc_ids=[f"F{i}" for i in range(trec.n_documents - cut)],
            )
        )

    folded_engine = benchmark(sample_then_fold)
    folded_eval = evaluate_run(run_engine(folded_engine, trec), trec)
    full_eval = evaluate_run(run_engine(lsi_t, trec), trec)

    # Pooling bias: judge only what the keyword system surfaced.
    kw_run = run_engine(kw_t, trec)
    pooled = pooled_judgments([kw_run], trec, depth=20)
    lsi_pooled = evaluate_run(run_engine(lsi_t, pooled), pooled)

    rows = [
        f"short queries (len 2): LSI {short_cmp.candidate['mean_metric']:.3f} "
        f"vs kw {short_cmp.baseline['mean_metric']:.3f} "
        f"({short_cmp.improvement_pct:+.1f}%)",
        f"long queries (len 50): LSI {long_cmp.candidate['mean_metric']:.3f} "
        f"vs kw {long_cmp.baseline['mean_metric']:.3f} "
        f"({long_cmp.improvement_pct:+.1f}%)",
        "paper: rich TREC queries → smaller (but positive) LSI advantage",
        f"full decomposition:  {full_eval['mean_metric']:.3f}",
        f"sample+fold (60%):   {folded_eval['mean_metric']:.3f}",
        f"LSI under keyword-only pooled judgments: "
        f"{lsi_pooled['mean_metric']:.3f} (true-judgment score "
        f"{full_eval['mean_metric']:.3f})",
    ]
    emit("§5.3 — TREC-style long queries, fold pipeline, pooling", rows)

    # Shape claims.  Long queries collapse the LSI advantage (here the
    # keyword method also reaches the ceiling); the sample+fold pipeline
    # retains most of the full decomposition's quality (the 40% folded
    # tail is represented only through the sample's latent structure, the
    # accuracy trade-off §3.3 describes).
    assert long_cmp.improvement_pct >= -2.0
    assert long_cmp.improvement_pct < short_cmp.improvement_pct
    assert folded_eval["mean_metric"] > 0.65 * full_eval["mean_metric"]
    # Pooled judgments never flatter an out-of-pool system (footnote 1).
    assert lsi_pooled["mean_metric"] <= full_eval["mean_metric"] + 1e-9
