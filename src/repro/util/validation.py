"""Argument-validation helpers shared across subsystems.

These raise :class:`repro.errors.ShapeError` (a ``ValueError`` subclass) with
messages that name the offending argument, so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "check_axis",
    "check_dense_matrix",
    "check_positive",
    "check_shape_match",
    "check_vector",
]


def check_dense_matrix(a: np.ndarray, name: str = "a") -> np.ndarray:
    """Validate that ``a`` is a 2-D float ndarray; returns a float64 view/copy."""
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.dtype != np.float64:
        arr = arr.astype(np.float64)
    return arr


def check_vector(x: np.ndarray, length: int | None = None, name: str = "x") -> np.ndarray:
    """Validate that ``x`` is 1-D (optionally of a given length)."""
    vec = np.asarray(x, dtype=np.float64)
    if vec.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got ndim={vec.ndim}")
    if length is not None and vec.shape[0] != length:
        raise ShapeError(f"{name} must have length {length}, got {vec.shape[0]}")
    return vec


def check_positive(value: int | float, name: str = "value", *, strict: bool = True) -> None:
    """Require ``value > 0`` (or ``>= 0`` when ``strict=False``)."""
    if strict and not value > 0:
        raise ShapeError(f"{name} must be positive, got {value!r}")
    if not strict and value < 0:
        raise ShapeError(f"{name} must be non-negative, got {value!r}")


def check_shape_match(
    left: Sequence[int], right: Sequence[int], *, what: str = "operands"
) -> None:
    """Require two shape tuples to be identical."""
    if tuple(left) != tuple(right):
        raise ShapeError(f"{what} have mismatched shapes {tuple(left)} vs {tuple(right)}")


def check_axis(axis: int, ndim: int = 2) -> int:
    """Normalize a possibly-negative ``axis`` for an ``ndim``-dimensional object."""
    if not -ndim <= axis < ndim:
        raise ShapeError(f"axis {axis} out of range for ndim={ndim}")
    return axis % ndim
