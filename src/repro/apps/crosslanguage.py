"""Cross-language retrieval (§5.4, Landauer & Littman).

Method, as the paper describes it:

1. "The original term-document matrix is formed using a collection of
   abstracts that have versions in more than one language ... Each
   abstract is treated as the combination of its French-English versions."
2. "The truncated SVD is computed for this term by combined-abstract
   matrix.  The resulting space consists of combined-language abstracts,
   English words and French words."
3. "After this analysis, monolingual abstracts can be folded-in ... a
   French abstract will simply be located at the vector sum of its
   constituent words."
4. Queries in either language match documents in any language — "there is
   no difficult translation involved".

Evaluation follows the original study's *mate retrieval*: fold in the
English and French versions of held-out documents, query with one
language's version, and check that its other-language mate ranks first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.build import fit_lsi
from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.corpus.crosslang import CrossLanguageCorpus
from repro.errors import ShapeError
from repro.updating.folding import fold_in_texts
from repro.weighting.schemes import WeightingScheme

__all__ = ["CrossLanguageRetrieval", "mate_retrieval_accuracy"]


@dataclass
class CrossLanguageRetrieval:
    """A multilingual LSI space with folded-in monolingual documents.

    Attributes
    ----------
    model:
        The space after folding; the first ``n_training`` document vectors
        are the combined abstracts, the rest the folded monolingual docs.
    n_training:
        Number of combined training documents.
    languages:
        Language tag of each folded document ("en"/"fr"), parallel to the
        folded part of the model's doc list.
    """

    model: LSIModel
    n_training: int
    languages: list[str]

    @classmethod
    def train(
        cls,
        corpus: CrossLanguageCorpus,
        k: int,
        *,
        scheme: WeightingScheme | str | None = "log_entropy",
        seed=0,
    ) -> "CrossLanguageRetrieval":
        """Fit on combined abstracts, then fold both monolingual sets in."""
        base = fit_lsi(
            corpus.combined,
            k,
            scheme=scheme,
            doc_ids=[f"pair{i}" for i in range(len(corpus.combined))],
            seed=seed,
        )
        n_train = base.n_documents
        folded = fold_in_texts(
            base,
            list(corpus.english) + list(corpus.french),
            doc_ids=[f"en{i}" for i in range(len(corpus.english))]
            + [f"fr{i}" for i in range(len(corpus.french))],
        )
        langs = ["en"] * len(corpus.english) + ["fr"] * len(corpus.french)
        return cls(model=folded, n_training=n_train, languages=langs)

    # ------------------------------------------------------------------ #
    def _folded_coords(self) -> np.ndarray:
        return (self.model.V * self.model.s)[self.n_training :]

    def search(
        self,
        query: str,
        *,
        language: str | None = None,
        top: int = 10,
    ) -> list[tuple[str, float]]:
        """Rank folded monolingual documents for a query in any language.

        ``language`` restricts results to one language's documents (mate
        retrieval restricts to the *other* language).
        """
        qhat = project_query(self.model, query) * self.model.s
        coords = self._folded_coords()
        ids = self.model.doc_ids[self.n_training :]
        mask = np.ones(len(ids), dtype=bool)
        if language is not None:
            mask = np.array([l == language for l in self.languages])
        qn = np.sqrt(np.dot(qhat, qhat))
        norms = np.sqrt(np.sum(coords**2, axis=1))
        denom = norms * qn
        cos = np.zeros(len(ids))
        ok = (denom > 0) & mask
        cos[ok] = (coords[ok] @ qhat) / denom[ok]
        cos[~mask] = -np.inf
        order = np.argsort(-cos, kind="stable")[:top]
        return [(ids[int(i)], float(cos[i])) for i in order]


def mate_retrieval_accuracy(
    retrieval: CrossLanguageRetrieval,
    queries: Sequence[str],
    mate_ids: Sequence[str],
    *,
    target_language: str,
) -> float:
    """Fraction of queries whose cross-language mate ranks first.

    ``queries[i]`` is a document text in one language; ``mate_ids[i]`` the
    id of its translation among the folded documents.
    """
    if len(queries) != len(mate_ids):
        raise ShapeError("queries and mate_ids must be parallel")
    hits = 0
    for q, mate in zip(queries, mate_ids):
        ranked = retrieval.search(q, language=target_language, top=1)
        if ranked and ranked[0][0] == mate:
            hits += 1
    return hits / len(queries) if queries else 0.0
