"""PR 7 observability substrate: metrics federation (property-based),
Prometheus exposition, trace contexts, and the slow-query log."""

from __future__ import annotations

import json
import re
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.aggregate import (
    label_snapshots,
    merge_registry_snapshots,
    prefix_snapshot,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.prom import render_prometheus, render_snapshot, sanitize_metric_name
from repro.obs.slowlog import SlowQueryLog, format_slowlog, read_slowlog
from repro.obs.trace_context import (
    TraceContext,
    coerce_trace_id,
    current_trace,
    new_trace_id,
    trace_scope,
)
from repro.obs.tracing import span, spans_for_trace


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.registry.reset()
    obs.clear_spans()
    obs.enable_tracing(False)
    yield
    obs.registry.reset()
    obs.clear_spans()
    obs.enable_tracing(False)


# --------------------------------------------------------------------- #
# merge_registry_snapshots — property-based (the federation contract)
# --------------------------------------------------------------------- #
_NAMES = st.sampled_from(["a.one", "b.two", "c.three", "d.four"])

#: Dyadic observation values: float sums are exact in any order, so the
#: order-independence property can demand bit-identical merges.
_VALUES = st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0, 8.0])

_BOUNDS = (0.5, 1.0, 4.0)


def _snapshot(counters, gauges, observations) -> dict:
    reg = MetricsRegistry()
    for name, by in counters:
        reg.inc(name, by)
    for name, value in gauges:
        reg.set_gauge(name, value)
    for name, value in observations:
        reg.observe(name, value, boundaries=_BOUNDS)
    return reg.snapshot()


_SNAPSHOTS = st.lists(
    st.builds(
        _snapshot,
        st.lists(st.tuples(_NAMES, st.integers(0, 100)), max_size=6),
        st.lists(st.tuples(_NAMES, _VALUES), max_size=6),
        st.lists(st.tuples(_NAMES, _VALUES), max_size=10),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(snaps=_SNAPSHOTS, seed=st.randoms(use_true_random=False))
def test_merge_is_order_independent(snaps, seed):
    """Any permutation of worker snapshots merges to the same fleet view."""
    merged = merge_registry_snapshots(snaps)
    shuffled = list(snaps)
    seed.shuffle(shuffled)
    assert merge_registry_snapshots(shuffled) == merged


@settings(max_examples=60, deadline=None)
@given(snaps=_SNAPSHOTS)
def test_merge_histograms_are_bucket_exact(snaps):
    """Merged bucket counts are the elementwise sum of the inputs'."""
    merged = merge_registry_snapshots(snaps)
    for name, data in merged["histograms"].items():
        inputs = [
            s["histograms"][name]
            for s in snaps
            if name in s.get("histograms", {})
        ]
        assert data["count"] == sum(h["count"] for h in inputs)
        expected_buckets = [
            sum(h["bucket_counts"][i] for h in inputs)
            for i in range(len(inputs[0]["bucket_counts"]))
        ]
        assert data["bucket_counts"] == expected_buckets
        assert data["sum"] == sum(h["sum"] for h in inputs)


@settings(max_examples=60, deadline=None)
@given(snaps=_SNAPSHOTS)
def test_merge_gauges_are_idempotent(snaps):
    """Re-reporting the same snapshots never moves a gauge (max-merge)."""
    once = merge_registry_snapshots(snaps)
    twice = merge_registry_snapshots(snaps + snaps)
    assert twice["gauges"] == once["gauges"]
    # Counters, by contrast, are event counts and must double.
    assert twice["counters"] == {
        k: 2 * v for k, v in once["counters"].items()
    }


@settings(max_examples=60, deadline=None)
@given(snaps=_SNAPSHOTS)
def test_merge_counters_add(snaps):
    merged = merge_registry_snapshots(snaps)
    for name, total in merged["counters"].items():
        assert total == sum(
            s.get("counters", {}).get(name, 0) for s in snaps
        )


def test_merge_boundary_mismatch_is_order_independent():
    """Conflicting layouts: the bigger-count one wins, either order."""
    big = Histogram((0.5, 1.0))
    for _ in range(5):
        big.observe(0.75)
    small = Histogram((0.25, 2.0))
    small.observe(0.75)
    a = {"histograms": {"h": big.to_dict()}}
    b = {"histograms": {"h": small.to_dict()}}
    forward = merge_registry_snapshots([a, b])
    backward = merge_registry_snapshots([b, a])
    assert forward == backward
    assert forward["histograms"]["h"]["boundaries"] == [0.5, 1.0]
    assert forward["histograms"]["h"]["count"] == 5


def test_merge_skips_malformed_input():
    good = _snapshot([("a.one", 3)], [], [("a.one", 0.5)])
    merged = merge_registry_snapshots(
        [good, None, 42, {"counters": "nope", "histograms": {"a.one": 7}}]
    )
    assert merged["counters"] == {"a.one": 3}
    assert set(merged["histograms"]) == {"a.one"}


def test_label_snapshots_prefixes_workers_only():
    local = _snapshot([("router.requests", 2)], [], [])
    worker = _snapshot([("rpc.calls", 9)], [("up", 1.0)], [])
    flat = label_snapshots(local, {3: worker})
    assert flat["counters"] == {"router.requests": 2, "shard.3.rpc.calls": 9}
    assert flat["gauges"] == {"shard.3.up": 1.0}
    assert prefix_snapshot(worker, "w.")["counters"] == {"w.rpc.calls": 9}


# --------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'   # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" -?[0-9].*$"                          # value
)


def _assert_valid_exposition(text: str) -> None:
    """Every line is a TYPE declaration or a sample; one TYPE per family."""
    declared: set[str] = set()
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.rsplit(" ", 1)
            assert kind in {"counter", "gauge", "summary"}
            assert name not in declared, f"duplicate family {name}"
            declared.add(name)
        else:
            assert _SAMPLE_RE.match(line), f"unparseable sample: {line!r}"


def test_render_snapshot_is_valid_exposition():
    reg = MetricsRegistry()
    reg.inc("server.requests_total", 7)
    reg.set_gauge("server.draining", 0.0)
    reg.observe("server.request_seconds", 0.003)
    text = render_snapshot(reg.snapshot(), {"worker": "server"})
    _assert_valid_exposition(text)
    assert '# TYPE repro_server_requests_total_total counter' in text
    assert 'repro_server_draining{worker="server"} 0.0' in text
    assert 'repro_server_request_seconds{quantile="0.95",worker="server"}' in text
    assert 'repro_server_request_seconds_count{worker="server"} 1' in text


def test_render_prometheus_federates_without_duplicate_families():
    reg = MetricsRegistry()
    reg.observe("rpc.seconds", 0.01)
    snap = reg.snapshot()
    text = render_prometheus(
        [({"worker": "router"}, snap)]
        + [({"worker": str(sid)}, snap) for sid in range(3)]
    )
    _assert_valid_exposition(text)
    assert text.count("# TYPE repro_rpc_seconds summary") == 1
    # One quantile-0.5 sample per label set, all in the one family.
    assert text.count('quantile="0.5"') == 4


def test_render_prometheus_drops_kind_collisions():
    a = {"counters": {"thing": 1}}
    b = {"gauges": {"thing_total": 2.0}}  # sanitizes to the counter's name
    text = render_prometheus([({}, a), ({}, b)])
    _assert_valid_exposition(text)
    assert text.count("# TYPE repro_thing_total") == 1


def test_sanitize_metric_name():
    assert sanitize_metric_name("cluster.rpc-seconds") == "repro_cluster_rpc_seconds"
    assert sanitize_metric_name("9lives") == "repro__9lives"
    assert sanitize_metric_name("///") == "repro_metric"
    legal = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    for ugly in ("a b", "§", "..", "x" * 99, "total"):
        assert legal.match(sanitize_metric_name(ugly))


# --------------------------------------------------------------------- #
# Trace contexts and trace-scoped spans
# --------------------------------------------------------------------- #
class TestTraceContext:
    def test_coerce_honors_wellformed_ids(self):
        assert coerce_trace_id("req-123.A:z") == "req-123.A:z"

    def test_coerce_mints_on_malformed(self):
        minted = coerce_trace_id(None)
        assert re.fullmatch(r"[0-9a-f]{32}", minted)
        for bad in ("", "has space", "x" * 65, "nl\n", "quote\"", 42):
            out = coerce_trace_id(bad)
            assert out != bad
            assert re.fullmatch(r"[0-9a-f]{32}", out)

    def test_wire_roundtrip(self):
        ctx = TraceContext(trace_id=new_trace_id(), parent_span_id="p-1")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        for malformed in (None, "x", {}, {"trace_id": 7}, {"parent": "x"}):
            assert TraceContext.from_wire(malformed) is None

    def test_scope_sets_and_restores(self):
        assert current_trace() is None
        ctx = TraceContext(trace_id="t-1")
        with trace_scope(ctx):
            assert current_trace() == ctx
            with trace_scope(TraceContext(trace_id="t-2")):
                assert current_trace().trace_id == "t-2"
            assert current_trace() == ctx
        assert current_trace() is None

    def test_root_span_adopts_ambient_context(self):
        obs.enable_tracing(True)
        with trace_scope(TraceContext(trace_id="t-9", parent_span_id="up-1")):
            with span("child.work"):
                pass
        (record,) = [s for s in obs.recent_spans() if s.name == "child.work"]
        assert record.trace_id == "t-9"
        assert record.parent_id == "up-1"
        assert spans_for_trace("t-9") == [record]

    def test_spans_for_trace_matches_multi_trace_batches(self):
        obs.enable_tracing(True)
        with span("server.batch") as sp:
            sp.set_attr("trace_ids", ["t-a", "t-b"])
        assert [s.name for s in spans_for_trace("t-a")] == ["server.batch"]
        assert [s.name for s in spans_for_trace("t-b")] == ["server.batch"]
        assert spans_for_trace("t-c") == []

    def test_ring_snapshot_is_safe_under_concurrent_writers(self):
        obs.enable_tracing(True)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                with span("w"):
                    pass

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snapshot = obs.recent_spans()
                assert all(s.duration >= 0.0 for s in snapshot)
        finally:
            stop.set()
            for t in threads:
                t.join()


# --------------------------------------------------------------------- #
# Slow-query log
# --------------------------------------------------------------------- #
class TestSlowQueryLog:
    def test_threshold(self):
        log = SlowQueryLog(threshold_ms=100.0)
        assert log.is_slow(0.2)
        assert not log.is_slow(0.05)
        assert not SlowQueryLog(threshold_ms=0).is_slow(10.0)

    def test_disabled_records_nothing(self):
        log = SlowQueryLog(threshold_ms=0)
        log.record({"duration_ms": 9000.0})
        assert log.recent() == []

    def test_disk_stays_bounded(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, threshold_ms=1.0, max_records=8)
        for i in range(100):
            log.record({"i": i, "duration_ms": float(i)})
        lines = path.read_text().strip().splitlines()
        assert len(lines) <= 16  # compaction bounds disk at 2x max_records
        assert len(log.recent()) == 8
        assert log.recent()[-1]["i"] == 99
        assert log.describe()["slowest_ms"] == 99.0

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        first = SlowQueryLog(path, threshold_ms=1.0, max_records=8)
        first.record({"trace_id": "t-1", "duration_ms": 5.0})
        reloaded = SlowQueryLog(path, threshold_ms=1.0, max_records=8)
        assert reloaded.recent()[-1]["trace_id"] == "t-1"

    def test_read_slowlog_skips_torn_lines(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        path.write_text(
            json.dumps({"duration_ms": 1.0}) + "\n"
            + "{torn garba\n"
            + json.dumps({"duration_ms": 2.0}) + "\n"
        )
        entries = read_slowlog(path)
        assert [e["duration_ms"] for e in entries] == [1.0, 2.0]
        assert read_slowlog(tmp_path / "missing.jsonl") == []

    def test_format_slowlog(self):
        text = format_slowlog(
            [
                {
                    "trace_id": "t-1",
                    "duration_ms": 712.5,
                    "partial": True,
                    "hedged": [2],
                    "shard_timings": {"0": 10.0, "2": 700.0},
                }
            ]
        )
        assert "t-1" in text and "712.5" in text
        assert "partial" in text and "hedged=[2]" in text
        assert "s2=700.0ms" in text
        assert format_slowlog([]) == "(no slow queries recorded)"
