"""Tests for k-means and the cluster-pruned near-neighbour index."""

import numpy as np
import pytest

from repro.core.model import LSIModel
from repro.core.similarity import cosine_similarities
from repro.errors import ShapeError
from repro.retrieval.ann import ClusterIndex, kmeans
from repro.serving.ann import CoarseQuantizer
from repro.text import Vocabulary
from repro.util.rng import ensure_rng


# --------------------------------------------------------------------- #
# k-means
# --------------------------------------------------------------------- #
def test_kmeans_separates_obvious_clusters():
    rng = ensure_rng(1)
    a = rng.normal([0, 0], 0.1, (30, 2))
    b = rng.normal([10, 10], 0.1, (30, 2))
    X = np.vstack([a, b])
    centroids, assignment = kmeans(X, 2, seed=0)
    assert centroids.shape == (2, 2)
    # All of a in one cluster, all of b in the other.
    assert len(set(assignment[:30])) == 1
    assert len(set(assignment[30:])) == 1
    assert assignment[0] != assignment[30]


def test_kmeans_deterministic():
    rng = ensure_rng(2)
    X = rng.standard_normal((40, 3))
    c1, a1 = kmeans(X, 4, seed=5)
    c2, a2 = kmeans(X, 4, seed=5)
    assert np.array_equal(c1, c2) and np.array_equal(a1, a2)


def test_kmeans_k_equals_n():
    X = np.arange(6, dtype=float).reshape(3, 2)
    centroids, assignment = kmeans(X, 3, seed=0)
    assert sorted(assignment.tolist()) == [0, 1, 2]


def test_kmeans_duplicate_points():
    X = np.ones((10, 2))
    centroids, assignment = kmeans(X, 2, seed=0)
    assert np.allclose(centroids, 1.0)


def test_kmeans_validation():
    with pytest.raises(ShapeError):
        kmeans(np.zeros(5), 2)
    with pytest.raises(ShapeError):
        kmeans(np.zeros((3, 2)), 4)
    with pytest.raises(ShapeError):
        kmeans(np.zeros((3, 2)), 0)


# --------------------------------------------------------------------- #
# cluster index
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def big_model():
    rng = ensure_rng(4)
    n, k = 4000, 16
    # Documents concentrated around a handful of latent directions so
    # clustering has structure to find.
    hubs = rng.standard_normal((12, k))
    V = hubs[rng.integers(12, size=n)] + 0.15 * rng.standard_normal((n, k))
    s = np.sort(rng.random(k) + 0.5)[::-1]
    return LSIModel(
        U=np.eye(k),
        s=s,
        V=V,
        vocabulary=Vocabulary([f"t{i}" for i in range(k)]).freeze(),
        doc_ids=[f"d{j}" for j in range(n)],
    )


@pytest.fixture(scope="module")
def index(big_model):
    return ClusterIndex.build(big_model, seed=0)


def test_index_covers_all_documents(index, big_model):
    covered = np.concatenate(index.members)
    assert sorted(covered.tolist()) == list(range(big_model.n_documents))
    assert index.n_clusters == int(np.sqrt(big_model.n_documents))


def test_probe_search_scores_fraction(index, big_model):
    rng = ensure_rng(9)
    qhat = rng.standard_normal(big_model.k)
    results, scored = index.search(qhat, top=10, probes=2)
    assert len(results) == 10
    assert scored < big_model.n_documents * 0.25
    scores = [c for _, c in results]
    assert scores == sorted(scores, reverse=True)


def test_recall_improves_with_probes(index, big_model):
    rng = ensure_rng(10)
    queries = rng.standard_normal((20, big_model.k))
    recall = {
        p: float(np.mean([index.recall_at(q, top=10, probes=p) for q in queries]))
        for p in (1, 4, index.n_clusters)
    }
    assert recall[1] <= recall[4] + 1e-9
    assert recall[4] <= recall[index.n_clusters] + 1e-9
    assert recall[index.n_clusters] == pytest.approx(1.0)
    assert recall[4] > 0.6


def test_full_probe_matches_exact(index, big_model):
    rng = ensure_rng(11)
    qhat = rng.standard_normal(big_model.k)
    exact = cosine_similarities(big_model, qhat)
    true_top = np.argsort(-exact, kind="stable")[:5]
    approx, scored = index.search(qhat, top=5, probes=index.n_clusters)
    assert scored == big_model.n_documents
    assert [j for j, _ in approx] == true_top.tolist()


def test_zero_query(index):
    results, scored = index.search(np.zeros(index.model.k))
    assert results == [] and scored == 0


def test_search_validation(index):
    with pytest.raises(ShapeError):
        index.search(np.ones(3))
    with pytest.raises(ShapeError):
        index.search(np.ones(index.model.k), top=0)


def test_build_validation():
    model = LSIModel(
        np.eye(2), np.ones(2), np.zeros((0, 2)),
        Vocabulary(["a", "b"]).freeze(), [],
    )
    with pytest.raises(ShapeError):
        ClusterIndex.build(model)


def test_probes_clamp_to_n_clusters(index, big_model):
    rng = ensure_rng(12)
    qhat = rng.standard_normal(big_model.k)
    at_max, scored_max = index.search(qhat, top=10, probes=index.n_clusters)
    beyond, scored_beyond = index.search(qhat, top=10, probes=10**6)
    assert beyond == at_max
    assert scored_beyond == scored_max == big_model.n_documents


def test_top_larger_than_candidate_set(index, big_model):
    # One probed cell holds far fewer documents than this `top`; the
    # result is simply every candidate, ranked — never padding.
    rng = ensure_rng(13)
    qhat = rng.standard_normal(big_model.k)
    results, scored = index.search(
        qhat, top=big_model.n_documents, probes=1
    )
    assert 0 < len(results) == scored < big_model.n_documents
    scores = [s for _, s in results]
    assert scores == sorted(scores, reverse=True)


def test_empty_cell_probe_returns_empty():
    # Build a quantizer by hand with one empty posting list: a probe
    # that lands only there scores nothing and returns no results.
    quantizer = CoarseQuantizer(
        centroids=np.array([[1.0, 0.0], [-1.0, 0.0]]),
        cell_indptr=np.array([0, 3, 3]),  # cell 1 is empty
        cell_docs=np.array([0, 1, 2]),
    )
    coords = np.array([[1.0, 0.1], [1.0, -0.1], [0.9, 0.0]])
    norms = np.sqrt(np.sum(coords**2, axis=1))
    pairs, stats = quantizer.select(
        coords,
        norms,
        np.array([-1.0, 0.0]),  # nearest centroid is the empty cell
        probes=1,
    )
    assert pairs == []
    assert stats["candidates"] == 0


def test_quantizer_csr_validation():
    centroids = np.ones((2, 2))
    with pytest.raises(ShapeError):
        CoarseQuantizer(centroids, np.array([0, 1]), np.array([0, 1]))
    with pytest.raises(ShapeError):  # indptr not monotone
        CoarseQuantizer(centroids, np.array([0, 2, 1]), np.array([0, 1]))
    with pytest.raises(ShapeError):  # indptr[-1] != len(docs)
        CoarseQuantizer(centroids, np.array([0, 1, 3]), np.array([0, 1]))


def test_full_probe_identical_with_duplicate_rows():
    # Duplicate document vectors force exact score ties; the full-probe
    # ranking must reproduce the exhaustive scan element-for-element —
    # indices, scores, and ascending-index tie order.
    rng = ensure_rng(14)
    k, n_unique = 6, 9
    base = rng.standard_normal((n_unique, k))
    V = np.vstack([base, base[::2], base[:3]])  # rows repeat verbatim
    model = LSIModel(
        U=np.eye(k),
        s=np.sort(rng.random(k) + 0.5)[::-1],
        V=V,
        vocabulary=Vocabulary([f"t{i}" for i in range(k)]).freeze(),
        doc_ids=[f"d{j}" for j in range(V.shape[0])],
    )
    index = ClusterIndex.build(model, n_clusters=4, seed=0)
    qhat = rng.standard_normal(k)
    exact = cosine_similarities(model, qhat)
    want_order = np.argsort(-exact, kind="stable")
    pairs, scored = index.search(
        qhat, top=model.n_documents, probes=index.n_clusters
    )
    assert scored == model.n_documents
    assert [j for j, _ in pairs] == want_order.tolist()
    assert [s for _, s in pairs] == [float(exact[j]) for j in want_order]
