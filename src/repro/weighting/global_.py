"""Global weighting functions G(i) — one importance weight per term.

Each function consumes the raw-count CSC matrix and returns a length-m
vector.  The entropy weight is the paper's winner:

    G(i) = 1 + Σ_j (p_ij log₂ p_ij) / log₂ n,   p_ij = f_ij / gf_i

which is 1 for a term concentrated in a single document and → 0 for a term
spread evenly over all documents (pure noise for retrieval).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sparse.csc import CSCMatrix

__all__ = ["GLOBAL_WEIGHTS", "global_weight"]


def _doc_freq(a: CSCMatrix) -> np.ndarray:
    """Documents containing each term."""
    return np.bincount(a.indices, weights=(a.data > 0).astype(np.float64),
                       minlength=a.shape[0])


def _none(a: CSCMatrix) -> np.ndarray:
    """G = 1 (no global weighting)."""
    return np.ones(a.shape[0])


def _idf(a: CSCMatrix) -> np.ndarray:
    """G = log₂(n / df) + 1, with unused terms getting weight 1."""
    m, n = a.shape
    df = _doc_freq(a)
    out = np.ones(m)
    used = df > 0
    out[used] = np.log2(n / df[used]) + 1.0
    return out


def _entropy(a: CSCMatrix) -> np.ndarray:
    """Entropy weight: 1 + Σ_j p log₂ p / log₂ n (see module docstring)."""
    m, n = a.shape
    if n <= 1:
        return np.ones(m)
    gf = a.row_sums()  # global frequency of each term
    safe_gf = np.where(gf > 0, gf, 1.0)
    p = a.data / safe_gf[a.indices]
    with np.errstate(divide="ignore", invalid="ignore"):
        plogp = np.where(p > 0, p * np.log2(p), 0.0)
    ent = np.bincount(a.indices, weights=plogp, minlength=m)  # Σ p log p ≤ 0
    return 1.0 + ent / np.log2(n)


def _gfidf(a: CSCMatrix) -> np.ndarray:
    """G = gf / df — global frequency over document frequency."""
    gf = a.row_sums()
    df = _doc_freq(a)
    return np.where(df > 0, gf / np.where(df > 0, df, 1.0), 1.0)


def _normal(a: CSCMatrix) -> np.ndarray:
    """G = 1 / ‖row‖₂ — normalizes each term row to unit length."""
    sq = np.bincount(a.indices, weights=a.data**2, minlength=a.shape[0])
    return np.where(sq > 0, 1.0 / np.sqrt(np.where(sq > 0, sq, 1.0)), 1.0)


GLOBAL_WEIGHTS: dict[str, Callable[[CSCMatrix], np.ndarray]] = {
    "none": _none,
    "idf": _idf,
    "entropy": _entropy,
    "gfidf": _gfidf,
    "normal": _normal,
}


def global_weight(name: str, a: CSCMatrix) -> np.ndarray:
    """Compute the named global weight vector from raw counts."""
    try:
        fn = GLOBAL_WEIGHTS[name]
    except KeyError:
        raise ValueError(
            f"unknown global weight {name!r}; choose from {sorted(GLOBAL_WEIGHTS)}"
        ) from None
    return fn(a)
