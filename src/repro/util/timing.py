"""Lightweight wall-clock instrumentation for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "PerfCounters", "serving_counters", "format_seconds"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("svd"):
    ...     pass
    >>> "svd" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        def __init__(self, owner: "Stopwatch", name: str):
            self._owner = owner
            self._name = name
            self._t0 = 0.0

        def __enter__(self) -> "Stopwatch._Lap":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            elapsed = time.perf_counter() - self._t0
            self._owner.laps[self._name] = self._owner.laps.get(self._name, 0.0) + elapsed

    def lap(self, name: str) -> "Stopwatch._Lap":
        """Context manager that adds elapsed time to the named lap."""
        return Stopwatch._Lap(self, name)

    def total(self) -> float:
        """Sum of all laps, in seconds."""
        return sum(self.laps.values())

    def report(self) -> str:
        """Human-readable one-line-per-lap summary, slowest first."""
        rows = sorted(self.laps.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{name:>24s}  {format_seconds(t)}" for name, t in rows)


@dataclass
class PerfCounters:
    """Named event counters plus accumulating timers for hot paths.

    The serving layer increments these on every query (see
    :data:`serving_counters`); benchmarks snapshot and reset them to
    report cache-hit rates and where query time goes.  Overhead per
    event is one dict update (counters) or two ``perf_counter`` calls
    (timers) — negligible against a GEMM over thousands of documents.
    """

    counts: dict[str, int] = field(default_factory=dict)
    timers: dict[str, float] = field(default_factory=dict)

    def incr(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (created at 0)."""
        self.counts[name] = self.counts.get(name, 0) + by

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named timer."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    class _Timer:
        def __init__(self, owner: "PerfCounters", name: str):
            self._owner = owner
            self._name = name
            self._t0 = 0.0

        def __enter__(self) -> "PerfCounters._Timer":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self._owner.add_time(self._name, time.perf_counter() - self._t0)

    def time(self, name: str) -> "PerfCounters._Timer":
        """Context manager accumulating elapsed time into ``name``."""
        return PerfCounters._Timer(self, name)

    def snapshot(self) -> dict[str, float]:
        """One flat dict of all counters and timers (copies)."""
        out: dict[str, float] = dict(self.counts)
        out.update(self.timers)
        return out

    def reset(self) -> None:
        """Zero every counter and timer."""
        self.counts.clear()
        self.timers.clear()

    def report(self) -> str:
        """Human-readable summary: counters first, then timers."""
        lines = [f"{name:>24s}  {val}" for name, val in sorted(self.counts.items())]
        lines += [
            f"{name:>24s}  {format_seconds(t)}"
            for name, t in sorted(self.timers.items())
        ]
        return "\n".join(lines)


#: Process-wide counters for the query-serving fast path.  The serving
#: layer records ``queries_served`` / ``batch_queries_served``, query-
#: vector cache ``query_cache_hits`` / ``query_cache_misses``, index
#: ``index_builds``, and the ``gemm_seconds`` / ``topk_seconds`` timers.
serving_counters = PerfCounters()


def format_seconds(t: float) -> str:
    """Render a duration with a unit that keeps 3 significant digits."""
    if t < 1e-6:
        return f"{t * 1e9:.1f} ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    return f"{t:.3f} s"
