"""The TOEFL synonym test (§5.4, Modeling Human Memory).

"They used the synonym test from ETS's Test Of English as a Foreign
Language (TOEFL).  The test consists of 80 multiple choice test items each
with a stem word and four alternatives ... they simply computed the
similarity of the stem word to each alternative and picked the closest
one as the synonym ...  Using this method LSI scored 64% correct, compared
with 33% correct for word-overlap methods, and 64% correct for the
average student taking the test."

Two solvers are provided: the LSI term-vector method and the word-overlap
baseline (alternatives scored by the number of documents in which they
co-occur with the stem — which is exactly what synonyms, by construction
and by nature, rarely do).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import LSIModel
from repro.core.similarity import term_term_similarities
from repro.corpus.synonym_test import SynonymTest
from repro.text.tdm import TermDocumentMatrix

__all__ = ["SynonymTestResult", "run_synonym_test", "word_overlap_baseline"]


@dataclass(frozen=True)
class SynonymTestResult:
    """Score sheet of one solver on one item bank."""

    solver: str
    n_items: int
    n_correct: int
    choices: tuple[int, ...]  # chosen alternative per item

    @property
    def accuracy(self) -> float:
        """Fraction of items answered correctly."""
        return self.n_correct / self.n_items if self.n_items else 0.0

    def __str__(self) -> str:
        return (
            f"{self.solver}: {self.n_correct}/{self.n_items} "
            f"({100 * self.accuracy:.0f}% correct)"
        )


def run_synonym_test(model: LSIModel, test: SynonymTest) -> SynonymTestResult:
    """Answer each item by the nearest term vector (the paper's method)."""
    choices = []
    correct = 0
    for item in test.items:
        if item.stem not in model.vocabulary:
            # Stem never made it into the indexed corpus: the test-taker
            # has zero information; deterministically pick alternative 0.
            choices.append(0)
            correct += item.answer == 0
            continue
        sims = term_term_similarities(model, item.stem)
        scores = []
        for alt in item.alternatives:
            idx = model.vocabulary.get(alt)
            scores.append(sims[idx] if idx is not None else -np.inf)
        pick = int(np.argmax(scores))
        choices.append(pick)
        if pick == item.answer:
            correct += 1
    return SynonymTestResult("lsi", len(test.items), correct, tuple(choices))


def word_overlap_baseline(
    tdm: TermDocumentMatrix, test: SynonymTest
) -> SynonymTestResult:
    """Answer each item by document co-occurrence counts.

    The stem and each alternative are compared by the number of documents
    containing both (ties broken toward the first alternative, matching a
    deterministic test-taker guessing on zero information).
    """
    dense = tdm.matrix.to_dense() > 0  # (m, n) incidence
    choices = []
    correct = 0
    for item in test.items:
        stem_idx = tdm.vocabulary.get(item.stem)
        stem_rows = (
            dense[stem_idx] if stem_idx is not None else np.zeros(dense.shape[1], bool)
        )
        scores = []
        for alt in item.alternatives:
            idx = tdm.vocabulary.get(alt)
            if idx is None:
                scores.append(-1)
                continue
            scores.append(int(np.sum(stem_rows & dense[idx])))
        pick = int(np.argmax(scores))
        choices.append(pick)
        if pick == item.answer:
            correct += 1
    return SynonymTestResult(
        "word-overlap", len(test.items), correct, tuple(choices)
    )
