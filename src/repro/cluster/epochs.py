"""Epoch handles: one immutable view of one sealed checkpoint.

The writable cluster changes state by *replacing* a single reference,
never by mutating shared structures — the same discipline
:class:`repro.server.state.EpochSnapshot` uses in-process.  An
:class:`EpochHandle` bundles everything the front end needs to answer
one query consistently — the projection model, the checkpoint identity,
and the :class:`~repro.cluster.plan.ShardPlan` that scatter must use —
so a request that snapshots the handle at entry keeps scoring against
one epoch even while the primary writer seals, bumps, and publishes the
next one.  Workers hold the same invariant on their side: the scoring
state for the superseded epoch stays alive until the bump *after* the
one that replaced it, so in-flight queries land on matching state and
zero queries drop across a bump.

Epoch numbering is the store's WAL LSN at seal time (see
``DurableIndexStore.checkpoint``): strictly increasing with every
acknowledged write, equal across bit-identical recoveries.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from repro.cluster.placement import ReplicaPlan
from repro.core.model import LSIModel
from repro.errors import StoreError
from repro.store.checkpoint import latest_valid_checkpoint
from repro.store.mmap_io import open_checkpoint_ann, open_checkpoint_model

__all__ = ["EpochHandle", "handle_for_checkpoint", "latest_handle"]


@dataclass(frozen=True)
class EpochHandle:
    """Everything one request needs from one epoch, immutably.

    ``model`` is the memory-mapped checkpoint model (vocabulary, ``U``,
    ``Σ`` for query projection; ``doc_ids`` for result labelling),
    ``ann`` records whether the checkpoint carries a trained coarse
    quantizer, and ``plan`` is the shard plan pinned against exactly
    this checkpoint — scattering with any other plan would mix epochs.
    """

    epoch: int
    checkpoint: str
    model: LSIModel
    ann: bool
    plan: ReplicaPlan

    @property
    def n_documents(self) -> int:
        """Documents this epoch serves."""
        return self.model.n_documents


def handle_for_checkpoint(
    path: pathlib.Path,
    meta: dict,
    n_workers: int,
    *,
    replication: int = 1,
) -> EpochHandle:
    """Build the handle for one checkpoint directory.

    ``meta`` is the checkpoint manifest's ``meta`` block (the caller
    already has it from checkpoint discovery or a fresh seal); the model
    is memory-mapped, so this is O(header) and safe to run on the
    writer's bump path.  ``n_workers`` is the worker *budget*;
    ``replication`` carves it into ``n_workers // replication`` ranges
    with R replicas each (at the default R=1 the plan is the classic
    one-worker-per-shard layout).
    """
    epoch = int(meta.get("epoch", 0))
    model = open_checkpoint_model(path, mmap=True)
    ann = open_checkpoint_ann(path, mmap=True) is not None
    plan = ReplicaPlan.compute(
        model.n_documents,
        n_workers,
        replication,
        epoch=epoch,
        checkpoint=path.name,
    )
    return EpochHandle(
        epoch=epoch,
        checkpoint=path.name,
        model=model,
        ann=ann,
        plan=plan,
    )


def latest_handle(
    data_dir: pathlib.Path, n_workers: int, *, replication: int = 1
) -> EpochHandle:
    """The handle for the newest valid checkpoint under ``data_dir``."""
    from repro.store.durable import STORE_LAYOUT

    checkpoints = pathlib.Path(data_dir) / STORE_LAYOUT["checkpoints"]
    info, problems = latest_valid_checkpoint(checkpoints)
    if info is None:
        detail = f" ({'; '.join(problems)})" if problems else ""
        raise StoreError(f"no valid checkpoint under {checkpoints}{detail}")
    return handle_for_checkpoint(
        info.path,
        info.manifest.get("meta", {}),
        n_workers,
        replication=replication,
    )
