"""SVD-updating (paper §4.2): exact small-SVD updates of the rank-k model.

All three phases share one pattern: express the updated matrix in the
bases ``U_k``/``V_k`` (suitably extended with identity blocks), compute
the SVD of a *small dense* core, and rotate the old singular vectors by
the core's singular vectors.

Updating documents (Eq. 10, B = (A_k | D)):
    ``F = (Σ_k | U_kᵀ D)``, SVD(F) = U_F Σ_F V_Fᵀ, then
    ``U_B = U_k U_F``, ``V_B = diag(V_k, I_p) V_F``, ``Σ_B = Σ_F``.

Updating terms (Eq. 11, C = [A_k ; T]):
    ``H = [Σ_k ; T V_k]``, SVD(H) = U_H Σ_H V_Hᵀ, then
    ``U_C = diag(U_k, I_q) U_H``, ``V_C = V_k V_H``, ``Σ_C = Σ_H``.

Correcting term weights (Eq. 12, W = A_k + Y_j Z_jᵀ):
    ``Q = Σ_k + (U_kᵀ Y_j)(Z_jᵀ V_k)``, SVD(Q) = U_Q Σ_Q V_Qᵀ, then
    ``U_W = U_k U_Q``, ``V_W = V_k V_Q``.

Unlike folding-in, every phase yields exactly orthonormal factors (the
rotations are orthonormal by construction), so ``‖UᵀU − I‖₂`` stays at
rounding level — the §4.3 distinction the orthogonality benches measure.

Exactness caveat (faithful to the paper)
----------------------------------------
The printed identities express the update in the *retained* bases only:
``F = (Σ_k | U_kᵀD)`` discards the component of ``D`` orthogonal to
``span(U_k)``, so the produced triplets are those of the projection of
``B`` — a (usually excellent) approximation whose singular values never
exceed the true ones.  Each update function also offers ``exact=True``,
which augments the basis with an orthonormal factor of the residual
``(I − U_kU_kᵀ)D`` (the later Zha-Simon construction) and recovers the
true rank-k SVD of ``B`` — implemented here as the natural extension the
paper's §4.3 "future research" paragraph points toward.

The correction-step identity is likewise exact when the update directions
lie in the retained subspaces (e.g. re-weighting rows of ``A_k`` itself);
for general ``Y``/``Z`` it is the paper's rank-k approximation, with the
same ``exact=True`` escape hatch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.linalg.jacobi_svd import jacobi_svd
from repro.obs.metrics import registry
from repro.obs.tracing import span
from repro.serving.index import invalidate_model
from repro.updating.folding import _weight_columns
from repro.weighting.local import NEEDS_COL_MAX, local_weight

__all__ = ["update_documents", "update_terms", "update_weights"]

#: Residual columns with norm below this (relative to the block) are
#: treated as lying inside the retained subspace.
_RESIDUAL_TOL = 1e-10


def _range_basis(X: np.ndarray, scale: float) -> tuple[np.ndarray, np.ndarray]:
    """Orthonormal basis of ``range(X)`` with coefficients: ``X = Q R``.

    Rank-revealing (components below ``_RESIDUAL_TOL · scale`` are
    dropped) and shape-agnostic — unlike plain QR it handles wide
    residual blocks, which arise when more items are appended than the
    space has dimensions.
    """
    if X.size == 0 or X.shape[1] == 0:
        return np.zeros((X.shape[0], 0)), np.zeros((0, X.shape[1]))
    U, s, V = jacobi_svd(X)
    keep = s > _RESIDUAL_TOL * max(scale, 1.0)
    Q = U[:, keep]
    R = s[keep, None] * V[:, keep].T
    return Q, R


def update_documents(
    model: LSIModel,
    counts: np.ndarray,
    doc_ids: Sequence[str],
    *,
    exact: bool = False,
) -> LSIModel:
    """SVD-update with ``p`` new document columns (raw counts).

    Implements Eq. 10: the k-largest singular triplets of
    ``B = (A_k | D)`` where ``D`` is the weighted new-document block.
    With ``exact=True`` the residual of ``D`` outside ``span(U_k)`` is
    retained (see module docstring), making the result the true rank-k
    SVD of ``B``.
    """
    with span("lsi.update.documents", exact=exact) as sp:
        D = _weight_columns(model, counts)  # (m, p) weighted
        p = D.shape[1]
        sp.set_attr("p", p)
        if len(doc_ids) != p:
            raise ShapeError(f"{len(doc_ids)} ids for {p} documents")
        # The update supersedes the source model: invalidate its cached
        # serving index (repro.serving.index invalidation contract).
        invalidate_model(model)
        registry.inc("updating.updated_documents", p)
        k = model.k
        Dhat = model.U.T @ D  # (k, p)
        if exact:
            resid = D - model.U @ Dhat
            Qr, Rr = _range_basis(resid, np.sqrt(np.sum(D * D)))
            r = Qr.shape[1]
            # K = [[Σ_k, D̂], [0, R_r]], (k+r) × (k+p).
            K = np.zeros((k + r, k + p))
            K[:k, :k] = np.diag(model.s)
            K[:k, k:] = Dhat
            K[k:, k:] = Rr
            UK, sK, VK = jacobi_svd(K)
            UK, sK, VK = UK[:, :k], sK[:k], VK[:, :k]
            U_new = model.U @ UK[:k, :] + Qr @ UK[k:, :]
            V_new = np.vstack([model.V @ VK[:k, :], VK[k:, :]])
            return LSIModel(
                U=U_new,
                s=sK,
                V=V_new,
                vocabulary=model.vocabulary,
                doc_ids=model.doc_ids + list(doc_ids),
                scheme=model.scheme,
                global_weights=model.global_weights,
                provenance="svd-update",
            )
        # F = (Σ_k | U_kᵀ D), k × (k+p) — the paper's printed construction.
        F = np.hstack([np.diag(model.s), Dhat])
        UF, sF, VF = jacobi_svd(F)  # rank ≤ k, so exactly k triplets
        UF, sF, VF = UF[:, :k], sF[:k], VF[:, :k]
        U_new = model.U @ UF
        # V_B = diag(V_k, I_p) V_F: top n rows rotate V_k, bottom p rows are
        # V_F's tail block verbatim.
        V_new = np.vstack([model.V @ VF[:k, :], VF[k:, :]])
        return LSIModel(
            U=U_new,
            s=sF,
            V=V_new,
            vocabulary=model.vocabulary,
            doc_ids=model.doc_ids + list(doc_ids),
            scheme=model.scheme,
            global_weights=model.global_weights,
            provenance="svd-update",
        )


def update_terms(
    model: LSIModel,
    counts: np.ndarray,
    terms: Sequence[str],
    global_weights: np.ndarray | None = None,
    *,
    exact: bool = False,
) -> LSIModel:
    """SVD-update with ``q`` new term rows (raw counts over n documents).

    Implements Eq. 11: the k-largest singular triplets of
    ``C = [A_k ; T]``.  With ``exact=True`` the residual of ``Tᵀ``
    outside ``span(V_k)`` is retained, making the result the true rank-k
    SVD of ``C``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim == 1:
        counts = counts[None, :]
    q, n = counts.shape
    if n != model.n_documents:
        raise ShapeError(f"term block has {n} columns for n={n}")
    if len(terms) != q:
        raise ShapeError(f"{len(terms)} names for {q} terms")
    invalidate_model(model)
    with span("lsi.update.terms", q=q, exact=exact):
        registry.inc("updating.updated_terms", q)
        if model.scheme.local in NEEDS_COL_MAX:
            cmax = np.maximum(counts.max(axis=1, keepdims=True), 1.0)
            T = local_weight(
                model.scheme.local, counts, np.broadcast_to(cmax, counts.shape)
            )
        else:
            T = local_weight(model.scheme.local, counts)
        if global_weights is not None:
            gw = np.asarray(global_weights, dtype=np.float64).ravel()
            if gw.size != q:
                raise ShapeError("global_weights must have one entry per term")
            T = T * gw[:, None]
        else:
            gw = np.ones(q)
        k = model.k
        That = T @ model.V  # (q, k)
        if exact:
            resid = T.T - model.V @ That.T  # (n, q)
            Qr, Rr = _range_basis(resid, np.sqrt(np.sum(T * T)))
            r = Qr.shape[1]
            # K = [[Σ_k, 0], [T V_k, R_rᵀ]], (k+q) × (k+r).
            K = np.zeros((k + q, k + r))
            K[:k, :k] = np.diag(model.s)
            K[k:, :k] = That
            K[k:, k:] = Rr.T
            UK, sK, VK = jacobi_svd(K)
            UK, sK, VK = UK[:, :k], sK[:k], VK[:, :k]
            U_new = np.vstack([model.U @ UK[:k, :], UK[k:, :]])
            V_new = model.V @ VK[:k, :] + Qr @ VK[k:, :]
        else:
            # H = [Σ_k ; T V_k], (k+q) × k — the paper's printed construction.
            H = np.vstack([np.diag(model.s), That])
            UH, sH, VH = jacobi_svd(H)
            UH, sK, VH = UH[:, :k], sH[:k], VH[:, :k]
            U_new = np.vstack([model.U @ UH[:k, :], UH[k:, :]])
            V_new = model.V @ VH
        vocab = model.vocabulary.copy()
        for t in terms:
            if t in vocab:
                raise ShapeError(f"term {t!r} already present")
            vocab.add(t)
        return LSIModel(
            U=U_new,
            s=sK,
            V=V_new,
            vocabulary=vocab.freeze(),
            doc_ids=list(model.doc_ids),
            scheme=model.scheme,
            global_weights=np.concatenate([model.global_weights, gw]),
            provenance="svd-update",
        )


def update_weights(
    model: LSIModel,
    Y: np.ndarray,
    Z: np.ndarray,
    *,
    exact: bool = False,
) -> LSIModel:
    """SVD-update for changed term weights (Eq. 12): ``W = A_k + Y Zᵀ``.

    ``Y (m, j)`` selects the re-weighted term rows, ``Z (n, j)`` holds the
    old-to-new weight differences (see
    :func:`repro.weighting.correction.weight_correction_blocks`).  With
    ``exact=True`` the components of ``Y`` and ``Z`` outside the retained
    subspaces are kept via residual QR factors, giving the true rank-k SVD
    of ``W``.
    """
    Y = np.asarray(Y, dtype=np.float64)
    Z = np.asarray(Z, dtype=np.float64)
    if Y.ndim != 2 or Y.shape[0] != model.n_terms:
        raise ShapeError(f"Y must be (m, j), got {Y.shape}")
    if Z.ndim != 2 or Z.shape[0] != model.n_documents:
        raise ShapeError(f"Z must be (n, j), got {Z.shape}")
    if Y.shape[1] != Z.shape[1]:
        raise ShapeError(
            f"Y and Z must agree on j: {Y.shape[1]} vs {Z.shape[1]}"
        )
    invalidate_model(model)
    with span("lsi.update.weights", j=Y.shape[1], exact=exact):
        registry.inc("updating.weight_corrections", Y.shape[1])
        k = model.k
        Yhat = model.U.T @ Y  # (k, j)
        Zhat = model.V.T @ Z  # (k, j)
        if exact and Y.shape[1] > 0:
            Qy, Ry = _range_basis(Y - model.U @ Yhat, np.sqrt(np.sum(Y * Y)))
            Qz, Rz = _range_basis(Z - model.V @ Zhat, np.sqrt(np.sum(Z * Z)))
            ry, rz = Qy.shape[1], Qz.shape[1]
            # W = [U_k Q_y] K [V_k Q_z]ᵀ with the 2×2 block core below.
            K = np.zeros((k + ry, k + rz))
            K[:k, :k] = np.diag(model.s) + Yhat @ Zhat.T
            K[:k, k:] = Yhat @ Rz.T
            K[k:, :k] = Ry @ Zhat.T
            K[k:, k:] = Ry @ Rz.T
            UK, sK, VK = jacobi_svd(K)
            UK, sK, VK = UK[:, :k], sK[:k], VK[:, :k]
            return LSIModel(
                U=model.U @ UK[:k, :] + Qy @ UK[k:, :],
                s=sK,
                V=model.V @ VK[:k, :] + Qz @ VK[k:, :],
                vocabulary=model.vocabulary,
                doc_ids=list(model.doc_ids),
                scheme=model.scheme,
                global_weights=model.global_weights,
                provenance="svd-update",
            )
        Q = np.diag(model.s) + Yhat @ Zhat.T
        UQ, sQ, VQ = jacobi_svd(Q)
        UQ, sQ, VQ = UQ[:, :k], sQ[:k], VQ[:, :k]
        return LSIModel(
            U=model.U @ UQ,
            s=sQ,
            V=model.V @ VQ,
            vocabulary=model.vocabulary,
            doc_ids=list(model.doc_ids),
            scheme=model.scheme,
            global_weights=model.global_weights,
            provenance="svd-update",
        )
