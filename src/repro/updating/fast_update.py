"""Fast (projection-based) SVD-updating of the rank-k model.

Implements the document-update variant of Vecharynski & Saad, *Fast
updating algorithms for latent semantic indexing* (see PAPERS.md): the
exact Zha-Simon update (:func:`repro.updating.svd_update.
update_documents` with ``exact=True``) must orthonormalize the full
residual ``R = (I − U_k U_kᵀ) D`` — an ``m × p`` factorization whose
cost dominates sustained ingest — before solving the small core SVD.
The fast update replaces that residual basis with a *much smaller*
one: a rank-``l`` (``l ≪ p``) orthonormal basis ``X`` of the dominant
left singular directions of ``R``, computed by a seeded randomized
range finder (Gaussian sketch + power iteration).  The updated factors
are then found by a Rayleigh-Ritz projection onto ``span([U_k, X])``::

    B = (A_k | D) ≈ [U_k X] K [V_k ⊕ I_p]ᵀ,
    K = [[Σ_k, U_kᵀD], [0, XᵀR]]          ((k+l) × (k+p))

whose SVD rotates the old factors exactly as in Eq. 10.  Because
``X ⊂ range(R) ⟂ span(U_k)``, the produced ``U`` and ``V`` are
orthonormal to rounding — the update inherits the §4.3 drift behaviour
of the exact update, not of folding-in — while the per-batch cost
drops from the exact update's ``O(m p²)`` residual factorization to
``O(m p l)`` sketch products.  When ``l ≥ rank(R)`` the sketch spans
the whole residual and the result coincides with the exact update.

Determinism: the Gaussian sketch is seeded from ``(seed, n_documents,
p)``, so replaying the same batch against the same model reproduces
bit-identical factors — the property the store's WAL recovery relies
on when the cluster's primary writer ingests through this kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.linalg.jacobi_svd import jacobi_svd
from repro.obs.metrics import registry
from repro.obs.tracing import span
from repro.serving.index import invalidate_model
from repro.updating.folding import _weight_columns

__all__ = ["fast_update_documents"]

#: Sketch directions with singular value below this (relative to the
#: block norm) carry no residual mass and are dropped.
_SKETCH_TOL = 1e-10

#: Default sketch rank: enough for the low-dimensional residual energy
#: of topical text batches, tiny next to typical batch sizes.
DEFAULT_SKETCH_RANK = 8


def _orthonormal_columns(Y: np.ndarray, scale: float) -> np.ndarray:
    """An orthonormal basis of ``range(Y)``, rank-revealing.

    Columns whose singular value falls below ``_SKETCH_TOL · scale``
    are dropped — they are rounding noise, and keeping them would
    reintroduce components of ``span(U_k)`` into the residual basis.
    """
    if Y.size == 0 or Y.shape[1] == 0:
        return np.zeros((Y.shape[0], 0))
    U, s, _V = jacobi_svd(Y)
    return U[:, s > _SKETCH_TOL * max(scale, 1.0)]


def _residual_basis(
    R: np.ndarray,
    U: np.ndarray,
    rank: int,
    *,
    power_iters: int,
    scale: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Rank-``rank`` orthonormal sketch of ``range(R)``, kept ``⟂ U``.

    Halko-style randomized range finder: ``Y = R Ω`` with a Gaussian
    ``Ω``, sharpened by ``power_iters`` rounds of ``R Rᵀ`` to bias the
    basis toward the residual's dominant directions.  The final
    re-projection against ``U`` removes any retained-subspace component
    rounding re-introduced, so ``[U, X]`` stays orthonormal.
    """
    p = R.shape[1]
    l = min(rank, p, R.shape[0])
    if l <= 0 or np.sqrt(np.sum(R * R)) <= _SKETCH_TOL * max(scale, 1.0):
        return np.zeros((R.shape[0], 0))
    Y = R @ rng.standard_normal((p, l))
    for _ in range(max(0, power_iters)):
        Q = _orthonormal_columns(Y, scale)
        if Q.shape[1] == 0:
            return Q
        Y = R @ (R.T @ Q)
    X = _orthonormal_columns(Y, scale)
    if X.shape[1]:
        X = X - U @ (U.T @ X)
        X = _orthonormal_columns(X, scale)
    return X


def fast_update_documents(
    model: LSIModel,
    counts: np.ndarray,
    doc_ids: Sequence[str],
    *,
    rank: int = DEFAULT_SKETCH_RANK,
    power_iters: int = 1,
    seed: int = 0,
) -> LSIModel:
    """Rayleigh-Ritz fast update with ``p`` new document columns.

    Approximates the rank-k SVD of ``B = (A_k | D)`` (Eq. 10's target)
    through a rank-``rank`` sketch of the residual ``(I − U_kU_kᵀ)D``
    instead of its full orthonormal factor — the Vecharynski-Saad
    construction (module docstring).  Factors come back orthonormal to
    rounding; ``rank ≥ rank(residual)`` reproduces the exact update.
    """
    with span("lsi.update.fast_documents", rank=rank) as sp:
        D = _weight_columns(model, counts)  # (m, p) weighted
        p = D.shape[1]
        sp.set_attr("p", p)
        if len(doc_ids) != p:
            raise ShapeError(f"{len(doc_ids)} ids for {p} documents")
        if rank < 1:
            raise ShapeError(f"sketch rank must be >= 1, got {rank}")
        # The update supersedes the source model: invalidate its cached
        # serving index (repro.serving.index invalidation contract).
        invalidate_model(model)
        registry.inc("updating.fast_updated_documents", p)
        k = model.k
        Dhat = model.U.T @ D  # (k, p)
        R = D - model.U @ Dhat  # residual, ⟂ span(U_k)
        scale = np.sqrt(np.sum(D * D))
        rng = np.random.default_rng(
            [int(seed) & 0x7FFFFFFF, model.n_documents, p]
        )
        X = _residual_basis(
            R, model.U, rank, power_iters=power_iters, scale=scale, rng=rng
        )
        l = X.shape[1]
        sp.set_attr("sketch_rank", l)
        # K = [[Σ_k, D̂], [0, XᵀR]], (k+l) × (k+p) — the projected core.
        K = np.zeros((k + l, k + p))
        K[:k, :k] = np.diag(model.s)
        K[:k, k:] = Dhat
        if l:
            K[k:, k:] = X.T @ R
        UK, sK, VK = jacobi_svd(K)
        UK, sK, VK = UK[:, :k], sK[:k], VK[:, :k]
        U_new = model.U @ UK[:k, :]
        if l:
            U_new = U_new + X @ UK[k:, :]
        # V_B = (V_k ⊕ I_p) V_K: top rows rotate V_k, bottom p rows are
        # V_K's tail block verbatim — identical structure to Eq. 10.
        V_new = np.vstack([model.V @ VK[:k, :], VK[k:, :]])
        return LSIModel(
            U=U_new,
            s=sK,
            V=V_new,
            vocabulary=model.vocabulary,
            doc_ids=model.doc_ids + list(doc_ids),
            scheme=model.scheme,
            global_weights=model.global_weights,
            provenance="fast-update",
        )
