"""Property-based tests for the sparse substrate (hypothesis).

The invariants: every format round-trips through dense unchanged; the
matvec/matmat kernels agree with the dense reference on arbitrary
matrices including pathological sparsity patterns (empty rows/columns,
duplicate assembly coordinates).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import COOMatrix, from_dense


@st.composite
def sparse_dense_pair(draw, max_dim=12):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    values = draw(
        arrays(
            np.float64,
            (m, n),
            elements=st.floats(-10, 10, allow_nan=False, width=64),
        )
    )
    mask = draw(
        arrays(np.bool_, (m, n), elements=st.booleans())
    )
    return values * mask


@given(sparse_dense_pair())
@settings(max_examples=60, deadline=None)
def test_roundtrip_all_formats(dense):
    coo = from_dense(dense)
    assert np.array_equal(coo.to_dense(), coo.to_csr().to_dense())
    assert np.array_equal(coo.to_dense(), coo.to_csc().to_dense())
    # from_dense drops exact zeros only; stored values match the source.
    assert np.array_equal(coo.to_dense(), dense * (dense != 0))


@given(sparse_dense_pair(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_matvec_matches_dense(dense, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(dense.shape[1])
    y = rng.standard_normal(dense.shape[0])
    csr = from_dense(dense).to_csr()
    csc = from_dense(dense).to_csc()
    assert np.allclose(csr.matvec(x), dense @ x, atol=1e-9)
    assert np.allclose(csc.matvec(x), dense @ x, atol=1e-9)
    assert np.allclose(csr.rmatvec(y), dense.T @ y, atol=1e-9)
    assert np.allclose(csc.rmatvec(y), dense.T @ y, atol=1e-9)


@given(sparse_dense_pair(), st.integers(1, 7), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_matmat_matches_dense(dense, k, seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((dense.shape[1], k))
    csr = from_dense(dense).to_csr()
    csc = from_dense(dense).to_csc()
    assert np.allclose(csr.matmat(X), dense @ X, atol=1e-9)
    assert np.allclose(csc.matmat(X), dense @ X, atol=1e-9)


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.floats(-5, 5, allow_nan=False)),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_duplicate_assembly_matches_scatter_add(triples):
    ref = np.zeros((6, 6))
    for i, j, v in triples:
        ref[i, j] += v
    rows = [t[0] for t in triples]
    cols = [t[1] for t in triples]
    vals = [t[2] for t in triples]
    coo = COOMatrix((6, 6), rows, cols, vals)
    assert np.allclose(coo.to_dense(), ref, atol=1e-12)


@given(sparse_dense_pair())
@settings(max_examples=40, deadline=None)
def test_transpose_involution(dense):
    csr = from_dense(dense).to_csr()
    assert np.array_equal(csr.T.T.to_dense(), csr.to_dense())
    csc = from_dense(dense).to_csc()
    assert np.array_equal(csc.T.T.to_dense(), csc.to_dense())
