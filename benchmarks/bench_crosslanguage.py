"""§5.4 (Cross-Language Retrieval) — the Landauer & Littman method.

Regenerates: combined-abstract training, monolingual fold-in, and the
two headline results — mate retrieval across languages, and cross-
language retrieval "as effective as first translating the queries ...
and searching a French-only database" (here: as effective as the
monolingual run).  Times the full train+fold pipeline.
"""

from conftest import emit
from repro.apps import CrossLanguageRetrieval, mate_retrieval_accuracy
from repro.corpus import crosslang_collection
from repro.evaluation import evaluate_run, run_engine
from repro.retrieval import LSIRetrieval


def test_crosslanguage_mate_retrieval(benchmark):
    xl = crosslang_collection(seed=13)

    clr = benchmark(CrossLanguageRetrieval.train, xl, 24, seed=0)

    fr_ids = [f"fr{i}" for i in range(len(xl.french))]
    en_ids = [f"en{i}" for i in range(len(xl.english))]
    acc_en_fr = mate_retrieval_accuracy(
        clr, xl.english, fr_ids, target_language="fr"
    )
    acc_fr_en = mate_retrieval_accuracy(
        clr, xl.french, en_ids, target_language="en"
    )

    # Monolingual baseline: English-only space, English queries.
    mono = xl.monolingual_collection("en")
    mono_eng = LSIRetrieval.from_texts(
        mono.documents, k=24, scheme="log_entropy", seed=0
    )
    mono_eval = evaluate_run(run_engine(mono_eng, mono), mono)

    # Cross-language retrieval: French queries against English documents
    # in the multilingual space, scored with the English judgments.
    hits = 0
    for qi, q in enumerate(xl.queries_fr):
        ranked = clr.search(q, language="en", top=5)
        topics = {xl.doc_topic[int(h[2:])] for h, _ in ranked}
        hits += xl.query_topic[qi] in topics
    cross_hit_rate = hits / len(xl.queries_fr)

    rows = [
        f"mate retrieval EN→FR: {acc_en_fr:.2f}",
        f"mate retrieval FR→EN: {acc_fr_en:.2f}",
        f"FR queries → EN docs, correct topic in top-5: {cross_hit_rate:.2f}",
        f"monolingual EN space (baseline 3-pt avg prec): "
        f"{mono_eval['mean_metric']:.3f}",
        "paper: multilingual space ≥ single-language spaces; no "
        "translation involved",
    ]
    emit("§5.4 — cross-language retrieval", rows)

    assert acc_en_fr > 0.8 and acc_fr_en > 0.8
    assert cross_hit_rate > 0.8
