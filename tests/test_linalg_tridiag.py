"""Tests for the implicit-QL tridiagonal eigensolver."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import tridiag_eigh


def _dense_tridiag(d, e):
    n = len(d)
    T = np.diag(d).astype(float)
    if n > 1:
        T += np.diag(e, 1) + np.diag(e, -1)
    return T


@pytest.mark.parametrize("n", [1, 2, 3, 8, 25])
def test_eigenpairs_satisfy_definition(n, rng):
    d = rng.standard_normal(n)
    e = rng.standard_normal(max(n - 1, 0))
    T = _dense_tridiag(d, e)
    w, Z = tridiag_eigh(d, e)
    assert np.allclose(T @ Z, Z * w, atol=1e-8)
    assert np.allclose(Z.T @ Z, np.eye(n), atol=1e-8)
    assert np.all(np.diff(w) >= -1e-12)  # ascending


def test_matches_numpy_eigvalsh(rng):
    d = rng.standard_normal(15)
    e = rng.standard_normal(14)
    w, _ = tridiag_eigh(d, e)
    assert np.allclose(w, np.linalg.eigvalsh(_dense_tridiag(d, e)), atol=1e-9)


def test_diagonal_matrix():
    d = np.array([3.0, -1.0, 2.0])
    w, Z = tridiag_eigh(d, np.zeros(2))
    assert np.allclose(w, sorted(d))
    assert np.allclose(np.abs(Z[np.abs(Z) > 0.5]), 1.0)


def test_degenerate_eigenvalues(rng):
    d = np.ones(6)
    e = np.zeros(5)
    w, Z = tridiag_eigh(d, e)
    assert np.allclose(w, 1.0)
    assert np.allclose(Z.T @ Z, np.eye(6), atol=1e-10)


def test_accepts_full_length_offdiag_buffer(rng):
    d = rng.standard_normal(5)
    e = np.concatenate([rng.standard_normal(4), [999.0]])  # trailing junk
    w, Z = tridiag_eigh(d, e)
    T = _dense_tridiag(d, e[:4])
    assert np.allclose(T @ Z, Z * w, atol=1e-8)


def test_rejects_wrong_offdiag_length():
    with pytest.raises(ShapeError):
        tridiag_eigh(np.zeros(4), np.zeros(2))


def test_empty_input():
    w, Z = tridiag_eigh(np.empty(0), np.empty(0))
    assert w.size == 0 and Z.shape == (0, 0)


def test_wilkinson_matrix_clustered_spectrum():
    # The classic W21+ matrix has pathologically close eigenvalue pairs.
    n = 21
    d = np.abs(np.arange(n) - (n - 1) / 2)
    e = np.ones(n - 1)
    w, Z = tridiag_eigh(d, e)
    T = _dense_tridiag(d, e)
    assert np.allclose(T @ Z, Z * w, atol=1e-7)
    assert np.allclose(w, np.linalg.eigvalsh(T), atol=1e-8)
