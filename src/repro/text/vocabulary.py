"""Bidirectional term ↔ integer-id mapping.

Row ``i`` of the term-document matrix is the term ``vocabulary[i]``; all
LSI components share one :class:`Vocabulary` so that query terms, folded-in
documents and weight corrections address the same rows.  The mapping is
append-only: term ids are stable once assigned (SVD-updating appends new
term *rows*, it never renumbers existing ones).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import VocabularyError

__all__ = ["Vocabulary"]


class Vocabulary:
    """Ordered collection of unique terms with O(1) lookups both ways."""

    __slots__ = ("_terms", "_index", "_frozen")

    def __init__(self, terms: Iterable[str] = ()):
        self._terms: list[str] = []
        self._index: dict[str, int] = {}
        self._frozen = False
        for t in terms:
            self.add(t)

    # ------------------------------------------------------------------ #
    def add(self, term: str) -> int:
        """Insert ``term`` if new; return its id either way."""
        existing = self._index.get(term)
        if existing is not None:
            return existing
        if self._frozen:
            raise VocabularyError(f"vocabulary is frozen; cannot add {term!r}")
        idx = len(self._terms)
        self._terms.append(term)
        self._index[term] = idx
        return idx

    def extend(self, terms: Iterable[str]) -> list[int]:
        """Add many terms; returns their ids."""
        return [self.add(t) for t in terms]

    def freeze(self) -> "Vocabulary":
        """Disallow further additions (used once a model is fitted)."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether additions are disallowed."""
        return self._frozen

    # ------------------------------------------------------------------ #
    def id_of(self, term: str) -> int:
        """Id of ``term``; raises :class:`VocabularyError` if absent."""
        try:
            return self._index[term]
        except KeyError:
            raise VocabularyError(f"term {term!r} not in vocabulary") from None

    def get(self, term: str, default: int | None = None) -> int | None:
        """Id of ``term`` or ``default``."""
        return self._index.get(term, default)

    def __contains__(self, term: str) -> bool:
        return term in self._index

    def __getitem__(self, idx: int) -> str:
        return self._terms[idx]

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def __eq__(self, other) -> bool:
        return isinstance(other, Vocabulary) and self._terms == other._terms

    def __repr__(self) -> str:
        preview = ", ".join(self._terms[:5])
        suffix = ", ..." if len(self._terms) > 5 else ""
        return f"Vocabulary({len(self._terms)} terms: [{preview}{suffix}])"

    # ------------------------------------------------------------------ #
    def copy(self) -> "Vocabulary":
        """Unfrozen deep copy (SVD-updating derives an extended vocabulary)."""
        return Vocabulary(self._terms)

    def to_list(self) -> list[str]:
        """The terms in id order."""
        return list(self._terms)
