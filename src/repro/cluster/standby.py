"""The warm standby: tail the primary's store read-only, adopt on death.

The PR 8 primary writer made the cluster writable but left ingest with a
single point of failure: one process holds the store ``flock``, and its
death stops the write path until an operator restarts it.
:class:`StandbyWriter` closes that gap without any consensus machinery,
because the durable store already *is* the replication channel — every
acked record is WAL-fsynced in a directory both processes can see, and
every sealed checkpoint is a self-verifying snapshot.  The standby
therefore needs only two loops:

* **follow** — poll the checkpoint directory; when the primary seals a
  newer epoch, bump this cluster's own workers onto it (through the
  same quorum-gated :meth:`~repro.cluster.service.ClusterService.
  propagate_handle` path a local writer would use).  The standby
  cluster serves reads the whole time, never more than one seal behind.
* **adopt** — probe the store lock (non-blocking).  While the primary
  lives, the probe fails and the standby stays read-only — it never
  opens a write handle, so it cannot corrupt the WAL it is tailing.
  The instant the primary dies (``flock`` dies with its process, so a
  SIGKILL frees it immediately), the probe succeeds: the standby
  constructs a real :class:`~repro.cluster.primary.PrimaryWriter`,
  whose store open takes the lock *with a bumped fencing generation*
  (see :mod:`repro.store.lock`), replays the WAL tail past the last
  seal, and boot-seals ``reason="recover"`` — so the first promoted
  epoch already serves every record the dead primary ever acked.
  Zero acked records lost is not a best effort here; it is the store's
  standing recovery contract, inherited.

Promotion is observable end to end: every transition appends a
timestamped event to the in-memory timeline and (when configured) a
JSONL promotion log — ``standby_start``, ``followed_epoch``,
``lock_free``, ``adopted``, ``promoted``, ``adoption_lost`` — which the
failover smoke uploads as a CI artifact.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cluster.epochs import handle_for_checkpoint
from repro.cluster.primary import PrimaryWriter, WriterConfig
from repro.errors import StoreLockedError
from repro.obs.metrics import registry
from repro.store.checkpoint import latest_valid_checkpoint
from repro.store.lock import StoreLock

__all__ = ["StandbyConfig", "StandbyWriter"]


@dataclass(frozen=True)
class StandbyConfig:
    """Tunables for the standby's follow/adopt loop."""

    #: Poll cadence, seconds — both the epoch tail and the lock probe.
    poll_seconds: float = 0.5
    #: JSONL file recording the promotion timeline (``None``: memory only).
    promotion_log: str | None = None
    #: Writer configuration applied on promotion (seal policy, ingest
    #: kernel, ANN, retention) — normally identical to the primary's.
    writer: WriterConfig = field(default_factory=WriterConfig)


class StandbyWriter:
    """Tails a primary's store; promotes itself when the lock frees.

    Constructing the standby touches nothing: no lock, no WAL handle,
    no checkpoint open.  :meth:`start` binds the serving side and runs
    the poll loop; on promotion the adopted
    :class:`~repro.cluster.primary.PrimaryWriter` is installed as
    ``service.primary`` — from that moment ``/add`` works and the
    service is indistinguishable from one started ``--writable``.
    """

    def __init__(
        self,
        data_dir: pathlib.Path,
        config: StandbyConfig | None = None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.config = config or StandbyConfig()
        self.promoted = False
        self.writer: PrimaryWriter | None = None
        self.events: list[dict] = []
        self.started_unix = time.time()
        self._service = None
        self._task: asyncio.Task | None = None
        self._stopped = False
        self._tail_epoch = 0
        # Lock probes and writer adoption are blocking filesystem work;
        # one thread keeps them off the scatter loop.
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-standby"
        )
        registry.set_gauge("cluster.standby.promoted", 0)

    # ------------------------------------------------------------------ #
    def _event(self, name: str, **attrs) -> None:
        record = {"ts": time.time(), "event": name, **attrs}
        self.events.append(record)
        if self.config.promotion_log:
            try:
                with open(self.config.promotion_log, "a") as fh:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
            except OSError:
                pass

    def describe(self) -> dict:
        """The healthz ``standby`` block."""
        return {
            "promoted": self.promoted,
            "tail_epoch": self._tail_epoch,
            "uptime_seconds": time.time() - self.started_unix,
            "events": len(self.events),
            "last_event": self.events[-1]["event"] if self.events else None,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, service) -> None:
        """Bind the serving side and start the poll loop (idempotent)."""
        self._service = service
        if self._task is None or self._task.done():
            self._stopped = False
            self._event("standby_start", data_dir=str(self.data_dir))
            self._task = asyncio.ensure_future(self._poll_loop())

    async def stop(self, *, flush: bool = True) -> None:
        """Stop polling.  An adopted writer is *not* stopped here — on
        promotion it became ``service.primary``, and the service's drain
        stops it through that reference (one owner, one stop)."""
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # the poll loop: follow epochs, probe the lock
    # ------------------------------------------------------------------ #
    async def _poll_loop(self) -> None:
        while not self._stopped and not self.promoted:
            await asyncio.sleep(self.config.poll_seconds)
            if self._stopped or self.promoted:
                return
            try:
                await self._follow_epochs()
                await self._try_adopt()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — the tail must retry, not die
                registry.inc("cluster.standby.poll_errors_total")

    async def _follow_epochs(self) -> None:
        """Bump our workers onto any newer checkpoint the primary sealed."""
        service = self._service
        if service is None:
            return
        from repro.store.durable import STORE_LAYOUT

        loop = asyncio.get_event_loop()
        checkpoints = self.data_dir / STORE_LAYOUT["checkpoints"]
        info, _problems = await loop.run_in_executor(
            self._pool, lambda: latest_valid_checkpoint(checkpoints)
        )
        wal_path = self.data_dir / STORE_LAYOUT["wal"]
        try:
            registry.set_gauge(
                "cluster.standby.wal_bytes", wal_path.stat().st_size
            )
        except OSError:
            pass
        if info is None:
            return
        epoch = int(info.manifest.get("meta", {}).get("epoch", 0))
        self._tail_epoch = max(self._tail_epoch, epoch)
        registry.set_gauge("cluster.standby.tail_epoch", self._tail_epoch)
        if epoch <= service.epoch:
            return
        handle = handle_for_checkpoint(
            info.path,
            info.manifest.get("meta", {}),
            service.plan.n_workers,
            replication=service.plan.replication,
        )
        published = await service.propagate_handle(handle)
        self._event(
            "followed_epoch", epoch=epoch, checkpoint=info.path.name,
            published=published,
        )

    async def _try_adopt(self) -> None:
        """Probe the lock; on a free lock, become the primary.

        The probe-acquire is released immediately — it only answers "is
        the primary alive?" (a held ``flock`` dies with its owner, so a
        successful probe means the primary is gone, not slow).  The real
        acquisition happens inside :class:`PrimaryWriter`'s store open,
        which bumps the fencing generation; if another standby won the
        race between probe and open, that open raises
        :class:`StoreLockedError` and we go back to tailing.
        """
        service = self._service
        if service is None:
            return
        loop = asyncio.get_event_loop()

        def _probe() -> bool:
            try:
                lock = StoreLock.acquire(self.data_dir)
            except StoreLockedError:
                return False
            lock.release()
            return True

        if not await loop.run_in_executor(self._pool, _probe):
            return
        self._event("lock_free")
        registry.inc("cluster.standby.adoptions_attempted_total")
        try:
            # Opens the store: takes the flock at generation g+1,
            # replays the WAL tail, and boot-seals ("recover" when the
            # dead primary left acked-but-unsealed records, "adopt"
            # otherwise) — blocking work, kept off the event loop.
            writer = await loop.run_in_executor(
                self._pool,
                lambda: PrimaryWriter(self.data_dir, self.config.writer),
            )
        except StoreLockedError:
            self._event("adoption_lost")
            return
        seal = writer.store.last_seal
        self._event(
            "adopted",
            wal_lsn=writer.wal_lsn,
            sealed_epoch=seal.epoch if seal is not None else 0,
            lock_generation=writer.store._dir_lock.generation
            if writer.store._dir_lock is not None else 0,
        )
        self.writer = writer
        service.primary = writer
        await writer.start(service)
        # Publish the adoption seal to our own workers before declaring
        # promotion: once quorum remaps, every previously acked record
        # is searchable.  A missed quorum parks the handle on the
        # writer's normal retry loop — reads keep serving the old epoch
        # meanwhile, writes are already accepted.
        if seal is not None and seal.epoch > service.epoch:
            handle = handle_for_checkpoint(
                seal.path,
                {"epoch": seal.epoch},
                service.plan.n_workers,
                replication=service.plan.replication,
            )
            published = await service.propagate_handle(handle)
            if not published:
                writer._pending_handle = handle
        self.promoted = True
        registry.set_gauge("cluster.standby.promoted", 1)
        registry.inc("cluster.standby.promotions_total")
        self._event(
            "promoted", epoch=service.epoch, wal_lsn=writer.wal_lsn
        )
