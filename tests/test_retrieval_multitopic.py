"""Tests for multi-topic (multiple points of interest) queries."""

import numpy as np
import pytest

from repro.core import project_query
from repro.errors import ShapeError
from repro.retrieval import (
    MultiTopicQuery,
    multi_topic_scores,
    multi_topic_search,
)


def test_query_construction_and_weights(med_model):
    pts = np.ones((2, med_model.k))
    q = MultiTopicQuery(pts)
    assert q.n_points == 2
    assert np.allclose(q.weights, [0.5, 0.5])
    q2 = MultiTopicQuery(pts, weights=np.array([3.0, 1.0]))
    assert np.allclose(q2.weights, [0.75, 0.25])


def test_query_validation(med_model):
    with pytest.raises(ShapeError):
        MultiTopicQuery(np.zeros((0, 2)))
    with pytest.raises(ShapeError):
        MultiTopicQuery(np.ones((2, 2)), weights=np.ones(3))
    with pytest.raises(ShapeError):
        MultiTopicQuery(np.ones((2, 2)), weights=np.array([-1.0, 2.0]))
    with pytest.raises(ShapeError):
        MultiTopicQuery.from_texts(med_model, [])


def test_single_point_max_equals_plain_cosine(med_model):
    """With one interest point, every rule reduces to the ordinary
    cosine ranking."""
    from repro.core.similarity import cosine_similarities

    qhat = project_query(med_model, "age blood abnormalities")
    q = MultiTopicQuery(qhat[None, :])
    plain = cosine_similarities(med_model, qhat)
    for rule in ("max", "mean", "density"):
        scores = multi_topic_scores(med_model, q, rule=rule)
        assert np.allclose(scores, plain, atol=1e-9), rule


def test_max_rule_covers_both_facets(med_model):
    """A two-facet query (hormones + rats) must rank the top document of
    EACH facet highly — the centroid query can fail one facet."""
    q = MultiTopicQuery.from_texts(
        med_model, ["oestrogen depressed", "rats fast"]
    )
    ranked = multi_topic_search(med_model, q, rule="max", top=6)
    ids = [d for d, _ in ranked]
    assert any(d in ("M3", "M4") for d in ids)   # hormone cluster
    assert any(d in ("M13", "M14") for d in ids)  # rats cluster


def test_mean_rule_is_weighted_average(med_model):
    q = MultiTopicQuery.from_texts(
        med_model, ["oestrogen", "rats"], weights=[1.0, 0.0]
    )
    single = MultiTopicQuery.from_texts(med_model, ["oestrogen"])
    a = multi_topic_scores(med_model, q, rule="mean")
    b = multi_topic_scores(med_model, single, rule="mean")
    assert np.allclose(a, b, atol=1e-12)


def test_density_temperature_validation(med_model):
    q = MultiTopicQuery.from_texts(med_model, ["rats"])
    with pytest.raises(ShapeError):
        multi_topic_scores(med_model, q, rule="density", temperature=0.0)


def test_unknown_rule(med_model):
    q = MultiTopicQuery.from_texts(med_model, ["rats"])
    with pytest.raises(ValueError):
        multi_topic_scores(med_model, q, rule="min")


def test_dimension_mismatch(med_model):
    with pytest.raises(ShapeError):
        multi_topic_scores(med_model, MultiTopicQuery(np.ones((1, 7))))


def test_search_filters(med_model):
    q = MultiTopicQuery.from_texts(med_model, ["oestrogen", "rats"])
    out = multi_topic_search(med_model, q, rule="max", threshold=0.9)
    assert all(c >= 0.9 for _, c in out)
    out2 = multi_topic_search(med_model, q, top=3)
    assert len(out2) == 3
