"""Tests for matrix profiling diagnostics."""

import numpy as np
import pytest

from repro.sparse import from_dense
from repro.sparse.diagnostics import matrix_profile


@pytest.fixture
def dense():
    d = np.zeros((4, 5))
    d[0, 0] = 2.0
    d[0, 1] = 1.0
    d[3, 4] = 5.0
    return d


@pytest.mark.parametrize("convert", ["coo", "csr", "csc"])
def test_profile_consistent_across_formats(dense, convert):
    coo = from_dense(dense)
    matrix = {"coo": coo, "csr": coo.to_csr(), "csc": coo.to_csc()}[convert]
    p = matrix_profile(matrix)
    assert p.shape == (4, 5)
    assert p.nnz == 3
    assert p.density_pct == pytest.approx(100 * 3 / 20)
    assert p.row_nnz_max == 2
    assert p.col_nnz_max == 1
    assert p.value_max == 5.0
    assert p.value_mean == pytest.approx(8 / 3)


def test_profile_empty_matrix():
    p = matrix_profile(from_dense(np.zeros((3, 3))))
    assert p.nnz == 0
    assert p.density_pct == 0.0
    assert p.value_max == 0.0


def test_profile_summary_mentions_density(dense):
    p = matrix_profile(from_dense(dense))
    assert "% non-zero" in p.summary()
    assert "4×5" in p.summary()


def test_profile_on_med_matrix(med_tdm):
    p = matrix_profile(med_tdm.matrix)
    assert p.shape == (18, 14)
    assert p.nnz == med_tdm.matrix.nnz
    # every keyword appears in ≥ 2 topics
    from repro.sparse.diagnostics import matrix_profile as mp
    assert p.row_nnz_max >= 2
