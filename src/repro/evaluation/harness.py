"""The run-and-evaluate harness the §5 benchmarks are built on.

``run_engine`` executes every query of a test collection against one
engine; ``evaluate_run`` scores the run; ``compare_engines`` produces the
percent-improvement numbers the paper reports ("the average precision
using LSI ranged from comparable to 30% better than ... standard keyword
vector methods").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.corpus.collection import TestCollection
from repro.errors import EvaluationError
from repro.evaluation.metrics import (
    average_precision,
    three_point_average_precision,
)

__all__ = [
    "RetrievalRun",
    "run_engine",
    "evaluate_run",
    "compare_engines",
    "EngineComparison",
    "percent_improvement",
]


@dataclass
class RetrievalRun:
    """Per-query rankings produced by one engine on one collection."""

    engine_name: str
    collection_name: str
    rankings: list[list[int]]  # per query, documents in ranked order
    scores: list[list[float]] = field(default_factory=list)

    @property
    def n_queries(self) -> int:
        """Number of queries in the run."""
        return len(self.rankings)


def run_engine(engine, collection: TestCollection) -> RetrievalRun:
    """Rank all documents for every query of ``collection``."""
    rankings: list[list[int]] = []
    scores: list[list[float]] = []
    for q in collection.queries:
        ranked = engine.search(q)
        rankings.append([j for j, _ in ranked])
        scores.append([c for _, c in ranked])
    return RetrievalRun(
        engine_name=getattr(engine, "name", type(engine).__name__),
        collection_name=collection.name,
        rankings=rankings,
        scores=scores,
    )


def evaluate_run(
    run: RetrievalRun,
    collection: TestCollection,
    *,
    metric: Callable[[list[int], set[int]], float] | None = None,
) -> dict:
    """Score a run; the default metric is the paper's 3-point average
    precision, with the non-interpolated AP reported alongside."""
    if run.n_queries != collection.n_queries:
        raise EvaluationError(
            f"run has {run.n_queries} queries, collection "
            f"{collection.n_queries}"
        )
    metric = metric or three_point_average_precision
    per_query = [
        metric(ranking, collection.relevant(q))
        for q, ranking in enumerate(run.rankings)
    ]
    ap = [
        average_precision(ranking, collection.relevant(q))
        for q, ranking in enumerate(run.rankings)
    ]
    return {
        "engine": run.engine_name,
        "collection": run.collection_name,
        "mean_metric": float(np.mean(per_query)) if per_query else 0.0,
        "mean_average_precision": float(np.mean(ap)) if ap else 0.0,
        "per_query": per_query,
    }


def percent_improvement(candidate: float, baseline: float) -> float:
    """The paper's comparison statistic: 100 · (candidate − base) / base."""
    if baseline <= 0:
        return float("inf") if candidate > 0 else 0.0
    return 100.0 * (candidate - baseline) / baseline


@dataclass(frozen=True)
class EngineComparison:
    """Side-by-side result of two engines on one collection."""

    candidate: dict
    baseline: dict

    @property
    def improvement_pct(self) -> float:
        """Candidate's percent improvement over the baseline metric."""
        return percent_improvement(
            self.candidate["mean_metric"], self.baseline["mean_metric"]
        )

    def summary(self) -> str:
        """One-line human-readable comparison."""
        return (
            f"{self.candidate['engine']} {self.candidate['mean_metric']:.3f} "
            f"vs {self.baseline['engine']} {self.baseline['mean_metric']:.3f} "
            f"({self.improvement_pct:+.1f}%) on {self.baseline['collection']}"
        )


def compare_engines(
    candidate, baseline, collection: TestCollection, *, metric=None
) -> EngineComparison:
    """Run both engines on the collection and compare summary metrics."""
    cand = evaluate_run(run_engine(candidate, collection), collection, metric=metric)
    base = evaluate_run(run_engine(baseline, collection), collection, metric=metric)
    return EngineComparison(candidate=cand, baseline=base)
