"""Text processing: tokenization, parsing rules, vocabularies, matrices.

Implements the paper's document-preparation pipeline (§2.1, §5.4):

* words are identified "by looking for white spaces and punctuation in
  ASCII text" — :mod:`repro.text.tokenizer`;
* **no stemming** is applied (the paper is explicit that LSI handles
  morphological variants through co-occurrence, e.g. *doctor* ends up near
  *doctors* but not *doctoral*);
* stop words are removed — :mod:`repro.text.stopwords`;
* indexing keywords must satisfy a parsing rule, e.g. "keywords appear in
  more than one topic" for the Table 2 example — :mod:`repro.text.parser`;
* the term-document matrix of raw frequencies (Eq. 4) is assembled in CSC
  form — :mod:`repro.text.tdm`.
"""

from repro.text.tokenizer import tokenize
from repro.text.stopwords import DEFAULT_STOPWORDS, is_stopword
from repro.text.vocabulary import Vocabulary
from repro.text.parser import ParsingRules, parse_corpus
from repro.text.tdm import TermDocumentMatrix, build_tdm
from repro.text.ngrams import char_ngrams, word_ngram_profile
from repro.text.phrases import PhraseRules, build_phrase_tdm, extract_phrases

__all__ = [
    "tokenize",
    "DEFAULT_STOPWORDS",
    "is_stopword",
    "Vocabulary",
    "ParsingRules",
    "parse_corpus",
    "TermDocumentMatrix",
    "build_tdm",
    "char_ngrams",
    "word_ngram_profile",
    "PhraseRules",
    "build_phrase_tdm",
    "extract_phrases",
]
