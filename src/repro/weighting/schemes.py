"""Weighting scheme composition and application (Eq. 5).

A :class:`WeightingScheme` names a (local, global) pair; applying it to a
raw-count matrix yields a :class:`WeightedMatrix` that remembers the global
weight vector — queries must be weighted with the *same* term weights the
documents received, and the weight-correction update (Eq. 12) needs the old
global weights to compute differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.text.vocabulary import Vocabulary
from repro.weighting.global_ import GLOBAL_WEIGHTS, global_weight
from repro.weighting.local import LOCAL_WEIGHTS, NEEDS_COL_MAX, local_weight

__all__ = [
    "WeightingScheme",
    "WeightedMatrix",
    "apply_weighting",
    "available_schemes",
]


@dataclass(frozen=True)
class WeightingScheme:
    """A named (local, global) weighting pair.

    ``WeightingScheme("log", "entropy")`` is the paper's recommended
    scheme; ``WeightingScheme("raw", "none")`` is the unweighted baseline
    used in the Table 3 example.
    """

    local: str = "raw"
    global_: str = "none"

    def __post_init__(self):
        if self.local not in LOCAL_WEIGHTS:
            raise ValueError(
                f"unknown local weight {self.local!r}; "
                f"choose from {sorted(LOCAL_WEIGHTS)}"
            )
        if self.global_ not in GLOBAL_WEIGHTS:
            raise ValueError(
                f"unknown global weight {self.global_!r}; "
                f"choose from {sorted(GLOBAL_WEIGHTS)}"
            )

    @property
    def name(self) -> str:
        """Display name, e.g. ``\"log×entropy\"``."""
        return f"{self.local}×{self.global_}"

    @classmethod
    def from_name(cls, name: str) -> "WeightingScheme":
        """Parse ``"log×entropy"`` / ``"log_entropy"`` style names."""
        for sep in ("×", "_", "-", "."):
            if sep in name:
                loc, glob = name.split(sep, 1)
                return cls(loc, glob)
        return cls(name, "none")


@dataclass
class WeightedMatrix:
    """A weighted term-document matrix plus the weights that produced it.

    Attributes
    ----------
    matrix:
        The weighted CSC matrix (``L(i,j) · G(i)`` on stored entries).
    scheme:
        The scheme applied.
    global_weights:
        Length-m vector ``G`` — reused to weight queries and folded-in
        documents consistently.
    """

    matrix: CSCMatrix
    scheme: WeightingScheme
    global_weights: np.ndarray

    def weight_query(self, counts: np.ndarray) -> np.ndarray:
        """Weight a raw query/document count vector the way cells were.

        The local transform is applied to the query's own counts and the
        stored global weights scale each term — exactly Eq. 5 applied to a
        pseudo-document.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if self.scheme.local in NEEDS_COL_MAX:
            cmax = counts.max() if counts.size else 1.0
            local = local_weight(
                self.scheme.local, counts, np.full_like(counts, max(cmax, 1.0))
            )
        else:
            local = local_weight(self.scheme.local, counts)
        return local * self.global_weights


def _col_max_expanded(a: CSCMatrix) -> np.ndarray:
    """Per-entry maximum count of the entry's own document column."""
    n = a.shape[1]
    colmax = np.zeros(n)
    np.maximum.at(colmax, a.expanded_cols(), a.data)
    return colmax[a.expanded_cols()]


def apply_weighting(a: CSCMatrix, scheme: WeightingScheme) -> WeightedMatrix:
    """Apply ``scheme`` to raw counts, returning the weighted matrix."""
    g = global_weight(scheme.global_, a)
    if scheme.local in NEEDS_COL_MAX:
        local_data = local_weight(scheme.local, a.data, _col_max_expanded(a))
    else:
        local_data = local_weight(scheme.local, a.data)
    weighted = CSCMatrix(
        a.shape, a.indptr, a.indices, local_data * g[a.indices]
    )
    return WeightedMatrix(weighted, scheme, g)


def available_schemes() -> list[WeightingScheme]:
    """All local×global combinations, for the weighting ablation bench."""
    return [
        WeightingScheme(loc, glob)
        for loc in sorted(LOCAL_WEIGHTS)
        if loc != "tf"  # alias of raw
        for glob in sorted(GLOBAL_WEIGHTS)
    ]
