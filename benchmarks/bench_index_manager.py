"""§5.6 — real-time updating: the managed incremental index.

Regenerates the operational trade-off behind "perform SVD-updating ...
in real time for databases that change frequently": a stream of arriving
documents handled by (a) fold-everything, (b) recompute-every-batch, and
(c) the planner-driven manager that folds cheaply and consolidates on
budget.  Reports wall-clock and final index quality (drift + retrieval).
Times the managed ingestion of the whole stream.
"""

import time

import numpy as np

from conftest import emit
from repro.core import fit_lsi_from_tdm, project_query, retrieve
from repro.corpus import SyntheticSpec, topic_collection
from repro.text import ParsingRules, build_tdm
from repro.updating import LSIIndexManager, drift_report, fold_in_texts
from repro.updating.recompute import recompute_model


def _setup():
    col = topic_collection(
        SyntheticSpec(n_topics=5, docs_per_topic=30, doc_length=40,
                      concepts_per_topic=12, queries_per_topic=1),
        seed=61,
    )
    initial = col.documents[:90]
    stream = col.documents[90:]
    tdm = build_tdm(initial, ParsingRules())
    return col, tdm, stream


def test_managed_incremental_index(benchmark):
    col, tdm, stream = _setup()
    batches = [stream[i : i + 5] for i in range(0, len(stream), 5)]

    # (a) fold everything, never consolidate
    t0 = time.perf_counter()
    fold_model = fit_lsi_from_tdm(tdm, 10)
    for b, batch in enumerate(batches):
        fold_model = fold_in_texts(
            fold_model, batch, doc_ids=[f"f{b}_{i}" for i in range(len(batch))]
        )
    fold_time = time.perf_counter() - t0
    fold_drift = drift_report(fold_model).doc_loss

    # (b) recompute after every batch
    t0 = time.perf_counter()
    from repro.sparse.build import from_dense
    from repro.sparse.ops import hstack_csc
    from repro.text.tdm import TermDocumentMatrix, count_vector
    from repro.text.tokenizer import tokenize

    cur = tdm
    for b, batch in enumerate(batches):
        counts = np.stack(
            [count_vector(tokenize(t), cur.vocabulary) for t in batch], axis=1
        )
        cur = TermDocumentMatrix(
            hstack_csc([cur.matrix, from_dense(counts).to_csc()]),
            cur.vocabulary,
            list(cur.doc_ids) + [f"r{b}_{i}" for i in range(len(batch))],
        )
        recompute_model(cur, 10)
    recompute_time = time.perf_counter() - t0

    # (c) the manager
    def managed():
        mgr = LSIIndexManager(
            build_tdm(col.documents[:90], ParsingRules()), k=10,
            distortion_budget=0.15,
        )
        for batch in batches:
            mgr.add_texts(batch)
        return mgr

    t0 = time.perf_counter()
    mgr = benchmark.pedantic(managed, rounds=1, iterations=1)
    managed_time = time.perf_counter() - t0
    managed_drift = mgr.drift()
    consolidations = sum(1 for e in mgr.events if e.action != "fold-in")

    rows = [
        f"stream: {len(stream)} documents in {len(batches)} batches",
        f"{'strategy':<24s}{'seconds':>9s}{'final ‖V̂ᵀV̂−I‖₂':>18s}",
        f"{'fold-everything':<24s}{fold_time:>9.3f}{fold_drift:>18.3f}",
        f"{'recompute-every-batch':<24s}{recompute_time:>9.3f}"
        f"{0.0:>18.3f}",
        f"{'managed (planner)':<24s}{managed_time:>9.3f}"
        f"{managed_drift:>18.3f}",
        f"manager consolidations: {consolidations} "
        f"(vs {len(batches)} recomputes in strategy b)",
    ]
    emit("§5.6 — incremental index maintenance strategies", rows)

    # Shape claims: the manager consolidates at least once but far less
    # often than per-batch recomputing; its drift stays below the
    # fold-everything endpoint; fold-everything is the fastest.
    assert 1 <= consolidations < len(batches)
    assert managed_drift <= fold_drift + 1e-9
    assert fold_time < recompute_time

    # And the managed index still answers queries correctly.
    q = col.queries[0]
    qhat = project_query(mgr.model, q)
    top_docs = retrieve(mgr.model, qhat, top=5)
    assert len(top_docs) == 5
