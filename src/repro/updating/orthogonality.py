"""Orthogonality drift diagnostics for updated models (§4.3).

"The folding-in process corrupts the orthogonality of Û_k and V̂_k by
appending non-orthogonal submatrices ... the loss of orthogonality ...
can be measured by ‖ÛᵀÛ − I‖₂ and ‖V̂ᵀV̂ − I‖₂.  ... the amount by which
the folding-in method perturbs the orthogonality ... does indicate how
much distortion has occurred."

The paper flags correlating that loss with retrieval degradation as
"significant insights in the future"; :func:`fold_in_drift_curve` runs
that proposed experiment (used by ``benchmarks/bench_orthogonality.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.linalg.orth import orthogonality_loss
from repro.obs.bridge import record_drift
from repro.updating.folding import fold_in_documents

__all__ = ["OrthogonalityReport", "drift_report", "fold_in_drift_curve"]


@dataclass(frozen=True)
class OrthogonalityReport:
    """Snapshot of a model's basis quality.

    Attributes
    ----------
    term_loss:
        ``‖ÛᵀÛ − I‖₂`` over the term vectors.
    doc_loss:
        ``‖V̂ᵀV̂ − I‖₂`` over the document vectors.
    provenance:
        Which pipeline produced the model (fold-in is the only one
        expected to show non-trivial loss).
    """

    term_loss: float
    doc_loss: float
    provenance: str

    @property
    def max_loss(self) -> float:
        """The worse of the two losses."""
        return max(self.term_loss, self.doc_loss)


def drift_report(model: LSIModel) -> OrthogonalityReport:
    """Measure both orthogonality losses of a model.

    Each measurement is also published to the metrics registry
    (``orthogonality.term_loss`` / ``orthogonality.doc_loss`` gauges),
    so §4.3 drift is visible in ``python -m repro stats`` next to the
    serving and Lanczos metrics.
    """
    report = OrthogonalityReport(
        term_loss=orthogonality_loss(model.U),
        doc_loss=orthogonality_loss(model.V),
        provenance=model.provenance,
    )
    record_drift(report)
    return report


def fold_in_drift_curve(
    model: LSIModel,
    batches: Sequence[np.ndarray],
    *,
    metric: Callable[[LSIModel], float] | None = None,
) -> list[dict]:
    """Fold document batches in one at a time, recording loss (and an
    optional retrieval metric) after each batch.

    Parameters
    ----------
    model:
        The starting (clean) model.
    batches:
        Raw count blocks ``(m, p_i)`` to fold in sequentially.
    metric:
        Optional callable evaluated on each intermediate model (e.g.
        average precision over a fixed query set).

    Returns
    -------
    One record per state (including the initial one) with keys
    ``n_documents``, ``doc_loss``, ``term_loss`` and optionally ``metric``.
    """
    records = []

    def snap(current: LSIModel) -> None:
        rep = drift_report(current)
        rec = {
            "n_documents": current.n_documents,
            "doc_loss": rep.doc_loss,
            "term_loss": rep.term_loss,
        }
        if metric is not None:
            rec["metric"] = float(metric(current))
        records.append(rec)

    snap(model)
    current = model
    for b, batch in enumerate(batches):
        ids = [
            f"F{b}_{i}" for i in range(np.atleast_2d(batch).shape[-1])
        ]
        current = fold_in_documents(current, batch, ids)
        snap(current)
    return records
