"""The observability layer: metrics registry, tracing spans, bridges,
export/merge, and the registry-backed ``serving_counters`` shim."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry
from repro.obs.tracing import RING_CAPACITY
from repro.util.timing import serving_counters


@pytest.fixture(autouse=True)
def _clean_obs():
    """Each test starts and ends with an empty registry, an empty span
    ring, and tracing disabled (the process default)."""
    obs.registry.reset()
    obs.clear_spans()
    obs.enable_tracing(False)
    yield
    obs.registry.reset()
    obs.clear_spans()
    obs.enable_tracing(False)


# --------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------- #
class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.006)
        assert h.mean == pytest.approx(0.002)

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0
        assert Histogram().mean == 0.0

    def test_quantiles_bounded_by_observed_range(self):
        h = Histogram()
        for v in (0.0012, 0.0015, 0.0019):
            h.observe(v)
        for q in (0.01, 0.5, 0.95, 0.99):
            assert 0.0012 <= h.quantile(q) <= 0.0019

    def test_quantiles_track_distribution(self):
        h = Histogram()
        rng = np.random.default_rng(0)
        samples = rng.uniform(1e-4, 1e-1, size=5000)
        for v in samples:
            h.observe(float(v))
        # Bucketed quantiles are approximate; same log-decade is enough.
        assert h.quantile(0.5) == pytest.approx(
            float(np.quantile(samples, 0.5)), rel=1.0
        )
        assert h.quantile(0.95) > h.quantile(0.50) > h.quantile(0.05)

    def test_overflow_bucket(self):
        h = Histogram()
        h.observe(1000.0)  # beyond the last boundary
        assert h.count == 1
        assert h.quantile(0.99) == pytest.approx(1000.0)  # clamped to max

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_roundtrip_and_merge(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.01):
            a.observe(v)
        for v in (0.1, 1.0, 10.0):
            b.observe(v)
        a2 = Histogram.from_dict(a.to_dict())
        assert a2.count == a.count
        assert a2.sum == pytest.approx(a.sum)
        assert a2.bucket_counts == a.bucket_counts
        a2.merge(b)
        assert a2.count == 5
        assert a2.sum == pytest.approx(a.sum + b.sum)
        assert a2.min == pytest.approx(0.001)
        assert a2.max == pytest.approx(10.0)

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram((1.0, 2.0)))


# --------------------------------------------------------------------- #
# MetricsRegistry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_counters_gauges_histograms(self):
        r = MetricsRegistry()
        r.inc("a.hits")
        r.inc("a.hits", 4)
        r.set_gauge("a.level", 2.5)
        r.set_gauge("a.level", 3.5)  # last write wins
        r.observe("a.latency", 0.01)
        assert r.counter("a.hits") == 5
        assert r.counter("never") == 0
        assert r.gauge("a.level") == 3.5
        assert r.gauge("never", -1.0) == -1.0
        assert r.histogram("a.latency").count == 1
        assert r.histogram("never") is None

    def test_prefix_queries(self):
        r = MetricsRegistry()
        r.inc("serving.hits")
        r.inc("updating.folds")
        r.set_gauge("lanczos.matvecs", 7)
        r.observe("serving.gemm_seconds", 0.5)
        assert set(r.counters("serving.")) == {"serving.hits"}
        assert set(r.gauges("lanczos.")) == {"lanczos.matvecs"}
        assert r.histogram_sums("serving.") == {
            "serving.gemm_seconds": pytest.approx(0.5)
        }

    def test_snapshot_is_a_copy(self):
        r = MetricsRegistry()
        r.inc("x")
        snap = r.snapshot()
        snap["counters"]["x"] = 99
        assert r.counter("x") == 1
        assert snap["histograms"] == {}

    def test_snapshot_histogram_has_percentiles(self):
        r = MetricsRegistry()
        r.observe("lat", 0.02)
        h = r.snapshot()["histograms"]["lat"]
        for key in ("count", "sum", "p50", "p95", "p99", "boundaries"):
            assert key in h
        assert h["count"] == 1

    def test_reset_prefix_only(self):
        r = MetricsRegistry()
        r.inc("serving.hits")
        r.inc("manager.events")
        r.set_gauge("serving.level", 1.0)
        r.observe("serving.lat", 0.1)
        r.reset("serving.")
        assert r.counter("serving.hits") == 0
        assert r.counter("manager.events") == 1
        assert r.gauge("serving.level") is None
        assert r.histogram("serving.lat") is None

    def test_custom_boundaries_on_first_observe(self):
        r = MetricsRegistry()
        r.observe("x", 1.5, boundaries=(1.0, 2.0))
        r.observe("x", 1.7, boundaries=(5.0, 6.0))  # ignored: exists
        assert r.histogram("x").boundaries == (1.0, 2.0)

    def test_concurrent_increments_are_exact(self):
        r = MetricsRegistry()
        threads_n, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                r.inc("hits")
                r.observe("lat", 1e-4)

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter("hits") == threads_n * per_thread
        assert r.histogram("lat").count == threads_n * per_thread


# --------------------------------------------------------------------- #
# tracing spans
# --------------------------------------------------------------------- #
class TestTracing:
    def test_disabled_captures_nothing(self):
        with obs.span("lsi.test", k=2) as sp:
            sp.set_attr("later", 1)  # must be a no-op, not an error
        assert obs.recent_spans() == []
        assert obs.registry.histogram("lsi.test") is None

    def test_enabled_captures_nesting_and_attrs(self):
        with obs.traced():
            with obs.span("outer", k=2):
                with obs.span("inner") as sp:
                    sp.set_attr("rows", 5)
        spans = obs.recent_spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # exit order
        inner, outer = spans
        assert outer.parent_id is None and outer.depth == 0
        assert inner.parent_id == outer.span_id and inner.depth == 1
        assert outer.attrs == {"k": 2}
        assert inner.attrs == {"rows": 5}
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_span_feeds_registry_histogram(self):
        with obs.traced():
            with obs.span("lsi.test"):
                pass
        assert obs.registry.histogram("lsi.test").count == 1

    def test_exception_recorded_and_reraised(self):
        with obs.traced():
            with pytest.raises(ValueError, match="boom"):
                with obs.span("lsi.fail"):
                    raise ValueError("boom")
        (record,) = obs.recent_spans()
        assert "boom" in record.attrs["error"]
        assert obs.registry.histogram("lsi.fail").count == 1

    def test_traced_restores_previous_state(self):
        assert not obs.tracing_enabled()
        with obs.traced():
            assert obs.tracing_enabled()
            with obs.traced(False):
                assert not obs.tracing_enabled()
            assert obs.tracing_enabled()
        assert not obs.tracing_enabled()

    def test_ring_buffer_is_bounded(self):
        with obs.traced():
            for i in range(RING_CAPACITY + 50):
                with obs.span("s", i=i):
                    pass
        spans = obs.recent_spans()
        assert len(spans) == RING_CAPACITY
        assert spans[-1].attrs["i"] == RING_CAPACITY + 49  # newest kept

    def test_recent_spans_tail(self):
        with obs.traced():
            for i in range(5):
                with obs.span("s", i=i):
                    pass
        assert [s.attrs["i"] for s in obs.recent_spans(2)] == [3, 4]

    def test_jsonl_export(self, tmp_path):
        with obs.traced():
            with obs.span("a", arr=np.arange(2)):  # non-JSON attr → repr
                pass
        path = tmp_path / "spans.jsonl"
        assert obs.export_spans_jsonl(path) == 1
        record = json.loads(path.read_text().splitlines()[0])
        assert record["name"] == "a"
        assert isinstance(record["attrs"]["arr"], str)

    def test_threads_get_independent_stacks(self):
        seen = {}

        def worker():
            with obs.span("child") as sp:
                seen["record"] = sp._span

        with obs.traced():
            with obs.span("parent"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        # The worker's span must NOT have the main thread's span as parent.
        assert seen["record"].parent_id is None
        assert seen["record"].depth == 0


# --------------------------------------------------------------------- #
# instrumentation bridges
# --------------------------------------------------------------------- #
class _FakeFlops:
    total = 4242


class _FakeOperator:
    matvecs = 11
    rmatvecs = 7
    gram_products = 7
    flops = _FakeFlops()


class _FakeStats:
    iterations = 9
    gram_dim = 12
    converged = 4
    restarts = 1
    matvecs = 21


class _FakeReport:
    term_loss = 0.125
    doc_loss = 0.5


class TestBridge:
    def test_record_operator(self):
        obs.record_operator(_FakeOperator())
        g = obs.registry.gauges("lanczos.")
        assert g["lanczos.matvecs"] == 11
        assert g["lanczos.rmatvecs"] == 7
        assert g["lanczos.gram_products"] == 7
        assert g["lanczos.flops"] == 4242

    def test_record_lanczos_stats(self):
        obs.record_lanczos_stats(_FakeStats(), prefix="blk")
        g = obs.registry.gauges("blk.")
        assert g["blk.iterations"] == 9
        assert g["blk.stat_matvecs"] == 21

    def test_record_drift(self):
        obs.record_drift(_FakeReport())
        obs.record_drift(_FakeReport())
        assert obs.registry.gauge("orthogonality.doc_loss") == 0.5
        assert obs.registry.counter("orthogonality.reports") == 2

    def test_lanczos_fit_populates_gauges(self):
        from repro.core.build import fit_lsi

        docs = [f"word{i} word{i + 1} shared" for i in range(8)]
        fit_lsi(docs, 3, scheme="raw_none", method="lanczos")
        g = obs.registry.gauges("lanczos.")
        assert g["lanczos.matvecs"] > 0
        assert g["lanczos.flops"] > 0
        assert g["lanczos.iterations"] > 0

    def test_drift_report_publishes(self, med_model):
        from repro.updating.orthogonality import drift_report

        rep = drift_report(med_model)
        assert obs.registry.gauge("orthogonality.doc_loss") == pytest.approx(
            rep.doc_loss
        )
        assert obs.registry.counter("orthogonality.reports") == 1


# --------------------------------------------------------------------- #
# export / merge / state file
# --------------------------------------------------------------------- #
class TestExport:
    def test_snapshot_blob_shape(self):
        obs.registry.inc("serving.hits")
        blob = obs.snapshot_blob(name="t", extra={"speedup": 3.0})
        assert blob["schema"] == obs.export.SCHEMA
        assert blob["name"] == "t"
        assert blob["extra"] == {"speedup": 3.0}
        assert blob["metrics"]["counters"]["serving.hits"] == 1
        json.dumps(blob)  # must be JSON-serialisable as-is

    def test_merge_semantics(self):
        r = MetricsRegistry()
        r.inc("hits", 2)
        r.set_gauge("level", 1.0)
        r.observe("lat", 0.001)
        a = r.snapshot()
        r2 = MetricsRegistry()
        r2.inc("hits", 3)
        r2.set_gauge("level", 9.0)
        r2.observe("lat", 0.1)
        merged = obs.merge_snapshots(a, r2.snapshot())
        assert merged["counters"]["hits"] == 5  # counters add
        assert merged["gauges"]["level"] == 9.0  # gauges: newest wins
        h = merged["histograms"]["lat"]  # histograms union
        assert h["count"] == 2
        assert h["sum"] == pytest.approx(0.101)

    def test_merge_replaces_on_boundary_mismatch(self):
        a = MetricsRegistry()
        a.observe("lat", 0.5, boundaries=(1.0, 2.0))
        b = MetricsRegistry()
        b.observe("lat", 0.5)
        merged = obs.merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["histograms"]["lat"]["boundaries"] == list(
            DEFAULT_LATENCY_BUCKETS
        )

    def test_dump_state_accumulates(self, tmp_path):
        path = tmp_path / "state.json"
        obs.registry.inc("serving.hits", 2)
        obs.dump_state(path)
        obs.registry.reset()
        obs.registry.inc("serving.hits", 3)  # a "second process"
        obs.dump_state(path)
        state = obs.load_state(path)
        assert state["metrics"]["counters"]["serving.hits"] == 5

    def test_load_state_tolerates_garbage(self, tmp_path):
        assert obs.load_state(tmp_path / "missing.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        assert obs.load_state(bad) is None
        notdict = tmp_path / "list.json"
        notdict.write_text("[1, 2]")
        assert obs.load_state(notdict) is None

    def test_format_snapshot_sections(self):
        obs.registry.inc("serving.hits", 7)
        obs.registry.set_gauge("lanczos.matvecs", 13)
        obs.registry.observe("lsi.search", 0.004)
        text = obs.format_snapshot(obs.registry.snapshot())
        assert "counters" in text and "serving.hits" in text and "7" in text
        assert "gauges" in text and "lanczos.matvecs" in text
        assert "histograms" in text and "lsi.search" in text
        assert obs.format_snapshot({}) == "(no metrics recorded)"

    def test_format_spans(self):
        with obs.traced():
            with obs.span("outer"):
                with obs.span("inner", p=3):
                    pass
        text = obs.format_spans([s.to_dict() for s in obs.recent_spans()])
        assert "outer" in text and "inner" in text and "p=3" in text
        # inner is one level deeper → more indentation.
        inner_line = next(l for l in text.splitlines() if "inner" in l)
        outer_line = next(l for l in text.splitlines() if "outer" in l)
        assert len(inner_line) - len(inner_line.lstrip()) > (
            len(outer_line) - len(outer_line.lstrip())
        )
        assert obs.format_spans([]) == "(no spans captured)"


# --------------------------------------------------------------------- #
# the serving_counters compatibility shim
# --------------------------------------------------------------------- #
class TestServingShim:
    def test_writes_land_in_registry_with_prefix(self):
        serving_counters.incr("queries_served", 3)
        serving_counters.add_time("gemm", 0.25)
        assert obs.registry.counter("serving.queries_served") == 3
        h = obs.registry.histogram("serving.gemm_seconds")
        assert h.count == 1 and h.sum == pytest.approx(0.25)

    def test_reads_strip_prefix(self):
        serving_counters.incr("query_cache_hits")
        serving_counters.add_time("topk_seconds", 0.1)
        assert serving_counters.counts == {"query_cache_hits": 1}
        assert serving_counters.timers == {
            "topk_seconds": pytest.approx(0.1)
        }
        snap = serving_counters.snapshot()
        assert snap["query_cache_hits"] == 1
        assert snap["topk_seconds"] == pytest.approx(0.1)

    def test_time_context_accumulates(self):
        with serving_counters.time("gemm"):
            pass
        with serving_counters.time("gemm"):
            pass
        h = obs.registry.histogram("serving.gemm_seconds")
        assert h.count == 2

    def test_reset_only_touches_serving(self):
        serving_counters.incr("queries_served")
        obs.registry.inc("manager.events.fold-in")
        serving_counters.reset()
        assert serving_counters.counts == {}
        assert obs.registry.counter("manager.events.fold-in") == 1

    def test_report_lists_both(self):
        serving_counters.incr("hits", 2)
        serving_counters.add_time("gemm", 0.5)
        text = serving_counters.report()
        assert "hits" in text and "gemm" in text


# --------------------------------------------------------------------- #
# integration: the instrumented serving path
# --------------------------------------------------------------------- #
class TestServingIntegration:
    def test_sharded_search_counts_and_spans(self, med_model):
        from repro.parallel.sharding import sharded_batch_search

        queries = ["blood pressure", "depressed patients"]
        with obs.traced():
            sharded_batch_search(med_model, queries, top=3, shards=2)
        assert obs.registry.counter("serving.shard_searches") == 2
        names = {s.name for s in obs.recent_spans()}
        assert "lsi.batch_search" in names
        assert "lsi.search.shard" in names
        assert "lsi.search.merge" in names
        assert obs.registry.histogram("lsi.batch_search").count == 1

    def test_search_span_and_histogram(self, med_model):
        from repro.retrieval.engine import LSIRetrieval

        engine = LSIRetrieval(med_model)
        with obs.traced():
            engine.search("blood pressure", top=3)
        hist = obs.registry.histogram("lsi.search")
        assert hist is not None and hist.count == 1
        assert obs.registry.counter("serving.queries_served") == 1
