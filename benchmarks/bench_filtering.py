"""§5.3 — information filtering with standing interest profiles.

Regenerates: Foltz's 12-23% LSI advantage over keyword matching for
filtering, and Dumais & Foltz's finding that profiles built from known
relevant documents beat query-only profiles.  The collection is split
into an indexed sample and a stream (documents shuffled so every
interest appears on both sides); stream average precision is the metric
and the query set is shared across all methods.  Times the LSI
relevant-docs-profile run.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation import percent_improvement
from repro.evaluation.metrics import average_precision
from repro.retrieval import (
    FilteringProfile,
    KeywordRetrieval,
    stream_filter,
)


def _setup():
    col = topic_collection(
        SyntheticSpec(
            n_topics=6, docs_per_topic=24, doc_length=40,
            concepts_per_topic=12, synonyms_per_concept=4,
            queries_per_topic=1, query_length=2, query_synonym_shift=0.9,
            polysemy=0.25, background_vocab=30, background_rate=0.2,
            shuffle_documents=True,
        ),
        seed=31,
    )
    head, tail_docs, tail_rel = col.split_documents(col.n_documents // 2)
    model = fit_lsi(head.documents, k=12, scheme="log_entropy", seed=0)
    usable = [
        qi for qi in range(col.n_queries)
        if head.relevant(qi) and tail_rel[qi]
    ]
    return col, head, tail_docs, tail_rel, model, usable


def test_filtering_profiles(benchmark):
    col, head, tail_docs, tail_rel, model, usable = _setup()
    assert usable, "shuffled split must leave every interest on both sides"

    def ap_stream(ranked, rel):
        return average_precision([i for i, _ in ranked], rel)

    def run_relevant_profiles():
        scores = []
        for qi in usable:
            profile = FilteringProfile.from_relevant_documents(
                model, sorted(head.relevant(qi))[:3]
            )
            scores.append(
                ap_stream(stream_filter(profile, tail_docs), tail_rel[qi])
            )
        return float(np.mean(scores))

    lsi_docs_profile = benchmark(run_relevant_profiles)

    # Query-only LSI profile, same queries.
    q_scores = []
    for qi in usable:
        profile = FilteringProfile.from_query(model, col.queries[qi])
        q_scores.append(
            ap_stream(stream_filter(profile, tail_docs), tail_rel[qi])
        )
    lsi_query_profile = float(np.mean(q_scores))

    # Keyword baseline: score the stream against the raw query vector.
    kw = KeywordRetrieval.from_texts(tail_docs, scheme="log_entropy")
    kw_scores = [
        ap_stream(kw.search(col.queries[qi]), tail_rel[qi]) for qi in usable
    ]
    kw_query = float(np.mean(kw_scores))

    rows = [
        f"interests evaluated: {len(usable)}; stream length {len(tail_docs)}",
        f"{'method':<36s}{'stream AP':>10s}",
        f"{'keyword, query profile':<36s}{kw_query:>10.3f}",
        f"{'LSI, query profile':<36s}{lsi_query_profile:>10.3f}",
        f"{'LSI, known-relevant-docs profile':<36s}{lsi_docs_profile:>10.3f}",
        f"LSI query vs keyword: "
        f"{percent_improvement(lsi_query_profile, kw_query):+.1f}% "
        "(paper: +12-23% under richer queries; synonym-heavy streams "
        "widen it)",
        "paper: relevant-document profiles are the most effective",
    ]
    emit("§5.3 — information filtering", rows)

    assert lsi_query_profile > kw_query
    assert lsi_docs_profile >= lsi_query_profile
