"""Tests for the block Lanczos SVD (the SVDPACKC bls2 analogue)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import block_lanczos_svd, orthogonality_loss, truncated_svd
from repro.sparse import from_dense


def _sparse(rng, m, n, density=0.3):
    d = rng.standard_normal((m, n)) * (rng.random((m, n)) < density)
    return d, from_dense(d).to_csr()


def test_matches_reference(rng):
    d, a = _sparse(rng, 70, 50)
    U, s, V, stats = block_lanczos_svd(a, 6, block=3, seed=1)
    s_ref = np.linalg.svd(d, compute_uv=False)[:6]
    assert np.allclose(s, s_ref, atol=1e-6)
    assert np.allclose(np.abs(np.diag(U.T @ d @ V)), s, atol=1e-5)


def test_vectors_orthonormal(rng):
    _, a = _sparse(rng, 60, 45)
    U, s, V, _ = block_lanczos_svd(a, 5, block=2, seed=2)
    assert orthogonality_loss(U) < 1e-7
    assert orthogonality_loss(V) < 1e-7


def test_clustered_spectrum_resolved(rng):
    """The block advantage: a 4-fold degenerate top singular value is
    captured with block ≥ cluster width."""
    Q1 = np.linalg.qr(rng.standard_normal((60, 40)))[0]
    Q2 = np.linalg.qr(rng.standard_normal((40, 40)))[0]
    svals = np.concatenate([[10.0] * 4, np.linspace(2, 0.1, 36)])
    d = Q1 @ np.diag(svals) @ Q2.T
    _, s, _, _ = block_lanczos_svd(d, 5, block=4, seed=1)
    assert np.allclose(s[:4], 10.0, atol=1e-7)
    assert s[4] == pytest.approx(2.0, abs=1e-6)


def test_wide_matrix(rng):
    d, _ = _sparse(rng, 25, 80)
    a = from_dense(d).to_csc()
    U, s, V, stats = block_lanczos_svd(a, 4, block=2, seed=3)
    assert stats.gram_dim == 25
    assert np.allclose(s, np.linalg.svd(d, compute_uv=False)[:4], atol=1e-6)


def test_block_one_degenerates_to_single_vector(rng):
    d, a = _sparse(rng, 40, 30)
    _, s, _, _ = block_lanczos_svd(a, 3, block=1, seed=4)
    assert np.allclose(s, np.linalg.svd(d, compute_uv=False)[:3], atol=1e-6)


def test_block_wider_than_dim_clamped(rng):
    d = rng.standard_normal((8, 5))
    _, s, _, _ = block_lanczos_svd(d, 3, block=64, seed=0)
    assert np.allclose(s, np.linalg.svd(d, compute_uv=False)[:3], atol=1e-8)


def test_rank_deficient(rng):
    d = np.outer(rng.standard_normal(20), rng.standard_normal(12))
    U, s, V, _ = block_lanczos_svd(d, 3, block=2, seed=5)
    assert np.sum(s > 1e-6 * s[0]) == 1
    assert s[0] == pytest.approx(np.linalg.norm(d, 2), rel=1e-8)
    assert orthogonality_loss(U) < 1e-7


def test_validation(rng):
    d = rng.standard_normal((6, 4))
    with pytest.raises(ShapeError):
        block_lanczos_svd(d, 0)
    with pytest.raises(ShapeError):
        block_lanczos_svd(d, 5)
    with pytest.raises(ShapeError):
        block_lanczos_svd(d, 2, block=0)


def test_frontend_backend(rng):
    d, a = _sparse(rng, 50, 35)
    res = truncated_svd(a, 4, method="block-lanczos")
    assert res.method == "block-lanczos"
    assert res.stats is not None
    assert np.allclose(
        res.s, np.linalg.svd(d, compute_uv=False)[:4], atol=1e-6
    )


def test_deterministic(rng):
    _, a = _sparse(rng, 30, 30)
    a1 = block_lanczos_svd(a, 3, block=2, seed=9)
    a2 = block_lanczos_svd(a, 3, block=2, seed=9)
    assert np.array_equal(a1[1], a2[1])
    assert np.array_equal(a1[0], a2[0])
