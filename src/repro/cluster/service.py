"""The cluster front end: checkpoint → plan → supervisor → router → HTTP.

:class:`ClusterService` presents the same duck-typed surface the HTTP
front end (:mod:`repro.server.http`) expects from a
:class:`~repro.server.service.QueryService` — ``start`` / ``drain`` /
``search`` / ``healthz`` / ``stats`` / ``metrics`` — but answers queries
by scattering over shard worker *processes* instead of scoring in-loop.
It opens the newest durable-store checkpoint once (memory-mapped, for
the vocabulary and query projection; workers map the same files
themselves), pins a :class:`~repro.cluster.plan.ShardPlan` against that
checkpoint's epoch, and wires the router's dead-connection reports into
the supervisor's restart machinery.

By default the cluster is a *read-only* serving tier: ``/add`` is
refused with :class:`~repro.errors.ClusterReadOnlyError`, and a new
checkpoint is picked up by restarting the cluster.  With
``writable=True`` the service embeds the
:class:`~repro.cluster.primary.PrimaryWriter`: ``/add`` WAL-logs
through the durable store, the writer seals checkpoints on its policy
and bumps the workers, and the front end hot-swaps its
:class:`~repro.cluster.epochs.EpochHandle` — ``search`` snapshots the
handle at entry, so in-flight queries finish against the superseded
epoch (which every worker retains) and zero queries drop across a bump.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.epochs import EpochHandle, handle_for_checkpoint
from repro.cluster.router import ClusterResult, ClusterRouter, RouterConfig
from repro.cluster.supervisor import ClusterSupervisor, SupervisorConfig
from repro.core.query import project_query
from repro.errors import (
    ClusterConfigError,
    ClusterReadOnlyError,
    StoreError,
    UnknownTenantError,
)
from repro.obs.aggregate import label_snapshots
from repro.obs.export import SCHEMA
from repro.obs.metrics import registry
from repro.obs.prom import render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace_context import current_trace
from repro.obs.tracing import recent_spans, span, spans_for_trace
from repro.store.checkpoint import latest_valid_checkpoint

__all__ = ["ClusterConfig", "ClusterService"]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables for one cluster instance (CLI flags map 1:1 onto these)."""

    workers: int = 4
    #: Replicas per shard range; ``workers // replication`` ranges are
    #: carved, each served by R distinct worker processes.
    replication: int = 1
    worker_timeout_ms: float = 2000.0
    hedge_quantile: float = 0.95
    hedge: bool = True
    heartbeat_interval: float = 1.0
    miss_limit: int = 3
    restart_backoff: float = 0.5
    restart_backoff_cap: float = 10.0
    default_timeout_ms: float | None = None
    #: Default probe count for requests that don't specify one.  ``None``
    #: keeps the exact scatter as the default; requests opt into the ANN
    #: path with ``probes``, or force exactness with ``exact``.
    default_probes: int | None = None
    #: Slow-query log threshold (milliseconds); <= 0 disables the log.
    slow_ms: float = 500.0
    #: JSONL file for slow-query records (``None`` keeps them in-memory).
    slowlog_path: str | None = None
    #: Bound on retained slow-query records (memory and on-disk).
    slowlog_max_records: int = 256
    #: Embed the primary writer: ``/add`` accepted, epochs bump live.
    writable: bool = False
    #: Writer seal policy — records threshold (``None`` disables).
    seal_every_records: int | None = 64
    #: Writer seal policy — dirty-age threshold, seconds (``None`` off).
    seal_interval_s: float | None = 15.0
    #: Writer ingest kernel: ``"fast-update"`` or ``"fold-in"``.
    ingest_method: str = "fast-update"
    #: Residual sketch rank for the fast-update kernel.
    fast_update_rank: int = 8
    #: ANN cells per sealed checkpoint: ``None`` auto, ``0`` disables.
    ann_clusters: int | None = None
    #: Checkpoints retained by the writer (>= 3 under a cluster).
    retain: int = 3
    #: Run a warm standby writer: tail checkpoints + WAL read-only and
    #: adopt the store lock (promote to primary) when it frees.
    standby: bool = False
    #: Standby poll cadence, seconds (epoch tail + lock probe).
    standby_poll_s: float = 0.5
    #: JSONL file recording the standby's promotion timeline events.
    promotion_log: str | None = None


class ClusterService:
    """Scatter-gather query service over one checkpoint, many processes."""

    def __init__(
        self,
        data_dir: pathlib.Path,
        config: ClusterConfig | None = None,
        *,
        host: str = "127.0.0.1",
        announce: Callable[[str], None] | None = None,
        tenant: str | None = None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.config = config or ClusterConfig()
        #: The tenant this fleet serves (``None`` for single-tenant).
        #: Rides every scatter frame and the worker spawn command, so a
        #: worker of tenant A structurally cannot answer tenant B.
        self.tenant = tenant

        from repro.store.durable import STORE_LAYOUT

        # Refuse impossible topologies before any process is spawned or
        # store lock taken (ReplicaPlan.compute re-validates later, but
        # by then a writable primary would already hold the flock).
        if self.config.replication < 1:
            raise ClusterConfigError(
                f"replication factor must be >= 1, got "
                f"{self.config.replication}"
            )
        if self.config.replication > self.config.workers:
            raise ClusterConfigError(
                f"replication {self.config.replication} exceeds the "
                f"worker budget: every shard range needs "
                f"{self.config.replication} distinct workers but only "
                f"{self.config.workers} were requested — raise --workers "
                f"to at least {self.config.replication} or lower "
                f"--replication"
            )
        if self.config.writable and self.config.standby:
            raise ClusterConfigError(
                "--writable and --standby are mutually exclusive: a "
                "standby must *not* hold the store lock until it "
                "promotes — run the primary with --writable and the "
                "standby with --standby"
            )

        # In writable mode the primary opens (locks) the store *first*
        # and seals — so the handle pinned below already serves every
        # WAL-acknowledged document and records the writer's ingest
        # configuration in its manifest.
        self.primary = None
        if self.config.writable:
            from repro.cluster.primary import PrimaryWriter, WriterConfig

            self.primary = PrimaryWriter(
                self.data_dir,
                WriterConfig(
                    seal_every_records=self.config.seal_every_records,
                    seal_interval_s=self.config.seal_interval_s,
                    ingest_method=self.config.ingest_method,
                    fast_update_rank=self.config.fast_update_rank,
                    ann_clusters=self.config.ann_clusters,
                    retain=self.config.retain,
                ),
            )

        checkpoints = self.data_dir / STORE_LAYOUT["checkpoints"]
        info, problems = latest_valid_checkpoint(checkpoints)
        if info is None:
            detail = f" ({'; '.join(problems)})" if problems else ""
            raise StoreError(
                f"no valid checkpoint under {checkpoints}{detail}"
            )
        # The handle memory-maps the checkpoint model for projection (U,
        # Σ, vocabulary); each worker maps the same .npy files itself —
        # the page cache is shared.  ``search`` snapshots this reference
        # at entry; ``publish_handle`` replaces it atomically on bump.
        self._handle = handle_for_checkpoint(
            info.path,
            info.manifest.get("meta", {}),
            self.config.workers,
            replication=self.config.replication,
        )
        self.router = ClusterRouter(
            self.plan,
            RouterConfig(
                worker_timeout_ms=self.config.worker_timeout_ms,
                hedge_quantile=self.config.hedge_quantile,
                hedge=self.config.hedge,
            ),
            tenant=tenant,
        )
        self.supervisor = ClusterSupervisor(
            self.data_dir,
            self.plan,
            self.router,
            SupervisorConfig(
                heartbeat_interval=self.config.heartbeat_interval,
                miss_limit=self.config.miss_limit,
                backoff_base=self.config.restart_backoff,
                backoff_cap=self.config.restart_backoff_cap,
            ),
            host=host,
            announce=announce,
            tenant=tenant,
        )
        self.router.on_worker_dead = self.supervisor.notify_worker_dead

        # The warm standby never touches the store at construction: it
        # starts tailing (and probing the lock) only once the cluster
        # runs, and installs itself as ``self.primary`` on promotion.
        self.standby = None
        if self.config.standby:
            from repro.cluster.primary import WriterConfig
            from repro.cluster.standby import StandbyConfig, StandbyWriter

            self.standby = StandbyWriter(
                self.data_dir,
                StandbyConfig(
                    poll_seconds=self.config.standby_poll_s,
                    promotion_log=self.config.promotion_log,
                    writer=WriterConfig(
                        seal_every_records=self.config.seal_every_records,
                        seal_interval_s=self.config.seal_interval_s,
                        ingest_method=self.config.ingest_method,
                        fast_update_rank=self.config.fast_update_rank,
                        ann_clusters=self.config.ann_clusters,
                        retain=self.config.retain,
                    ),
                ),
            )

        self.slowlog = SlowQueryLog(
            self.config.slowlog_path,
            threshold_ms=self.config.slow_ms,
            max_records=self.config.slowlog_max_records,
        )
        self._started = False

    # ------------------------------------------------------------------ #
    # The serving epoch: every per-epoch attribute reads through one
    # reference, replaced atomically by ``publish_handle`` — the
    # multi-process analogue of ``EpochSnapshot.swap``.
    # ------------------------------------------------------------------ #
    @property
    def handle(self) -> EpochHandle:
        """The currently-published epoch (snapshot this, then use it)."""
        return self._handle

    @property
    def epoch(self) -> int:
        return self._handle.epoch

    @property
    def checkpoint(self) -> str:
        return self._handle.checkpoint

    @property
    def model(self):
        return self._handle.model

    @property
    def ann(self) -> bool:
        return self._handle.ann

    @property
    def plan(self):
        return self._handle.plan

    def publish_handle(self, handle: EpochHandle) -> None:
        """Swap the serving epoch (writer-only; last step of a bump).

        One reference assignment: requests that already snapshotted the
        old handle finish against it — the workers still hold that
        epoch's state as *previous* — while every later request scatters
        with the new plan.
        """
        self._handle = handle
        registry.set_gauge("cluster.epoch", handle.epoch)
        registry.set_gauge("cluster.n_documents", handle.n_documents)

    async def propagate_handle(
        self, handle: EpochHandle, *, bump_timeout: float = 30.0
    ) -> bool:
        """Push a new epoch to the workers; publish only on quorum.

        The bump sequence: point future restarts at the new plan, bump
        every live worker, record the acks — then *publish* only if a
        quorum (``replication // 2 + 1``) of every range's replicas now
        serves the new epoch.  Returns False (leaving the old handle
        serving) when quorum is not met; the caller retries on its poll
        loop — laggards ack on re-bump, dead workers restart directly
        onto the new plan, and quorum converges.
        """
        self.supervisor.update_plan(handle.plan)
        acked = await self.router.broadcast_bump(
            handle.plan, timeout=bump_timeout
        )
        for worker_id, epoch in acked.items():
            self.supervisor.note_epoch(worker_id, epoch)
        if not self.supervisor.quorum_met(handle.plan):
            registry.inc("cluster.bump_quorum_misses_total")
            return False
        self.publish_handle(handle)
        return True

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn and attach every worker (idempotent)."""
        if not self._started:
            with span("cluster.start", workers=self.plan.n_workers):
                await self.supervisor.start()
            if self.primary is not None:
                await self.primary.start(self)
            if self.standby is not None:
                await self.standby.start(self)
            self._started = True

    async def drain(self) -> None:
        """Graceful shutdown: stop the writer, SIGTERM workers."""
        if self.standby is not None:
            await self.standby.stop(flush=True)
        if self.primary is not None:
            await self.primary.stop(flush=True)
        await self.supervisor.drain()
        self._started = False

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun."""
        return self.supervisor.draining

    # ------------------------------------------------------------------ #
    def _scale(self, Q: np.ndarray, model=None) -> np.ndarray:
        """``Q Σ`` — exactly ``DocumentIndex.prepare_queries`` in scaled
        mode, applied router-side so every worker scores identical bytes."""
        s = (model if model is not None else self.model).s
        return np.atleast_2d(np.asarray(Q, dtype=np.float64)) * s

    def _check_tenant(self, tenant: str | None) -> None:
        """Refuse a tenant this fleet does not serve (typed 404).

        A standalone cluster (``self.tenant is None``) accepts only
        untargeted requests; a tenant-bound fleet accepts ``None`` (the
        front end already routed) or its own id.
        """
        if tenant is None or tenant == self.tenant:
            return
        if self.tenant is not None:
            message = (
                f"this cluster serves tenant {self.tenant!r}, "
                f"not {tenant!r}"
            )
        else:
            message = f"this cluster is single-tenant; unknown tenant {tenant!r}"
        raise UnknownTenantError(message, tenant=tenant)

    async def search(
        self,
        query,
        *,
        top: int | None = None,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        tenant: str | None = None,
    ) -> dict:
        """One ranked search, scattered over the shard workers.

        ``probes`` bounds every shard's scan to the same coarse cells
        (falling back to ``config.default_probes``, then to the exact
        scatter); ``exact=True`` overrides any default.  ``tenant`` must
        name this fleet's tenant (or be ``None``) — anything else is a
        typed 404.  Never raises on worker death — degraded answers come
        back with ``partial=True`` and the unscored ``[lo, hi)`` ranges
        listed.
        """
        self._check_tenant(tenant)
        t0 = time.perf_counter()
        # One epoch per request: project, scatter, and label against the
        # same handle even if the writer publishes a bump mid-flight.
        handle = self._handle
        qhat = project_query(handle.model, query)
        result = await self.router.search_batch(
            self._scale(qhat, handle.model),
            plan=handle.plan,
            top=top,
            threshold=threshold,
            timeout_ms=(
                timeout_ms if timeout_ms is not None
                else self.config.default_timeout_ms
            ),
            probes=(
                probes if probes is not None
                else self.config.default_probes
            ),
            exact=exact,
        )
        self._record_slow(
            time.perf_counter() - t0, result, top=top, probes=probes
        )
        doc_ids = handle.model.doc_ids
        payload = {
            "epoch": result.epoch,
            "n_documents": handle.n_documents,
            "partial": result.partial,
            "missing": [list(pair) for pair in result.missing],
            "results": [
                [i, score, doc_ids[i]] for i, score in result.results[0]
            ],
        }
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        return payload

    def _record_slow(
        self,
        elapsed_s: float,
        result: ClusterResult,
        *,
        top: int | None,
        probes: int | None,
    ) -> None:
        """Dump an over-threshold request's trace evidence to the slow log."""
        if not self.slowlog.is_slow(elapsed_s):
            return
        registry.inc("cluster.slow_queries_total")
        ctx = current_trace()
        trace_id = ctx.trace_id if ctx is not None else None
        entry = {
            "ts": time.time(),
            "trace_id": trace_id,
            "duration_ms": elapsed_s * 1000.0,
            "top": top,
            "probes": probes,
            "partial": result.partial,
            **({"tenant": self.tenant} if self.tenant is not None else {}),
            "missing": [list(pair) for pair in result.missing],
            "shard_timings": {
                str(sid): ms for sid, ms in sorted(result.shard_timings.items())
            },
            "hedged": result.hedged,
            "deadline_missed": result.deadline_missed,
        }
        if trace_id is not None:
            # The router-side spans already captured for this trace —
            # scatter and merge costs, with hedges/misses flagged in
            # their attrs.  Worker spans stay fetchable via /trace.
            entry["spans"] = [
                s.to_dict() for s in spans_for_trace(trace_id)
            ]
        self.slowlog.record(entry)

    async def search_many(
        self,
        queries: Sequence[str] | np.ndarray,
        *,
        top: int | None = 10,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        tenant: str | None = None,
    ) -> ClusterResult:
        """A whole batch through one scatter (bench/parity entry point).

        ``queries`` may be raw texts or an already-projected ``(q, k)``
        array — the same convention as ``sharded_batch_search``, whose
        output this is element-identical to when all workers are live.
        """
        self._check_tenant(tenant)
        handle = self._handle
        if isinstance(queries, np.ndarray):
            Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        else:
            from repro.parallel.batch import batch_project_queries

            Q = batch_project_queries(handle.model, queries)
        return await self.router.search_batch(
            self._scale(Q, handle.model),
            plan=handle.plan,
            top=top,
            threshold=threshold,
            timeout_ms=(
                timeout_ms if timeout_ms is not None
                else self.config.default_timeout_ms
            ),
            probes=(
                probes if probes is not None
                else self.config.default_probes
            ),
            exact=exact,
        )

    async def add(self, texts, doc_ids=None, *, tenant: str | None = None) -> dict:
        """Ingest through the primary writer, or refuse read-only.

        Writable: returns once the batch is WAL-fsynced (``durable``);
        the documents become searchable at the next seal/bump, which
        the response's ``epoch`` (the acknowledging WAL LSN) and the
        healthz ``writer.lag_records`` let callers track.  Read-only:
        raises the typed :class:`ClusterReadOnlyError` the HTTP layer
        maps to 403, request id attached server-side.
        """
        self._check_tenant(tenant)
        if self.primary is None:
            if self.standby is not None:
                raise ClusterReadOnlyError(
                    "standby has not adopted the store yet: the primary "
                    "still holds the writer lock — send writes there "
                    "until promotion"
                )
            raise ClusterReadOnlyError(
                "cluster serving is read-only: restart with "
                "--writable to ingest here, or write through the "
                "store's single writer (repro serve --data-dir) and "
                "restart the cluster to pick up the new checkpoint"
            )
        return await self.primary.add_texts(texts, doc_ids)

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        """Cluster liveness: worker table (with per-worker checkpoint
        epoch), live count, degradation, and the writer block — enabled
        flag, WAL position, and ``lag_records`` (acknowledged but not
        yet sealed/remapped) when the cluster is writable."""
        handle = self._handle
        workers = self.supervisor.describe()
        ranges = self.supervisor.describe_ranges()
        live = sum(1 for w in workers if w["state"] == "up")
        # Health is per *range*: one dead replica of a still-covered
        # range is not degradation — the router fails reads over to its
        # siblings.  Only a range with zero healthy replicas (which at
        # replication 1 is any dead worker) degrades the cluster.
        uncovered = sum(1 for r in ranges if r["replicas_healthy"] == 0)
        if self.draining:
            status = "draining"
        elif uncovered > 0:
            status = "degraded"
        else:
            status = "ok"
        if self.primary is None:
            writer = {"enabled": False}
        else:
            writer = self.primary.describe(handle.epoch)
        payload = {
            "status": status,
            "draining": self.draining,
            "epoch": handle.epoch,
            "checkpoint": handle.checkpoint,
            "n_documents": handle.n_documents,
            "n_shards": handle.plan.n_shards,
            "replication": handle.plan.replication,
            "n_workers": handle.plan.n_workers,
            "workers_live": live,
            "workers": workers,
            "ranges": ranges,
            "writer": writer,
            "ann": handle.ann,
            "default_probes": self.config.default_probes,
            "slowlog": self.slowlog.describe(),
        }
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.standby is not None:
            payload["standby"] = self.standby.describe()
        return payload

    def stats(self) -> dict:
        """The observability snapshot for ``/stats`` (obs-export schema)."""
        return {
            "schema": SCHEMA,
            "server": self.healthz(),
            "metrics": registry.snapshot(),
            "spans": [s.to_dict() for s in recent_spans(50)],
            "slow_queries": self.slowlog.recent(20),
        }

    async def metrics(self) -> dict:
        """The federated fleet registry dump for ``/metrics``.

        Same flat ``{counters, gauges, histograms}`` JSON shape as the
        single-process server (backward compatible); every live worker's
        shipped registry rides along under a ``shard.<sid>.`` prefix.
        """
        worker_snaps = await self.router.fetch_stats()
        return label_snapshots(
            registry.snapshot(),
            {sid: snap for sid, snap in worker_snaps.items()},
        )

    async def metrics_prom(self) -> str:
        """Prometheus text exposition for ``/metrics?format=prom``.

        The router's registry renders with a ``worker="router"`` label
        and each live shard worker's with ``worker="<sid>"`` — one
        family per metric, per-worker-labeled samples beneath.
        """
        worker_snaps = await self.router.fetch_stats()
        series = [({"worker": "router"}, registry.snapshot())]
        for sid in sorted(worker_snaps):
            series.append(({"worker": str(sid)}, worker_snaps[sid]))
        return render_prometheus(series)

    async def trace(self, trace_id: str) -> dict:
        """Reassemble one cluster-wide trace: local + worker spans.

        Worker spans are fetched over the ``trace`` wire op and tagged
        with their shard id; the whole set sorts by start time, so the
        JSONL export reads as one coherent distributed timeline.
        """
        local = [s.to_dict() for s in spans_for_trace(trace_id)]
        for record in local:
            record["worker"] = "router"
        remote = await self.router.fetch_trace(trace_id)
        for sid, spans in sorted(remote.items()):
            for record in spans:
                record["worker"] = str(sid)
            local.extend(spans)
        local.sort(key=lambda r: float(r.get("start", 0.0)))
        return {
            "trace_id": trace_id,
            "workers": sorted(str(sid) for sid in remote),
            "spans": local,
        }
