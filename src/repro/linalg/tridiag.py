"""Symmetric tridiagonal eigensolver (implicit-shift QL, "tql2").

This is the inner solve of the Lanczos SVD: each outer iteration reduces
the Gram operator to a small symmetric tridiagonal matrix whose eigenpairs
are the Ritz approximations.  The algorithm is the classic EISPACK ``tql2``
implicit-shift QL iteration with Wilkinson shifts, O(n²) per eigenvalue
including eigenvector accumulation, unconditionally convergent in practice
(a safeguard iteration cap raises :class:`~repro.errors.ConvergenceError`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ShapeError

__all__ = ["tridiag_eigh"]

_MAX_QL_SWEEPS = 50


def tridiag_eigh(
    diag: np.ndarray, offdiag: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues and eigenvectors of a symmetric tridiagonal matrix.

    Parameters
    ----------
    diag:
        Main diagonal, length ``n``.
    offdiag:
        Sub/super-diagonal, length ``n - 1`` (or ``n`` with a trailing
        ignored element, as produced by in-place Lanczos buffers).

    Returns
    -------
    (w, Z):
        ``w`` — eigenvalues in ascending order, shape ``(n,)``.
        ``Z`` — orthonormal eigenvectors as columns, shape ``(n, n)``,
        with ``T @ Z[:, i] == w[i] * Z[:, i]``.
    """
    d = np.array(diag, dtype=np.float64, copy=True).ravel()
    n = d.size
    if n == 0:
        return np.empty(0), np.empty((0, 0))
    e_in = np.asarray(offdiag, dtype=np.float64).ravel()
    if e_in.size not in (max(n - 1, 0), n):
        raise ShapeError(
            f"offdiag must have length n-1={n - 1} (or n), got {e_in.size}"
        )
    # Working copy with the EISPACK convention: e[0] unused after the shift.
    e = np.zeros(n)
    e[: n - 1] = e_in[: n - 1]
    z = np.eye(n)
    if n == 1:
        return d, z

    # Wholly subnormal matrices stall the QL sweep: the rotation
    # products underflow, so e never shrinks and neither split test can
    # fire.  Upscale by an exact power of two into the normal range and
    # scale the eigenvalues back at the end — ldexp is lossless in both
    # directions, so normal-range inputs are untouched bit-for-bit.
    scale = max(np.max(np.abs(d)), np.max(np.abs(e)))
    scale_exp = 0
    if 0.0 < scale < np.finfo(float).tiny:
        scale_exp = int(np.frexp(scale)[1])  # scale = frac * 2**scale_exp
        d = np.ldexp(d, -scale_exp)
        e = np.ldexp(e, -scale_exp)

    # Whole-matrix scale for the split test (EISPACK's ``tst1``).  The
    # purely local criterion |e[m]| <= eps·(|d[m]|+|d[m+1]|) never fires
    # when a whole block is tiny (e.g. zero diagonal with subnormal
    # couplings): the rotations underflow to no-ops and the sweep
    # stalls.  Splitting additionally on |e[m]| negligible against the
    # largest |d[l]|+|e[l]| anywhere in the matrix is backward stable —
    # it perturbs T by at most eps·‖T‖ — and unsticks those blocks.
    # (Computed globally up front, not as a running max: a stalling
    # block can precede the entry that sets the matrix scale.)
    tst1 = float(np.max(np.abs(d) + np.abs(e)))
    for l in range(n):
        for sweep in range(_MAX_QL_SWEEPS + 1):
            # Find a small off-diagonal element to split the problem.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if (
                    abs(e[m]) <= np.finfo(float).eps * dd
                    or tst1 + abs(e[m]) == tst1
                ):
                    break
                m += 1
            if m == l:
                break
            if sweep == _MAX_QL_SWEEPS:
                raise ConvergenceError(
                    f"tql2 failed to converge for eigenvalue {l}",
                    iterations=sweep,
                    achieved=l,
                )
            # Wilkinson shift from the 2x2 leading block.
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + (r if g >= 0 else -r))
            s, c = 1.0, 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = np.hypot(f, g)
                e[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    e[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                # Accumulate the rotation into the eigenvector matrix.
                col_i1 = z[:, i + 1].copy()
                z[:, i + 1] = s * z[:, i] + c * col_i1
                z[:, i] = c * z[:, i] - s * col_i1
            else:
                d[l] -= p
                e[l] = g
                e[m] = 0.0
    # Sort ascending, reorder eigenvectors to match.
    order = np.argsort(d, kind="stable")
    w = d[order]
    if scale_exp:
        w = np.ldexp(w, scale_exp)
    return w, z[:, order]
