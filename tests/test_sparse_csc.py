"""Unit tests for the CSC format."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import CSCMatrix, from_dense


@pytest.fixture
def dense(rng):
    return rng.random((6, 9)) * (rng.random((6, 9)) < 0.5)


@pytest.fixture
def csc(dense):
    return from_dense(dense).to_csc()


def test_format_invariants_validated():
    with pytest.raises(SparseFormatError):
        CSCMatrix((2, 2), [0, 1], [0], [1.0])
    with pytest.raises(SparseFormatError):
        CSCMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 1.0])
    with pytest.raises(SparseFormatError):
        CSCMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 1.0])


def test_matvec_and_rmatvec(dense, csc, rng):
    x = rng.standard_normal(9)
    y = rng.standard_normal(6)
    assert np.allclose(csc.matvec(x), dense @ x)
    assert np.allclose(csc.rmatvec(y), dense.T @ y)
    assert np.allclose(csc @ x, dense @ x)


def test_matmat_and_rmatmat(dense, csc, rng):
    X = rng.standard_normal((9, 18))
    Y = rng.standard_normal((6, 18))
    assert np.allclose(csc.matmat(X), dense @ X)
    assert np.allclose(csc.rmatmat(Y), dense.T @ Y)


def test_empty_columns():
    d = np.zeros((3, 4))
    d[2, 1] = 5.0
    c = from_dense(d).to_csc()
    assert np.allclose(c.col_nnz(), [0, 1, 0, 0])
    assert np.allclose(c.col_sums(), d.sum(axis=0))
    assert np.allclose(c.matvec(np.ones(4)), d @ np.ones(4))


def test_col_slice_and_dense(dense, csc):
    rows, vals = csc.col_slice(3)
    rebuilt = np.zeros(6)
    rebuilt[rows] = vals
    assert np.allclose(rebuilt, dense[:, 3])
    assert np.allclose(csc.col_dense(3), dense[:, 3])
    with pytest.raises(ShapeError):
        csc.col_slice(100)


def test_select_cols(dense, csc):
    cols = np.array([5, 1, 5, 0])
    sub = csc.select_cols(cols)
    assert np.allclose(sub.to_dense(), dense[:, cols])
    with pytest.raises(ShapeError):
        csc.select_cols([50])


def test_scaling(dense, csc):
    s_r = np.arange(1.0, 7.0)
    s_c = np.arange(1.0, 10.0)
    assert np.allclose(csc.scale_rows(s_r).to_dense(), dense * s_r[:, None])
    assert np.allclose(csc.scale_cols(s_c).to_dense(), dense * s_c[None, :])


def test_sums(dense, csc):
    assert np.allclose(csc.row_sums(), dense.sum(axis=1))
    assert np.allclose(csc.col_sums(), dense.sum(axis=0))


def test_transpose_roundtrip(dense, csc):
    assert np.allclose(csc.T.to_dense(), dense.T)
    assert np.allclose(csc.T.T.to_dense(), dense)
    assert np.shares_memory(csc.T.data, csc.data)


def test_conversions(dense, csc):
    assert np.allclose(csc.to_csr().to_dense(), dense)
    assert np.allclose(csc.to_coo().to_dense(), dense)


def test_immutability(csc):
    with pytest.raises(AttributeError):
        csc.indptr = None
