"""Golden numeric regression tests.

Pins exact values produced by the from-scratch numeric stack on fixed
seeded inputs, so silent changes to Lanczos/Jacobi/weighting arithmetic
are caught even when all property tests still pass (e.g. a tolerance
loosening that shifts converged digits).
"""

import numpy as np
import pytest

from repro.core import fit_lsi_from_tdm, project_query
from repro.corpus.med import MED_QUERY, med_matrix
from repro.linalg import jacobi_svd, lanczos_svd, truncated_svd
from repro.sparse import from_dense
from repro.weighting import WeightingScheme, apply_weighting


def _fixed_matrix():
    rng = np.random.default_rng(20260706)
    return rng.standard_normal((24, 18)) * (rng.random((24, 18)) < 0.4)


def test_jacobi_singular_values_pinned():
    _, s, _ = jacobi_svd(_fixed_matrix())
    # First three singular values to 10 decimals (LAPACK cross-checked).
    expected = np.linalg.svd(_fixed_matrix(), compute_uv=False)[:3]
    assert np.allclose(s[:3], expected, atol=1e-10)
    assert s[0] == pytest.approx(expected[0], abs=1e-11)


def test_lanczos_matches_jacobi_to_high_precision():
    d = _fixed_matrix()
    a = from_dense(d).to_csr()
    _, s_l, _, _ = lanczos_svd(a, 5, seed=0)
    _, s_j, _ = jacobi_svd(d)
    assert np.allclose(s_l, s_j[:5], atol=1e-9)


def test_med_sigma_pinned(med_tdm):
    model = fit_lsi_from_tdm(med_tdm, 2)
    assert model.s[0] == pytest.approx(3.5135686, abs=1e-6)
    assert model.s[1] == pytest.approx(2.6463884, abs=1e-6)


def test_med_query_cosines_pinned(med_model):
    from repro.core.similarity import cosine_similarities

    qhat = project_query(med_model, MED_QUERY)
    cos = cosine_similarities(med_model, qhat)
    by_id = dict(zip(med_model.doc_ids, cos))
    assert by_id["M8"] == pytest.approx(0.9226, abs=2e-4)
    assert by_id["M12"] == pytest.approx(0.9120, abs=2e-4)
    assert by_id["M9"] == pytest.approx(0.8912, abs=2e-4)
    assert by_id["M11"] == pytest.approx(0.8740, abs=2e-4)


def test_log_entropy_weights_pinned():
    counts = np.array(
        [[3.0, 0.0, 1.0], [1.0, 1.0, 1.0], [0.0, 2.0, 0.0]]
    )
    wm = apply_weighting(
        from_dense(counts).to_csc(), WeightingScheme("log", "entropy")
    )
    # term 1 is uniform over 3 docs → entropy weight 0; term 2 single-doc
    # → weight 1.
    assert wm.global_weights[1] == pytest.approx(0.0, abs=1e-12)
    assert wm.global_weights[2] == pytest.approx(1.0)
    # term 0: p = (3/4, 0, 1/4); G = 1 + (p·log2 p)/log2 3
    p = np.array([0.75, 0.25])
    g0 = 1 + np.sum(p * np.log2(p)) / np.log2(3)
    assert wm.global_weights[0] == pytest.approx(g0)
    w = wm.matrix.to_dense()
    assert w[2, 1] == pytest.approx(np.log2(3.0))  # log2(2+1) * 1.0


def test_truncated_svd_backend_agreement_tight():
    d = _fixed_matrix()
    a = from_dense(d).to_csc()
    results = {
        m: truncated_svd(a, 4, method=m).s
        for m in ("dense", "lanczos", "gkl", "block-lanczos")
    }
    for name, s in results.items():
        assert np.allclose(s, results["dense"], atol=1e-8), name
