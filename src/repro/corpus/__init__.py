"""Corpora: the paper's worked example and synthetic test collections.

* :mod:`repro.corpus.med` — the 18-term × 14-document MEDLINE sample of
  Tables 2-3, the two update topics of Table 5, and the worked query, all
  transcribed from the paper (with the one OCR divergence documented).
* :mod:`repro.corpus.collection` — the test-collection container (documents
  + queries + relevance judgments) used by the evaluation harness.
* :mod:`repro.corpus.synthetic` — seeded generative topic model with
  controllable synonymy/polysemy, standing in for the MED/CISI-style
  collections of §5.1.
* :mod:`repro.corpus.crosslang` — paired dual-language documents for the
  cross-language retrieval study of §5.4.
* :mod:`repro.corpus.trec_like` — a scaled-down TREC analogue: thousands
  of documents and *long* (≥50-term) queries.
* :mod:`repro.corpus.noise` — OCR-style corruption at a configurable word
  error rate (§5.4, Noisy Input).
* :mod:`repro.corpus.synonym_test` — TOEFL-style multiple-choice synonym
  items over a corpus where synonyms share contexts but never co-occur.
"""

from repro.corpus.collection import TestCollection
from repro.corpus.med import (
    MED_DOC_IDS,
    MED_QUERY,
    MED_TERMS,
    MED_TOPICS,
    MED_UPDATE_TOPICS,
    med_collection,
    med_matrix,
    med_tdm_parsed,
    med_update_matrix,
)
from repro.corpus.synthetic import SyntheticSpec, topic_collection
from repro.corpus.crosslang import CrossLanguageSpec, crosslang_collection
from repro.corpus.trec_like import trec_like_collection
from repro.corpus.noise import ocr_corrupt, ocr_corrupt_collection
from repro.corpus.synonym_test import SynonymTest, synonym_test
from repro.corpus.morphology import MorphologyCorpus, morphology_corpus
from repro.corpus.netlib_like import NetlibCatalogue, netlib_catalogue

__all__ = [
    "TestCollection",
    "MED_TOPICS",
    "MED_UPDATE_TOPICS",
    "MED_TERMS",
    "MED_DOC_IDS",
    "MED_QUERY",
    "med_matrix",
    "med_update_matrix",
    "med_tdm_parsed",
    "med_collection",
    "SyntheticSpec",
    "topic_collection",
    "CrossLanguageSpec",
    "crosslang_collection",
    "trec_like_collection",
    "ocr_corrupt",
    "ocr_corrupt_collection",
    "SynonymTest",
    "synonym_test",
    "MorphologyCorpus",
    "morphology_corpus",
    "NetlibCatalogue",
    "netlib_catalogue",
]
