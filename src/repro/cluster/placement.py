"""Replica placement: R distinct workers per shard range, deterministically.

The replicated cluster keeps the :class:`~repro.cluster.plan.ShardPlan`
as the *data* layout — contiguous document-row ranges whose merge is
element-identical to the flat search — and layers placement on top: a
:class:`ReplicaPlan` assigns each range a **replica set** of R worker
slots, spread so no two replicas of a range share a worker.  Like the
shard plan, the replica plan is computed, never negotiated: worker slot
ids are a pure function of ``(n_workers, replication)``,

    ``worker_id = replica_index * n_ranges + shard_id``

so replica 0 of every range occupies worker ids ``[0, n_ranges)`` —
which makes a replication-1 plan's worker ids *equal* to its shard ids,
and every metric name, supervisor row, and router channel from the
unreplicated cluster carries over unchanged.

The plan is canonical-JSON-pinned exactly like the shard plan:
:meth:`ReplicaPlan.to_json` is byte-stable, and :meth:`from_json`
recomputes the placement from the header fields and refuses any payload
whose ranges disagree — placement skew between router and supervisor
fails at parse time, not as queries quietly served by the wrong rows.
Workers themselves never see the replica plan: each is handed the
underlying ``base`` shard plan (its contract is rows, not placement)
plus its replica index for identity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.plan import ShardPlan, ShardRange
from repro.errors import ClusterConfigError, ClusterError

__all__ = [
    "REPLICA_PLAN_FORMAT",
    "ReplicaSet",
    "ReplicaPlan",
    "as_replica_plan",
]

#: Bumped on any change to the replica plan's JSON shape or placement math.
REPLICA_PLAN_FORMAT = "repro-cluster-replica-plan/1"


@dataclass(frozen=True)
class ReplicaSet:
    """One range's replicas: the worker slots that all serve ``[lo, hi)``."""

    shard_id: int
    lo: int
    hi: int
    #: Worker slot ids serving this range, replica index order.  All
    #: distinct by construction — a worker dying never costs two copies.
    workers: tuple[int, ...]

    @property
    def replication(self) -> int:
        return len(self.workers)

    def as_pair(self) -> list[int]:
        """``[lo, hi]`` — mirrors :meth:`ShardRange.as_pair`."""
        return [self.lo, self.hi]


@dataclass(frozen=True)
class ReplicaPlan:
    """R replicas per shard range over a fixed worker budget.

    Duck-types the read surface of :class:`ShardPlan` (``n_shards``,
    ``shards``, ``shard()``, ``ranges()``, ``n_documents``, ``epoch``,
    ``checkpoint``) so the router, supervisor, and service treat both
    interchangeably — ``n_shards`` is the number of *ranges*, not worker
    processes; ``n_workers`` is the process count.
    """

    base: ShardPlan
    replication: int
    replicas: tuple[ReplicaSet, ...]

    # ------------------------------------------------------------------ #
    @classmethod
    def compute(
        cls,
        n_documents: int,
        n_workers: int,
        replication: int = 1,
        *,
        epoch: int = 0,
        checkpoint: str = "",
    ) -> "ReplicaPlan":
        """The canonical placement of ``n_workers`` over R-replicated ranges.

        ``n_workers // replication`` ranges are carved (a remainder of
        workers goes unused rather than leaving one range under-
        replicated); raises :class:`~repro.errors.ClusterConfigError`
        when the topology is impossible.
        """
        n_workers = int(n_workers)
        replication = int(replication)
        if replication < 1:
            raise ClusterConfigError(
                f"replication factor must be >= 1, got {replication}"
            )
        if n_workers < 1:
            raise ClusterConfigError(
                f"worker budget must be >= 1, got {n_workers}"
            )
        if replication > n_workers:
            raise ClusterConfigError(
                f"replication {replication} exceeds the worker budget: "
                f"every shard range needs {replication} distinct workers "
                f"but only {n_workers} were requested — raise --workers "
                f"to at least {replication} or lower --replication"
            )
        n_ranges = n_workers // replication
        base = ShardPlan.compute(
            n_documents, n_ranges, epoch=epoch, checkpoint=checkpoint
        )
        replicas = tuple(
            ReplicaSet(
                s.shard_id,
                s.lo,
                s.hi,
                tuple(
                    r * n_ranges + s.shard_id for r in range(replication)
                ),
            )
            for s in base.shards
        )
        return cls(base=base, replication=replication, replicas=replicas)

    # ------------------------------------------------------------------ #
    # ShardPlan duck-typed read surface
    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        return self.base.n_documents

    @property
    def n_shards(self) -> int:
        """Number of *ranges* (the merge arity), not worker processes."""
        return self.base.n_shards

    @property
    def epoch(self) -> int:
        return self.base.epoch

    @property
    def checkpoint(self) -> str:
        return self.base.checkpoint

    @property
    def shards(self) -> tuple[ShardRange, ...]:
        return self.base.shards

    def shard(self, shard_id: int) -> ShardRange:
        return self.base.shard(shard_id)

    def ranges(self) -> list[tuple[int, int]]:
        return self.base.ranges()

    # ------------------------------------------------------------------ #
    # placement surface
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        """Worker processes the plan occupies (= ranges x replication)."""
        return self.n_shards * self.replication

    def quorum(self) -> int:
        """Replicas of a range that must remap before a bump completes."""
        return self.replication // 2 + 1

    def replica_set(self, shard_id: int) -> ReplicaSet:
        """The replica set serving range ``shard_id``."""
        self.base.shard(shard_id)  # validates the id
        return self.replicas[shard_id]

    def worker_ids(self) -> list[int]:
        """Every worker slot id, ascending."""
        return list(range(self.n_workers))

    def range_of(self, worker_id: int) -> int:
        """The shard range worker slot ``worker_id`` serves."""
        if not 0 <= int(worker_id) < self.n_workers:
            raise ClusterError(
                f"worker {worker_id} out of range for "
                f"{self.n_workers} worker slots"
            )
        return int(worker_id) % self.n_shards

    def replica_of(self, worker_id: int) -> int:
        """The replica index worker slot ``worker_id`` occupies."""
        if not 0 <= int(worker_id) < self.n_workers:
            raise ClusterError(
                f"worker {worker_id} out of range for "
                f"{self.n_workers} worker slots"
            )
        return int(worker_id) // self.n_shards

    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Canonical byte-stable serialization (sorted keys, no spaces)."""
        return json.dumps(
            {
                "format": REPLICA_PLAN_FORMAT,
                "n_documents": self.n_documents,
                "n_workers": self.n_workers,
                "replication": self.replication,
                "epoch": self.epoch,
                "checkpoint": self.checkpoint,
                "shards": [s.as_pair() for s in self.shards],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplicaPlan":
        """Parse and *verify*: placement must be recomputable.

        Any payload whose ranges differ from the canonical placement of
        its own header — hand-edited, truncated, or produced by a
        process with different placement math — raises
        :class:`~repro.errors.ClusterError`.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ClusterError(f"replica plan is not valid JSON: {exc}")
        if not isinstance(data, dict) or (
            data.get("format") != REPLICA_PLAN_FORMAT
        ):
            raise ClusterError(
                f"replica plan format {data.get('format')!r} is not "
                f"{REPLICA_PLAN_FORMAT!r}" if isinstance(data, dict)
                else "replica plan must be a JSON object"
            )
        try:
            plan = cls.compute(
                int(data["n_documents"]),
                int(data["n_workers"]),
                int(data["replication"]),
                epoch=int(data["epoch"]),
                checkpoint=str(data["checkpoint"]),
            )
            claimed = [list(map(int, pair)) for pair in data["shards"]]
        except ClusterConfigError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"replica plan is missing fields: {exc!r}")
        if claimed != [s.as_pair() for s in plan.shards]:
            raise ClusterError(
                "replica plan ranges do not match the canonical "
                f"placement of n={plan.n_documents} over "
                f"{plan.n_workers} workers at replication "
                f"{plan.replication} — placement math disagrees"
            )
        return plan


def as_replica_plan(plan: ShardPlan | ReplicaPlan) -> ReplicaPlan:
    """Normalize either plan flavor to a :class:`ReplicaPlan`.

    A bare :class:`ShardPlan` wraps as replication 1, under which every
    worker slot id equals its shard id — the unreplicated cluster is
    exactly the R=1 special case of the replicated one.
    """
    if isinstance(plan, ReplicaPlan):
        return plan
    replicas = tuple(
        ReplicaSet(s.shard_id, s.lo, s.hi, (s.shard_id,))
        for s in plan.shards
    )
    return ReplicaPlan(base=plan, replication=1, replicas=replicas)
