"""Crash-recovery smoke test for ``python -m repro serve --data-dir``.

The durability contract across a *process boundary*, with a real
SIGKILL (no atexit handlers, no flush — the kernel just removes the
process):

1. boot the durable server, seed a data directory, POST a stream of
   ``/add`` fold-ins, and SIGKILL the process mid-stream;
2. restart the server on the same data directory and assert it
   recovered **at least** every acknowledged add (acknowledged =
   WAL-fsynced before the HTTP 200 went out);
3. build an in-process reference manager that absorbs exactly the adds
   the recovered server reports, and assert ``/search`` responses are
   element-identical — the recovered index is bit-for-bit the index the
   killed process had;
4. run ``repro store verify`` (clean) and ``repro store compact``, then
   re-serve and assert the same parity — compaction changes no result.

Run directly (CI does)::

    PYTHONPATH=src:benchmarks python benchmarks/store_crash_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.corpus.med import MED_TOPICS
from repro.retrieval.engine import LSIRetrieval
from repro.server import ServerClient, manager_from_texts

K = 8
N_ADDS = 10
CHECKPOINT_EVERY = 4  # force checkpoint + WAL-suffix mixtures mid-stream
QUERIES = [
    "blood pressure age",
    "renal blood flow",
    "heart rate oxygen consumption",
    "growth hormone in children",
]
ADDS = [
    f"streamed document {i} about renal blood flow and hormone response {i}"
    for i in range(N_ADDS)
]


def _corpus() -> list[str]:
    extra = [
        "renal blood flow measurement in anesthetized dogs",
        "oxygen consumption and heart rate during moderate exercise",
        "growth hormone levels in fasting children",
        "spectral analysis of heart rate variability signals",
    ]
    return [MED_TOPICS[f"M{i}"] for i in range(1, 15)] + extra


def _serve(data_dir: str, corpus_path: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--no-obs", "serve", corpus_path,
            "--data-dir", data_dir, "-k", str(K), "--port", "0",
            "--checkpoint-every", str(CHECKPOINT_EVERY),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    port = None
    banner: list[str] = []
    while port is None:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"server died during boot:\n{''.join(banner)}")
        banner.append(line)
        if "on http://" in line:
            port = int(line.strip().rsplit(":", 1)[1])
    print("".join(f"  {line}" for line in banner), end="")
    return proc, port


def _repro(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "--no-obs", *args],
        env=env, capture_output=True, text=True,
    )


def _search_all(client: ServerClient) -> dict[str, list]:
    return {q: client.search_pairs(q, top=5) for q in QUERIES}


def _assert_parity(got: dict[str, list], want: dict[str, list], label: str):
    for q in QUERIES:
        assert [j for j, _ in got[q]] == [j for j, _ in want[q]], (
            f"{label}: doc order diverged for {q!r}: {got[q]} != {want[q]}"
        )
        np.testing.assert_allclose(
            [s for _, s in got[q]], [s for _, s in want[q]],
            rtol=0, atol=0, err_msg=f"{label}: scores diverged for {q!r}",
        )


def main() -> None:
    docs = _corpus()
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = os.path.join(tmp, "corpus.txt")
        with open(corpus_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(d.replace("\n", " ") for d in docs))
        data_dir = os.path.join(tmp, "store")

        # ---- phase 1: seed, stream adds, SIGKILL mid-stream ---------- #
        proc, port = _serve(data_dir, corpus_path)
        client = ServerClient(port=port)
        acked = 0
        try:
            for i, text in enumerate(ADDS):
                client.add([text], [f"S{i}"])
                acked += 1
        finally:
            proc.kill()  # SIGKILL: no drain, no flush, no final checkpoint
            proc.communicate(timeout=10)
        print(f"  killed -9 after {acked} acknowledged adds")
        assert acked == N_ADDS

        # ---- phase 2: restart, assert every acked add survived ------- #
        proc, port = _serve(data_dir, corpus_path)
        try:
            client = ServerClient(port=port)
            n_recovered = client.healthz()["n_documents"]
            recovered_adds = n_recovered - len(docs)
            assert recovered_adds >= acked, (
                f"acknowledged adds lost: served {recovered_adds} of "
                f"{acked} acked (acknowledged = WAL-fsynced)"
            )
            print(f"  recovered {recovered_adds}/{acked} acked adds")

            # The reference: the same seed corpus + exactly the adds the
            # recovered server reports, through the same manager path.
            manager = manager_from_texts(
                docs, [f"L{i + 1}" for i in range(len(docs))], k=K
            )
            for i in range(recovered_adds):
                manager.add_texts([ADDS[i]], doc_ids=[f"S{i}"])
            engine = LSIRetrieval(manager.model)
            expected = {
                q: [(int(j), float(s)) for j, s in engine.search(q, top=5)]
                for q in QUERIES
            }
            _assert_parity(_search_all(client), expected, "post-crash")
            print(f"  parity: {len(QUERIES)} queries element-identical to "
                  "the uninterrupted reference")

            # The recovered checkpoint still carries its ANN arrays
            # (the kill raced the background checkpointer's quantizer
            # training), and probing every cell reproduces the exact
            # scan — WAL-replayed documents the quantizer never saw are
            # covered by the fresh-tail rule.
            r = _repro("store", "inspect", data_dir, "--json")
            assert r.returncode == 0, (r.returncode, r.stdout, r.stderr)
            description = json.loads(r.stdout)
            assert description["ann"], (
                "recovered checkpoint lost its ANN arrays"
            )
            assert client.healthz()["ann"] is True
            got_ann = {
                q: client.search_pairs(q, top=5, probes=1000)
                for q in QUERIES
            }
            _assert_parity(got_ann, expected, "post-crash full-probe ann")
            print("  ann: quantizer recovered; full-probe search "
                  "element-identical to the exact scan")
        finally:
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
        assert "store flushed" in out and "drained cleanly" in out, out
        print("  graceful drain: final checkpoint flushed")

        # ---- phase 3: verify + compact + re-serve -------------------- #
        r = _repro("store", "verify", data_dir)
        assert r.returncode == 0 and "verified clean" in r.stdout, (
            r.returncode, r.stdout, r.stderr,
        )
        print(f"  {r.stdout.strip()}")
        r = _repro("store", "compact", data_dir)
        assert r.returncode == 0, (r.returncode, r.stdout, r.stderr)
        print(f"  {r.stdout.strip()}")

        proc, port = _serve(data_dir, corpus_path)
        try:
            client = ServerClient(port=port)
            assert client.healthz()["n_documents"] == n_recovered
            _assert_parity(_search_all(client), expected, "post-compact")
            print("  parity after compact: identical")
        finally:
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=30)

    print("store crash smoke: OK")


if __name__ == "__main__":
    t0 = time.perf_counter()
    main()
    print(f"({time.perf_counter() - t0:.1f}s)")
