"""Character n-gram features for the spelling-correction application.

Kukich's LSI spelling corrector (paper §5.4, Noisy Input) builds a matrix
whose *rows are unigrams and bigrams* (we additionally support trigrams)
*and whose columns are correctly spelled words*; an input string — spelled
correctly or not — is decomposed into its n-grams and located at the
weighted vector sum of those n-gram rows, and the nearest word column is
the suggested correction.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

__all__ = ["char_ngrams", "word_ngram_profile"]

#: Sentinel marking word boundaries so edge n-grams are distinct from
#: interior ones ("#ca" vs "ca" in "bobcat").
BOUNDARY = "#"


def char_ngrams(word: str, sizes: Sequence[int] = (1, 2)) -> list[str]:
    """All character n-grams of ``word`` for each size, with boundaries.

    For sizes > 1 the word is padded with one boundary marker on each side,
    so ``char_ngrams("cat", (2,))`` is ``['#c', 'ca', 'at', 't#']``.
    Unigrams are the bare characters.
    """
    word = word.lower()
    out: list[str] = []
    for size in sizes:
        if size < 1:
            raise ValueError(f"n-gram size must be >= 1, got {size}")
        if size == 1:
            out.extend(word)
            continue
        padded = BOUNDARY + word + BOUNDARY
        if len(padded) < size:
            out.append(padded)
            continue
        out.extend(padded[i : i + size] for i in range(len(padded) - size + 1))
    return out


def word_ngram_profile(
    word: str, sizes: Sequence[int] = (1, 2)
) -> Counter:
    """n-gram multiset of ``word`` (Counter of n-gram → occurrence count)."""
    return Counter(char_ngrams(word, sizes))


def vocabulary_ngrams(
    words: Iterable[str], sizes: Sequence[int] = (1, 2)
) -> list[str]:
    """Sorted union of all n-grams across ``words`` (matrix row labels)."""
    grams: set[str] = set()
    for w in words:
        grams.update(char_ngrams(w, sizes))
    return sorted(grams)
