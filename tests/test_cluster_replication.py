"""Replicated shards: placement, failover, quorum, fencing, promotion.

Unit layers first (the deterministic :class:`ReplicaPlan`, the typed
topology refusals, supervisor range health and bump quorum, lock
fencing generations), then the router's replica-set behavior against
in-process fake workers (failover-before-partial, hedging without
double counting, a Hypothesis proof that merge output is invariant to
*which* replica answers), and finally the integrated standby story: a
standby cluster tailing a live store, following its seals, and
adopting/promoting the instant the primary's lock dies — with every
acked record surviving.  The CLI/SIGKILL variants live in
``benchmarks/cluster_smoke.py``.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import ReplicaPlan, as_replica_plan
from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.cluster.service import ClusterConfig, ClusterService
from repro.cluster.supervisor import ClusterSupervisor
from repro.cluster.wire import read_frame, write_frame
from repro.cluster.worker import ShardWorker
from repro.core.build import fit_lsi
from repro.errors import (
    ClusterConfigError,
    ClusterError,
    ClusterReadOnlyError,
    StoreLockedError,
)
from repro.obs.metrics import registry
from repro.parallel.batch import batch_project_queries
from repro.parallel.sharding import merge_topk, sharded_batch_search
from repro.server.state import manager_from_texts
from repro.store.durable import DurableIndexStore
from repro.store.lock import StoreLock

RANGES = 3
TOP = 7


@pytest.fixture(scope="module")
def replica_model():
    rng = np.random.default_rng(29)
    vocab = [f"w{i}" for i in range(40)]
    texts = [" ".join(rng.choice(vocab, size=15)) for _ in range(57)]
    return fit_lsi(texts, 12), texts


def _scaled(model, texts):
    return batch_project_queries(model, texts) * model.s


def _seed_latency(worker_id, seconds, samples=5):
    registry.reset(f"cluster.worker.{worker_id}.rpc_seconds")
    for _ in range(samples):
        registry.observe(f"cluster.worker.{worker_id}.rpc_seconds", seconds)


# --------------------------------------------------------------------- #
# placement: deterministic, canonical, refused on skew
# --------------------------------------------------------------------- #
def test_replica_plan_mapping_and_quorum():
    plan = ReplicaPlan.compute(57, 6, 2)
    assert plan.n_shards == RANGES  # ranges, not processes
    assert plan.n_workers == 6
    assert plan.replication == 2
    assert plan.quorum() == 2
    assert plan.worker_ids() == [0, 1, 2, 3, 4, 5]
    for wid in plan.worker_ids():
        assert plan.range_of(wid) == wid % RANGES
        assert plan.replica_of(wid) == wid // RANGES
    for sid in range(RANGES):
        rset = plan.replica_set(sid)
        assert rset.workers == (sid, sid + RANGES)
        assert len(set(rset.workers)) == rset.replication == 2
        # The data layout is exactly the base shard plan's range.
        assert (rset.lo, rset.hi) == (plan.shard(sid).lo, plan.shard(sid).hi)
    # Majority quorum at odd R.
    assert ReplicaPlan.compute(57, 9, 3).quorum() == 2
    assert ReplicaPlan.compute(57, 5, 5).quorum() == 3


def test_replication_one_worker_ids_equal_shard_ids():
    plan = ReplicaPlan.compute(57, RANGES, 1)
    assert plan.n_workers == plan.n_shards == RANGES
    assert [plan.range_of(w) for w in plan.worker_ids()] == [0, 1, 2]
    assert plan.quorum() == 1
    # Wrapping a bare ShardPlan is the same R=1 special case.
    wrapped = as_replica_plan(ShardPlan.compute(57, RANGES))
    assert wrapped.replication == 1
    assert [r.workers for r in wrapped.replicas] == [(0,), (1,), (2,)]
    # Passthrough: an already-replicated plan is returned as-is.
    assert as_replica_plan(plan) is plan


def test_replica_plan_canonical_json_round_trip():
    a = ReplicaPlan.compute(123, 8, 2, epoch=7, checkpoint="ckpt-00000007")
    b = ReplicaPlan.compute(123, 8, 2, epoch=7, checkpoint="ckpt-00000007")
    assert a.to_json() == b.to_json()  # byte-stable
    parsed = ReplicaPlan.from_json(a.to_json())
    assert parsed == a
    assert parsed.to_json() == a.to_json()


def test_replica_plan_tampered_ranges_refused():
    plan = ReplicaPlan.compute(123, 8, 2)
    data = json.loads(plan.to_json())
    data["shards"][0][1] += 1  # hand-edited range
    with pytest.raises(ClusterError):
        ReplicaPlan.from_json(json.dumps(data))
    data = json.loads(plan.to_json())
    data["format"] = "repro-cluster-replica-plan/999"
    with pytest.raises(ClusterError):
        ReplicaPlan.from_json(json.dumps(data))


def test_impossible_topologies_are_typed_config_errors():
    with pytest.raises(ClusterConfigError):
        ReplicaPlan.compute(57, 2, 3)  # R exceeds the worker budget
    with pytest.raises(ClusterConfigError):
        ReplicaPlan.compute(57, 4, 0)  # R < 1
    # The error is a ValueError (argument validation), not a crash.
    assert issubclass(ClusterConfigError, ValueError)
    with pytest.raises(ClusterConfigError) as excinfo:
        ReplicaPlan.compute(57, 2, 3)
    assert "--workers" in str(excinfo.value)


def test_cluster_service_refuses_topology_before_touching_store(tmp_path):
    # No store exists under tmp_path: a StoreError here would mean the
    # service opened the store before validating the topology.
    with pytest.raises(ClusterConfigError):
        ClusterService(tmp_path, ClusterConfig(workers=2, replication=3))
    with pytest.raises(ClusterConfigError):
        ClusterService(tmp_path, ClusterConfig(workers=2, replication=0))
    with pytest.raises(ClusterConfigError):
        ClusterService(
            tmp_path, ClusterConfig(workers=2, writable=True, standby=True)
        )


# --------------------------------------------------------------------- #
# supervisor: per-range health and the bump quorum test
# --------------------------------------------------------------------- #
def test_supervisor_range_health_and_quorum(tmp_path):
    plan = ReplicaPlan.compute(57, 6, 2, epoch=5)
    sup = ClusterSupervisor(tmp_path, plan, ClusterRouter(plan))
    # Nothing spawned yet: every range exists but nothing is healthy.
    ranges = sup.describe_ranges()
    assert [r["shard"] for r in ranges] == [0, 1, 2]
    assert all(r["replicas_total"] == 2 for r in ranges)
    assert all(r["replicas_healthy"] == 0 for r in ranges)
    assert sup.quorum_met(plan) is False

    for record in sup._records.values():
        record.state = "up"
        record.epoch = 5
    assert all(
        r["replicas_healthy"] == 2 for r in sup.describe_ranges()
    )
    assert sup.quorum_met(plan) is True

    # One replica of range 0 dies: the range stays covered (healthy 1)
    # but a bump cannot publish at R=2 (quorum is 2).
    sup._records[0].state = "down"
    ranges = sup.describe_ranges()
    assert ranges[0]["replicas_healthy"] == 1
    assert ranges[1]["replicas_healthy"] == 2
    assert sup.quorum_met(plan) is False

    # An unresponsive worker (at the heartbeat miss limit) counts as
    # unhealthy even while its process record still says "up".
    sup._records[0].state = "up"
    sup._records[0].missed_heartbeats = sup.config.miss_limit
    assert sup.describe_ranges()[0]["replicas_healthy"] == 1
    assert sup.quorum_met(plan) is False
    rows = {row["worker"]: row for row in sup.describe()}
    assert rows[0]["state"] == "unresponsive"

    # A replica lagging on an old epoch is healthy but not quorate.
    sup._records[0].missed_heartbeats = 0
    sup._records[0].epoch = 4
    assert sup.describe_ranges()[0]["replicas_healthy"] == 2
    assert sup.quorum_met(plan) is False


def test_supervisor_majority_quorum_at_replication_three(tmp_path):
    plan = ReplicaPlan.compute(57, 9, 3, epoch=2)
    sup = ClusterSupervisor(tmp_path, plan, ClusterRouter(plan))
    for record in sup._records.values():
        record.state = "up"
        record.epoch = 2
    # Losing one replica per range still meets the 2-of-3 quorum.
    for sid in range(plan.n_shards):
        sup._records[sid].state = "down"
    assert sup.quorum_met(plan) is True
    # Losing two does not.
    sup._records[plan.n_shards].state = "down"
    assert sup.quorum_met(plan) is False


def test_supervisor_refuses_topology_changes(tmp_path):
    plan = ReplicaPlan.compute(57, 6, 2)
    sup = ClusterSupervisor(tmp_path, plan, ClusterRouter(plan))
    with pytest.raises(ClusterError):
        sup.update_plan(ReplicaPlan.compute(57, 8, 2))  # 4 ranges
    with pytest.raises(ClusterError):
        sup.update_plan(ReplicaPlan.compute(57, 3, 1))  # R changed
    sup.update_plan(ReplicaPlan.compute(60, 6, 2, epoch=9))  # same shape
    assert sup.plan.epoch == 9


# --------------------------------------------------------------------- #
# lock fencing: generations fence a superseded writer
# --------------------------------------------------------------------- #
def test_lock_excludes_and_generation_advances(tmp_path):
    first = StoreLock.acquire(tmp_path)
    with pytest.raises(StoreLockedError):
        StoreLock.acquire(tmp_path)  # held: second acquire refused
    assert first.check() is True
    first.release()
    assert first.check() is False  # released handles are never owners
    second = StoreLock.acquire(tmp_path)
    assert second.generation == first.generation + 1
    assert second.check() is True
    second.release()


def test_lock_parses_prefencing_pid_only_file(tmp_path):
    (tmp_path / "LOCK").write_text("12345\n")  # pre-fencing format
    lock = StoreLock.acquire(tmp_path)
    assert lock.generation == 12346  # monotonic past the old pid
    lock.release()


def test_fenced_store_refuses_to_seal(tmp_path):
    texts = [f"alpha beta gamma d{i}" for i in range(12)]
    store = DurableIndexStore.initialize(
        tmp_path / "s", manager_from_texts(texts, None, k=4)
    )
    try:
        store.add_texts(["delta epsilon zeta"], ["X0"])
        # Forge a takeover: a newer generation lands in the lockfile,
        # as if a standby adopted a store it judged abandoned.
        gen = store._dir_lock.generation
        (tmp_path / "s" / "LOCK").write_text(f"{gen + 1} 99999\n")
        with pytest.raises(StoreLockedError) as excinfo:
            store.seal(reason="test")
        assert "fenced" in str(excinfo.value)
    finally:
        store.close(flush=False)


# --------------------------------------------------------------------- #
# router: replica sets, failover-before-partial, hedging
# --------------------------------------------------------------------- #
class _FakeReplica:
    """One in-loop asyncio frame server around a real ShardWorker.

    ``die_on_score`` aborts the transport on receiving a score frame —
    the router-visible signature of a worker SIGKILLed mid-call."""

    def __init__(self, worker, *, delay=0.0, die_on_score=False):
        self.worker = worker
        self.delay = delay
        self.die_on_score = die_on_score
        self.server = None
        self.port = 0
        self.calls = 0
        self._writers = []

    async def start(self):
        self.server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0
        )
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self):
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        for writer in self._writers:
            writer.transport.abort()
        self._writers.clear()
        await asyncio.sleep(0)

    async def _serve(self, reader, writer):
        self._writers.append(writer)
        try:
            while True:
                message = await read_frame(reader)
                if message is None:
                    return
                self.calls += 1
                if message.get("op") == "score":
                    if self.die_on_score:
                        writer.transport.abort()
                        return
                    if self.delay:
                        await asyncio.sleep(self.delay)
                response = json.loads(
                    json.dumps(self.worker.handle(message))
                )
                if "id" in message:
                    response["id"] = message["id"]
                await write_frame(writer, response)
        except ConnectionError:
            pass
        finally:
            writer.close()


async def _replicated_cluster(
    model, *, replication=2, config=None, delays=None, die_on_score=()
):
    plan = ReplicaPlan.compute(model.n_documents, RANGES * replication,
                               replication)
    fakes = {}
    for wid in plan.worker_ids():
        fake = _FakeReplica(
            ShardWorker(model, plan.shard(plan.range_of(wid)),
                        replica=plan.replica_of(wid)),
            delay=(delays or {}).get(wid, 0.0),
            die_on_score=wid in die_on_score,
        )
        await fake.start()
        fakes[wid] = fake
    router = ClusterRouter(plan, config or RouterConfig(hedge=False))
    for wid, fake in fakes.items():
        await router.attach(wid, "127.0.0.1", fake.port)
    return plan, router, fakes


async def _teardown(router, fakes):
    await router.close()
    for fake in fakes.values():
        await fake.stop()


def test_router_fails_over_before_going_partial(replica_model):
    model, texts = replica_model
    queries = texts[:3]
    flat = sharded_batch_search(model, queries, top=TOP, shards=RANGES)
    # Pin the power-of-two choice: replica 0 looks fast (so it leads
    # every scatter) but dies mid-call; replica 1 looks slow but lives.
    for wid in range(RANGES):
        _seed_latency(wid, 0.001)
        _seed_latency(wid + RANGES, 0.5)
    failovers_before = registry.counter("cluster.failovers_total")
    reported = []

    async def main():
        plan, router, fakes = await _replicated_cluster(
            model, die_on_score={0, 1, 2}
        )
        router.on_worker_dead = reported.append
        try:
            result = await router.search_batch(
                _scaled(model, queries), top=TOP
            )
            return result, router.live_shards()
        finally:
            await _teardown(router, fakes)

    result, live = asyncio.run(main())
    # Every range's leader died, every range failed over — and the
    # answer is still complete and element-identical to the flat search.
    assert result.partial is False
    assert result.missing == []
    assert result.results == flat
    assert result.failovers == [0, 1, 2]
    assert result.served_by == {0: 3, 1: 4, 2: 5}
    assert registry.counter("cluster.failovers_total") == failovers_before + 3
    assert sorted(reported) == [0, 1, 2]  # dead replicas evicted
    assert live == [3, 4, 5]


def test_router_partial_only_when_every_replica_is_gone(replica_model):
    model, texts = replica_model
    for wid in range(2 * RANGES):
        registry.reset(f"cluster.worker.{wid}.rpc_seconds")

    async def main():
        plan, router, fakes = await _replicated_cluster(model)
        # Both replicas of range 1 die (accepted connections included).
        await fakes[1].stop()
        await fakes[1 + RANGES].stop()
        try:
            result = await router.search_batch(
                _scaled(model, texts[:2]), top=TOP
            )
            return plan, result
        finally:
            await _teardown(router, fakes)

    plan, result = asyncio.run(main())
    assert result.partial is True
    assert result.missing == [tuple(plan.shard(1).as_pair())]
    # Surviving ranges' rows are still exact.
    lo, hi = plan.shard(1).as_pair()
    flat = sharded_batch_search(
        model, texts[:2], top=model.n_documents, shards=RANGES
    )
    for qi, merged in enumerate(result.results):
        assert merged == [p for p in flat[qi] if not lo <= p[0] < hi][:TOP]


def test_router_hedges_to_sibling_without_double_counting(replica_model):
    model, texts = replica_model
    queries = texts[:2]
    flat = sharded_batch_search(model, queries, top=TOP, shards=RANGES)
    # Replica 0's history is fast (leads, and arms an early hedge) but
    # its actual answers stall; replica 1 answers instantly.
    for wid in range(RANGES):
        _seed_latency(wid, 0.01, samples=30)
        _seed_latency(wid + RANGES, 0.5)
    hedges_before = registry.counter("cluster.hedges_total")

    async def main():
        plan, router, fakes = await _replicated_cluster(
            model,
            config=RouterConfig(
                hedge=True,
                hedge_quantile=0.95,
                hedge_min_samples=20,
                worker_timeout_ms=10_000.0,
            ),
            delays={0: 0.4, 1: 0.4, 2: 0.4},
        )
        try:
            return await router.search_batch(
                _scaled(model, queries), top=TOP
            )
        finally:
            await _teardown(router, fakes)

    result = asyncio.run(main())
    assert registry.counter("cluster.hedges_total") > hedges_before
    # The sibling's answer won; nothing was lost and — the double-count
    # guard — every range contributed exactly one response to a merge
    # that is element-identical to the flat search.
    assert result.partial is False
    assert result.failovers == []  # slow is hedged, not failed over
    assert result.results == flat
    assert sorted(result.served_by) == [0, 1, 2]
    plan = ReplicaPlan.compute(model.n_documents, 2 * RANGES, 2)
    for sid, wid in result.served_by.items():
        assert wid in plan.replica_set(sid).workers


# --------------------------------------------------------------------- #
# property: the merge is invariant to which replica answers
# --------------------------------------------------------------------- #
@settings(deadline=None, max_examples=20)
@given(choices=st.lists(st.integers(0, 1), min_size=RANGES, max_size=RANGES))
def test_any_replica_choice_yields_identical_merge(replica_model, choices):
    model, texts = replica_model
    plan = ReplicaPlan.compute(model.n_documents, 2 * RANGES, 2)
    queries = texts[:3]
    Q = _scaled(model, queries)
    flat = sharded_batch_search(model, queries, top=TOP, shards=RANGES)
    per_shard_by_query = []
    for sid in range(RANGES):
        # Whichever replica of the range Hypothesis picks...
        wid = choices[sid] * RANGES + sid
        worker = ShardWorker(
            model, plan.shard(sid), replica=plan.replica_of(wid)
        )
        response = json.loads(json.dumps(worker.handle(
            {"op": "score", "queries": Q.tolist(), "top": TOP, "epoch": 0}
        )))
        assert "error" not in response
        per_shard_by_query.append(response["results"])
    merged = [
        merge_topk(
            [
                [(int(i), float(s)) for i, s in per_shard_by_query[sid][qi]]
                for sid in range(RANGES)
            ],
            TOP,
        )
        for qi in range(len(queries))
    ]
    # ...the merged answer is element-identical: indices, scores, ties.
    assert merged == flat


# --------------------------------------------------------------------- #
# standby: follow the primary's seals, adopt and promote on its death
# --------------------------------------------------------------------- #
def _texts(n, seed=3, vocab_size=40, length=15):
    rng = np.random.default_rng(seed)
    vocab = [f"w{i}" for i in range(vocab_size)]
    return [" ".join(rng.choice(vocab, size=length)) for _ in range(n)]


@pytest.fixture()
def store_dir(tmp_path):
    texts = _texts(24)
    ids = [f"D{i}" for i in range(len(texts))]
    data_dir = tmp_path / "store"
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=8)
    )
    store.close(flush=False)
    return data_dir


def test_standby_follows_then_promotes_with_zero_acked_loss(
    store_dir, tmp_path
):
    promo_log = tmp_path / "promotion.jsonl"

    async def main():
        # The "primary": a plain store handle holding the writer flock,
        # exactly what a repro-serve/writable-cluster process owns.
        primary = DurableIndexStore.open(store_dir)
        service = ClusterService(
            store_dir,
            ClusterConfig(
                workers=2,
                standby=True,
                standby_poll_s=0.05,
                promotion_log=str(promo_log),
                heartbeat_interval=0.2,
            ),
        )
        await service.start()
        try:
            epoch0 = service.epoch

            # While the primary lives: writes refused with the
            # standby-specific message, reads fine.
            with pytest.raises(ClusterReadOnlyError) as excinfo:
                await service.add(["too early"], ["nope"])
            assert "standby" in str(excinfo.value)
            assert service.healthz()["standby"]["promoted"] is False

            # The primary seals a new epoch; the standby follows it.
            primary.add_texts(_texts(2, seed=21), ["P0", "P1"])
            seal = primary.seal(reason="test")
            assert seal.epoch > epoch0
            deadline = asyncio.get_event_loop().time() + 30
            while service.epoch != seal.epoch:
                assert (
                    asyncio.get_event_loop().time() < deadline
                ), "standby never followed the primary's seal"
                await asyncio.sleep(0.05)
            r = await service.search("w1 w2 w3", top=26)
            assert r["partial"] is False
            assert {row[2] for row in r["results"]} >= {"P0", "P1"}

            # The primary acks three more records (WAL-fsynced, durable)
            # and dies before sealing them — the exact window a naive
            # failover loses.
            primary.add_texts(_texts(3, seed=22), ["Q0", "Q1", "Q2"])
            primary.close(flush=False)  # flock dies with the handle

            deadline = asyncio.get_event_loop().time() + 30
            while not service.standby.promoted:
                assert (
                    asyncio.get_event_loop().time() < deadline
                ), "standby never promoted after the lock freed"
                await asyncio.sleep(0.05)

            # Promotion installed a real writer: the adoption replayed
            # the WAL tail, so every acked record is already searchable.
            assert service.primary is service.standby.writer
            h = service.healthz()
            assert h["standby"]["promoted"] is True
            assert h["writer"]["enabled"] is True
            assert h["n_documents"] == 29
            r = await service.search("w1 w2 w3", top=29)
            assert r["partial"] is False
            assert {row[2] for row in r["results"]} >= {"Q0", "Q1", "Q2"}

            # Writes now flow through the adopted writer.
            ack = await service.add(_texts(1, seed=23), ["R0"])
            assert ack["durable"] is True

            # The takeover fenced the dead primary's generation.
            adopted = [
                e for e in service.standby.events if e["event"] == "adopted"
            ]
            assert adopted and adopted[0]["lock_generation"] >= 2

            # The promotion timeline is complete, in memory and on disk.
            names = [e["event"] for e in service.standby.events]
            for expected in (
                "standby_start", "followed_epoch", "lock_free",
                "adopted", "promoted",
            ):
                assert expected in names
            assert names.index("lock_free") < names.index("adopted")
            assert names.index("adopted") < names.index("promoted")
            logged = [
                json.loads(line)
                for line in promo_log.read_text().splitlines()
            ]
            assert [e["event"] for e in logged] == names
        finally:
            await service.drain()

    asyncio.run(main())
