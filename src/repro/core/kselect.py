"""Choosing the number of factors k (§5.2).

"Choosing the number of dimensions (k) for A_k ... is an interesting
problem.  While a reduction in k can remove much of the noise, keeping
too few dimensions or factors may lose important information."

The paper's empirical picture — a sharp rise, a broad interior peak, and
a slow decay toward word-based performance — suggests two families of
selectors, both implemented here:

* **spectrum-based** (cheap, no relevance judgments): retain enough
  factors to capture a target fraction of ``‖A‖_F² = Σσᵢ²`` (Theorem
  2.1), or cut at the largest relative gap in the singular-value decay
  (the scree elbow);
* **performance-based** (needs judgments): fit once at ``k_max``,
  evaluate truncations on a validation query set, return the argmax —
  exactly the §5.2 experiment turned into a selector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError

__all__ = [
    "KSelection",
    "choose_k_by_energy",
    "choose_k_by_gap",
    "choose_k_by_sweep",
]


@dataclass(frozen=True)
class KSelection:
    """A chosen k plus the evidence behind it.

    Attributes
    ----------
    k:
        The selected number of factors.
    criterion:
        Which selector produced it.
    curve:
        The selector's diagnostic series — cumulative energy fractions,
        relative gaps, or per-k metric values — indexed by k (1-based
        position i corresponds to k = i + offset noted per selector).
    """

    k: int
    criterion: str
    curve: tuple[float, ...]


def choose_k_by_energy(
    singular_values: np.ndarray, *, target: float = 0.8
) -> KSelection:
    """Smallest k with ``Σ_{i≤k} σᵢ² ≥ target · Σ σᵢ²``.

    The Frobenius-energy interpretation of Theorem 2.1: ``A_k`` captures
    exactly ``Σ_{i≤k}σᵢ²`` of the matrix's squared norm.  ``target``
    around 0.7-0.9 lands in the paper's interior-peak region on the
    collections we generate.
    """
    s = np.asarray(singular_values, dtype=np.float64).ravel()
    if s.size == 0:
        raise ShapeError("empty singular value array")
    if not 0.0 < target <= 1.0:
        raise ShapeError(f"target must be in (0, 1], got {target}")
    if np.any(s < 0):
        raise ShapeError("singular values must be non-negative")
    energy = np.cumsum(s**2)
    total = energy[-1]
    if total == 0:
        return KSelection(1, "energy", (0.0,) * s.size)
    fractions = energy / total
    k = int(np.searchsorted(fractions, target - 1e-12) + 1)
    k = min(k, s.size)
    return KSelection(k, "energy", tuple(fractions))


def choose_k_by_gap(
    singular_values: np.ndarray, *, min_k: int = 1
) -> KSelection:
    """Cut at the largest relative gap ``σᵢ/σᵢ₊₁`` past ``min_k``.

    The scree-elbow heuristic: a pronounced spectral gap separates the
    "meaningful structure" factors from the noise floor.  Degenerates
    gracefully on flat spectra (returns the last admissible k).
    """
    s = np.asarray(singular_values, dtype=np.float64).ravel()
    if s.size < 2:
        raise ShapeError("need at least two singular values for a gap")
    if not 1 <= min_k < s.size:
        raise ShapeError(f"min_k={min_k} outside [1, {s.size - 1}]")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(s[1:] > 0, s[:-1] / s[1:], np.inf)
    admissible = ratios[min_k - 1 :]
    k = int(np.argmax(admissible)) + min_k
    return KSelection(k, "gap", tuple(ratios))


def choose_k_by_sweep(
    model: LSIModel,
    evaluate: Callable[[LSIModel], float],
    *,
    candidates: Sequence[int] | None = None,
) -> KSelection:
    """Evaluate truncations of ``model`` and return the best k.

    Parameters
    ----------
    model:
        A model fitted at the largest k under consideration.
    evaluate:
        Callable returning a quality metric (higher is better) for a
        truncated model — typically 3-point average precision over a
        validation query set.
    candidates:
        The k values to try; defaults to a coarse-to-fine ladder
        ``1, 2, 4, ..., model.k``.
    """
    if candidates is None:
        ks: list[int] = []
        k = 1
        while k < model.k:
            ks.append(k)
            k *= 2
        ks.append(model.k)
        candidates = ks
    candidates = sorted(set(int(k) for k in candidates))
    if not candidates:
        raise ShapeError("no candidate k values")
    if candidates[0] < 1 or candidates[-1] > model.k:
        raise ShapeError(
            f"candidates must lie in [1, {model.k}], got {candidates}"
        )
    scores = []
    for k in candidates:
        truncated = model.truncated(k) if k < model.k else model
        scores.append(float(evaluate(truncated)))
    best = candidates[int(np.argmax(scores))]
    return KSelection(best, "sweep", tuple(scores))
