"""The cluster front end: checkpoint → plan → supervisor → router → HTTP.

:class:`ClusterService` presents the same duck-typed surface the HTTP
front end (:mod:`repro.server.http`) expects from a
:class:`~repro.server.service.QueryService` — ``start`` / ``drain`` /
``search`` / ``healthz`` / ``stats`` / ``metrics`` — but answers queries
by scattering over shard worker *processes* instead of scoring in-loop.
It opens the newest durable-store checkpoint once (memory-mapped, for
the vocabulary and query projection; workers map the same files
themselves), pins a :class:`~repro.cluster.plan.ShardPlan` against that
checkpoint's epoch, and wires the router's dead-connection reports into
the supervisor's restart machinery.

The cluster is a *read-only* serving tier: ``/add`` is refused.  Writes
go to the store's single writer (``repro serve --data-dir``); a new
checkpoint is picked up by restarting the cluster, which re-pins the
plan — by design, since a plan is only valid against one checkpoint.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterResult, ClusterRouter, RouterConfig
from repro.cluster.supervisor import ClusterSupervisor, SupervisorConfig
from repro.core.query import project_query
from repro.errors import ReproError, StoreError
from repro.obs.aggregate import label_snapshots
from repro.obs.export import SCHEMA
from repro.obs.metrics import registry
from repro.obs.prom import render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace_context import current_trace
from repro.obs.tracing import recent_spans, span, spans_for_trace
from repro.store.checkpoint import latest_valid_checkpoint
from repro.store.mmap_io import open_checkpoint_ann, open_checkpoint_model

__all__ = ["ClusterConfig", "ClusterService"]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables for one cluster instance (CLI flags map 1:1 onto these)."""

    workers: int = 4
    worker_timeout_ms: float = 2000.0
    hedge_quantile: float = 0.95
    hedge: bool = True
    heartbeat_interval: float = 1.0
    miss_limit: int = 3
    restart_backoff: float = 0.5
    restart_backoff_cap: float = 10.0
    default_timeout_ms: float | None = None
    #: Default probe count for requests that don't specify one.  ``None``
    #: keeps the exact scatter as the default; requests opt into the ANN
    #: path with ``probes``, or force exactness with ``exact``.
    default_probes: int | None = None
    #: Slow-query log threshold (milliseconds); <= 0 disables the log.
    slow_ms: float = 500.0
    #: JSONL file for slow-query records (``None`` keeps them in-memory).
    slowlog_path: str | None = None
    #: Bound on retained slow-query records (memory and on-disk).
    slowlog_max_records: int = 256


class ClusterService:
    """Scatter-gather query service over one checkpoint, many processes."""

    def __init__(
        self,
        data_dir: pathlib.Path,
        config: ClusterConfig | None = None,
        *,
        host: str = "127.0.0.1",
        announce: Callable[[str], None] | None = None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.config = config or ClusterConfig()

        from repro.store.durable import STORE_LAYOUT

        checkpoints = self.data_dir / STORE_LAYOUT["checkpoints"]
        info, problems = latest_valid_checkpoint(checkpoints)
        if info is None:
            detail = f" ({'; '.join(problems)})" if problems else ""
            raise StoreError(
                f"no valid checkpoint under {checkpoints}{detail}"
            )
        self.checkpoint = info.path.name
        self.epoch = int(info.manifest.get("meta", {}).get("epoch", 0))
        # Mapped once here for projection (U, Σ, vocabulary); each worker
        # maps the same .npy files itself — the page cache is shared.
        self.model = open_checkpoint_model(info.path, mmap=True)
        # Presence only — workers map the quantizer themselves; the
        # router never scores, it just reports availability and sets the
        # store.ann_missing gauge in this (front-end) process's registry.
        self.ann = open_checkpoint_ann(info.path, mmap=True) is not None
        self.plan = ShardPlan.compute(
            self.model.n_documents,
            self.config.workers,
            epoch=self.epoch,
            checkpoint=self.checkpoint,
        )
        self.router = ClusterRouter(
            self.plan,
            RouterConfig(
                worker_timeout_ms=self.config.worker_timeout_ms,
                hedge_quantile=self.config.hedge_quantile,
                hedge=self.config.hedge,
            ),
        )
        self.supervisor = ClusterSupervisor(
            self.data_dir,
            self.plan,
            self.router,
            SupervisorConfig(
                heartbeat_interval=self.config.heartbeat_interval,
                miss_limit=self.config.miss_limit,
                backoff_base=self.config.restart_backoff,
                backoff_cap=self.config.restart_backoff_cap,
            ),
            host=host,
            announce=announce,
        )
        self.router.on_worker_dead = self.supervisor.notify_worker_dead
        self.slowlog = SlowQueryLog(
            self.config.slowlog_path,
            threshold_ms=self.config.slow_ms,
            max_records=self.config.slowlog_max_records,
        )
        self._started = False

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn and attach every worker (idempotent)."""
        if not self._started:
            with span("cluster.start", workers=self.plan.n_shards):
                await self.supervisor.start()
            self._started = True

    async def drain(self) -> None:
        """Graceful shutdown: SIGTERM workers, close channels."""
        await self.supervisor.drain()
        self._started = False

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun."""
        return self.supervisor.draining

    # ------------------------------------------------------------------ #
    def _scale(self, Q: np.ndarray) -> np.ndarray:
        """``Q Σ`` — exactly ``DocumentIndex.prepare_queries`` in scaled
        mode, applied router-side so every worker scores identical bytes."""
        return np.atleast_2d(np.asarray(Q, dtype=np.float64)) * self.model.s

    async def search(
        self,
        query,
        *,
        top: int | None = None,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
    ) -> dict:
        """One ranked search, scattered over the shard workers.

        ``probes`` bounds every shard's scan to the same coarse cells
        (falling back to ``config.default_probes``, then to the exact
        scatter); ``exact=True`` overrides any default.  Never raises on
        worker death — degraded answers come back with ``partial=True``
        and the unscored ``[lo, hi)`` ranges listed.
        """
        t0 = time.perf_counter()
        qhat = project_query(self.model, query)
        result = await self.router.search_batch(
            self._scale(qhat),
            top=top,
            threshold=threshold,
            timeout_ms=(
                timeout_ms if timeout_ms is not None
                else self.config.default_timeout_ms
            ),
            probes=(
                probes if probes is not None
                else self.config.default_probes
            ),
            exact=exact,
        )
        self._record_slow(
            time.perf_counter() - t0, result, top=top, probes=probes
        )
        doc_ids = self.model.doc_ids
        return {
            "epoch": result.epoch,
            "n_documents": self.model.n_documents,
            "partial": result.partial,
            "missing": [list(pair) for pair in result.missing],
            "results": [
                [i, score, doc_ids[i]] for i, score in result.results[0]
            ],
        }

    def _record_slow(
        self,
        elapsed_s: float,
        result: ClusterResult,
        *,
        top: int | None,
        probes: int | None,
    ) -> None:
        """Dump an over-threshold request's trace evidence to the slow log."""
        if not self.slowlog.is_slow(elapsed_s):
            return
        registry.inc("cluster.slow_queries_total")
        ctx = current_trace()
        trace_id = ctx.trace_id if ctx is not None else None
        entry = {
            "ts": time.time(),
            "trace_id": trace_id,
            "duration_ms": elapsed_s * 1000.0,
            "top": top,
            "probes": probes,
            "partial": result.partial,
            "missing": [list(pair) for pair in result.missing],
            "shard_timings": {
                str(sid): ms for sid, ms in sorted(result.shard_timings.items())
            },
            "hedged": result.hedged,
            "deadline_missed": result.deadline_missed,
        }
        if trace_id is not None:
            # The router-side spans already captured for this trace —
            # scatter and merge costs, with hedges/misses flagged in
            # their attrs.  Worker spans stay fetchable via /trace.
            entry["spans"] = [
                s.to_dict() for s in spans_for_trace(trace_id)
            ]
        self.slowlog.record(entry)

    async def search_many(
        self,
        queries: Sequence[str] | np.ndarray,
        *,
        top: int | None = 10,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
    ) -> ClusterResult:
        """A whole batch through one scatter (bench/parity entry point).

        ``queries`` may be raw texts or an already-projected ``(q, k)``
        array — the same convention as ``sharded_batch_search``, whose
        output this is element-identical to when all workers are live.
        """
        if isinstance(queries, np.ndarray):
            Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        else:
            from repro.parallel.batch import batch_project_queries

            Q = batch_project_queries(self.model, queries)
        return await self.router.search_batch(
            self._scale(Q),
            top=top,
            threshold=threshold,
            timeout_ms=(
                timeout_ms if timeout_ms is not None
                else self.config.default_timeout_ms
            ),
            probes=(
                probes if probes is not None
                else self.config.default_probes
            ),
            exact=exact,
        )

    async def add(self, texts, doc_ids=None) -> dict:
        """Refused: the cluster serves a pinned checkpoint, read-only."""
        raise ReproError(
            "cluster serving is read-only: write through the store's "
            "single writer (repro serve --data-dir) and restart the "
            "cluster to pick up the new checkpoint"
        )

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        """Cluster liveness: worker table, live count, degradation."""
        workers = self.supervisor.describe()
        live = sum(1 for w in workers if w["state"] == "up")
        if self.draining:
            status = "draining"
        elif live < self.plan.n_shards:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "draining": self.draining,
            "epoch": self.epoch,
            "checkpoint": self.checkpoint,
            "n_documents": self.model.n_documents,
            "n_shards": self.plan.n_shards,
            "workers_live": live,
            "workers": workers,
            "ann": self.ann,
            "default_probes": self.config.default_probes,
            "slowlog": self.slowlog.describe(),
        }

    def stats(self) -> dict:
        """The observability snapshot for ``/stats`` (obs-export schema)."""
        return {
            "schema": SCHEMA,
            "server": self.healthz(),
            "metrics": registry.snapshot(),
            "spans": [s.to_dict() for s in recent_spans(50)],
            "slow_queries": self.slowlog.recent(20),
        }

    async def metrics(self) -> dict:
        """The federated fleet registry dump for ``/metrics``.

        Same flat ``{counters, gauges, histograms}`` JSON shape as the
        single-process server (backward compatible); every live worker's
        shipped registry rides along under a ``shard.<sid>.`` prefix.
        """
        worker_snaps = await self.router.fetch_stats()
        return label_snapshots(
            registry.snapshot(),
            {sid: snap for sid, snap in worker_snaps.items()},
        )

    async def metrics_prom(self) -> str:
        """Prometheus text exposition for ``/metrics?format=prom``.

        The router's registry renders with a ``worker="router"`` label
        and each live shard worker's with ``worker="<sid>"`` — one
        family per metric, per-worker-labeled samples beneath.
        """
        worker_snaps = await self.router.fetch_stats()
        series = [({"worker": "router"}, registry.snapshot())]
        for sid in sorted(worker_snaps):
            series.append(({"worker": str(sid)}, worker_snaps[sid]))
        return render_prometheus(series)

    async def trace(self, trace_id: str) -> dict:
        """Reassemble one cluster-wide trace: local + worker spans.

        Worker spans are fetched over the ``trace`` wire op and tagged
        with their shard id; the whole set sorts by start time, so the
        JSONL export reads as one coherent distributed timeline.
        """
        local = [s.to_dict() for s in spans_for_trace(trace_id)]
        for record in local:
            record["worker"] = "router"
        remote = await self.router.fetch_trace(trace_id)
        for sid, spans in sorted(remote.items()):
            for record in spans:
                record["worker"] = str(sid)
            local.extend(spans)
        local.sort(key=lambda r: float(r.get("start", 0.0)))
        return {
            "trace_id": trace_id,
            "workers": sorted(str(sid) for sid in remote),
            "spans": local,
        }
