"""One-sided Jacobi SVD for dense matrices.

The SVD-updating phases (Eq. 10-12 of the paper) each reduce to the SVD of
a *small dense* matrix — ``F = (Σ_k | Û_kᵀD)`` is ``k × (k+p)`` with
``k ≈ 100-300`` — so a robust dense SVD is the substrate they stand on.
One-sided Jacobi applies Givens rotations to pairs of columns until all
columns are mutually orthogonal; the column norms are then the singular
values.  It is slower than bidiagonalization-based SVD but simple, highly
accurate (computes tiny singular values to high relative accuracy), and
easy to verify — the right trade-off for a from-scratch substrate.

For ``m < n`` the matrix is transposed and the factors swapped back.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.util.rng import ensure_rng

__all__ = ["jacobi_svd"]

_MAX_SWEEPS = 60

#: Squared-column-norm floor (relative to the unit-scaled working matrix)
#: below which a column is treated as exactly zero.
_NORM2_FLOOR = float(np.sqrt(np.finfo(np.float64).tiny))


def jacobi_svd(
    a: np.ndarray, *, tol: float = 1e-13, max_sweeps: int = _MAX_SWEEPS
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full (thin) SVD ``A = U @ diag(s) @ Vᵀ`` by one-sided Jacobi rotations.

    Parameters
    ----------
    a:
        Dense ``(m, n)`` array.
    tol:
        Relative orthogonality threshold: a column pair ``(i, j)`` is
        rotated while ``|cᵢ·cⱼ| > tol * ‖cᵢ‖‖cⱼ‖``.
    max_sweeps:
        Safety cap on full sweeps over all column pairs.

    Returns
    -------
    (U, s, V):
        ``U`` — ``(m, r)`` orthonormal columns, ``s`` — length ``r``
        singular values in descending order, ``V`` — ``(n, r)`` orthonormal
        columns, where ``r = min(m, n)``.  Zero singular values get
        orthonormal filler columns in ``U`` so that ``UᵀU = I`` always.
    """
    A = np.asarray(a, dtype=np.float64)
    if A.ndim != 2:
        raise ShapeError(f"jacobi_svd expects a matrix, got ndim={A.ndim}")
    m, n = A.shape
    if m == 0 or n == 0:
        r = min(m, n)
        return np.zeros((m, r)), np.zeros(r), np.zeros((n, r))
    if m < n:
        V, s, U = jacobi_svd(A.T, tol=tol, max_sweeps=max_sweeps)
        return U, s, V

    # Pre-scale to O(1) magnitude: rotations are scale-invariant, and the
    # scaling keeps column norms² out of under/overflow territory for
    # subnormal or huge inputs.
    amax = np.max(np.abs(A))
    if not np.isfinite(amax):
        raise ShapeError("jacobi_svd input contains non-finite values")
    if amax == 0.0:
        # Zero matrix: arbitrary orthonormal factors.
        U = _orthonormal_completion(np.zeros((m, 0)), n, seed=0)
        return U, np.zeros(n), np.eye(n)
    W = A / amax  # working columns; becomes U * diag(s / amax)
    V = np.eye(n)

    for sweep in range(max_sweeps):
        off = 0.0
        rotated = False
        # Cache column norms; updated incrementally after each rotation.
        norms2 = np.sum(W * W, axis=0)
        for i in range(n - 1):
            for j in range(i + 1, n):
                alpha = norms2[i]
                beta = norms2[j]
                # Columns below sqrt(tiny) are numerically zero relative to
                # the unit-scaled matrix; rotating against them only risks
                # underflow in alpha*beta (the matrix was pre-scaled so the
                # largest entry is 1).
                if alpha <= _NORM2_FLOOR or beta <= _NORM2_FLOOR:
                    continue
                gamma = float(np.dot(W[:, i], W[:, j]))
                off = max(off, abs(gamma) / np.sqrt(alpha * beta))
                if abs(gamma) <= tol * np.sqrt(alpha * beta):
                    continue
                rotated = True
                # Closed-form Jacobi rotation annihilating the (i, j) inner
                # product (Golub & Van Loan §8.6.3).
                zeta = (beta - alpha) / (2.0 * gamma)
                t = np.sign(zeta) / (abs(zeta) + np.hypot(1.0, zeta))
                if zeta == 0.0:
                    t = 1.0
                c = 1.0 / np.hypot(1.0, t)
                s_rot = c * t
                wi = W[:, i].copy()
                W[:, i] = c * wi - s_rot * W[:, j]
                W[:, j] = s_rot * wi + c * W[:, j]
                vi = V[:, i].copy()
                V[:, i] = c * vi - s_rot * V[:, j]
                V[:, j] = s_rot * vi + c * V[:, j]
                norms2[i] = float(np.dot(W[:, i], W[:, i]))
                norms2[j] = float(np.dot(W[:, j], W[:, j]))
        if not rotated:
            break
    else:
        if off > 100 * tol:
            raise ConvergenceError(
                f"one-sided Jacobi SVD did not converge in {max_sweeps} sweeps "
                f"(residual orthogonality {off:.2e})",
                iterations=max_sweeps,
            )

    # Normalize U in the unit-scaled space, where column norms are O(1):
    # multiplying W back by a subnormal ``amax`` first would round both W
    # and s on the subnormal grid and leave U columns non-unit.
    s_scaled = np.sqrt(np.sum(W * W, axis=0))
    order = np.argsort(-s_scaled, kind="stable")
    s_scaled = s_scaled[order]
    W = W[:, order]
    V = V[:, order]
    U = np.zeros((m, n))
    # Relative rank cut: rotation cancellation leaves O(eps·σ₁) noise in
    # annihilated columns; normalizing those would yield garbage vectors.
    rank_floor = (
        s_scaled[0] * np.finfo(np.float64).eps * max(m, n)
        if s_scaled.size
        else 0.0
    )
    pos = s_scaled > rank_floor
    s_scaled = np.where(pos, s_scaled, 0.0)
    U[:, pos] = W[:, pos] / s_scaled[pos]
    s = s_scaled * amax
    if not np.all(pos):
        # Complete U with orthonormal columns for the null singular values.
        U = _fill_null_columns(U, pos)
    return U, s, V


def _fill_null_columns(U: np.ndarray, pos: np.ndarray) -> np.ndarray:
    """Replace zero columns of ``U`` with vectors orthonormal to the rest."""
    m = U.shape[0]
    rng = ensure_rng(0)
    basis = U[:, pos]
    out = U.copy()
    for idx in np.flatnonzero(~pos):
        for _attempt in range(8):
            v = rng.standard_normal(m)
            if basis.shape[1]:
                v -= basis @ (basis.T @ v)
                v -= basis @ (basis.T @ v)  # second pass for stability
            norm = np.sqrt(np.dot(v, v))
            if norm > 1e-8:
                v /= norm
                break
        out[:, idx] = v
        basis = np.hstack([basis, v[:, None]])
    return out


def _orthonormal_completion(basis: np.ndarray, k: int, *, seed=None) -> np.ndarray:
    """Extend ``basis`` (orthonormal columns) with ``k`` further columns."""
    m = basis.shape[0]
    pos = np.zeros(basis.shape[1] + k, dtype=bool)
    pos[: basis.shape[1]] = True
    padded = np.hstack([basis, np.zeros((m, k))])
    return _fill_null_columns(padded, pos)
