"""Fleet-wide metrics federation: merge and label worker registries.

The cluster front end owns only the router's process-local registry;
each shard worker accumulates its own (RPC handling, scoring spans, ANN
probes) in a separate process.  The ``stats`` wire op ships every
worker's ``registry.snapshot()`` to the router, and this module turns
that pile of snapshots into the two views ``GET /metrics`` serves:

* :func:`merge_registry_snapshots` — one fleet-wide roll-up.  The merge
  is **order-independent** (any permutation of the inputs produces the
  same result) and **bucket-exact** for histograms (bucket counts add,
  so quantiles of the union are recoverable), which
  ``tests/test_obs_aggregate.py`` pins down property-style;
* :func:`label_snapshots` — per-worker views with each metric name
  prefixed (``shard.3.cluster.rpc_seconds``), so the flat JSON shape of
  ``/metrics`` stays backward compatible while reporting every process.

Merge rules per kind: **counters add** (event counts are disjoint per
process); **histograms merge bucket-wise** when boundaries match —
when two processes somehow disagree on a histogram's boundaries, the
layout with the larger total count wins (ties broken by the smaller
boundary tuple), never by input order; **gauges take the max**, because
unlike :func:`repro.obs.export.merge_snapshots`'s last-write-wins
(correct for a *time-ordered* state file), fleet snapshots arrive in
arbitrary order — max is the strongest commutative, idempotent choice
and reads naturally for the high-water quantities workers gauge.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.metrics import Histogram

__all__ = [
    "merge_registry_snapshots",
    "prefix_snapshot",
    "label_snapshots",
]


def merge_registry_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge ``registry.snapshot()`` dicts into one fleet-wide snapshot.

    Order-independent and safe on malformed input: non-dict entries and
    missing sections are skipped rather than raised on, because worker
    snapshots cross a process boundary.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    # name -> boundaries-tuple -> merged Histogram (grouping by layout
    # keeps the merge order-independent even under boundary mismatch).
    layouts: dict[str, dict[tuple, Histogram]] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for name, value in _section(snap, "counters").items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in _section(snap, "gauges").items():
            value = float(value)
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        for name, data in _section(snap, "histograms").items():
            try:
                hist = Histogram.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue
            group = layouts.setdefault(name, {})
            existing = group.get(hist.boundaries)
            if existing is None:
                group[hist.boundaries] = hist
            else:
                existing.merge(hist)
    histograms: dict[str, dict] = {}
    for name, group in layouts.items():
        winner = max(
            group.values(),
            key=lambda h: (h.count, tuple(-b for b in h.boundaries)),
        )
        histograms[name] = winner.to_dict()
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def prefix_snapshot(snap: dict, prefix: str) -> dict:
    """A copy of ``snap`` with every metric renamed to ``prefix + name``."""
    return {
        kind: {
            f"{prefix}{name}": value
            for name, value in _section(snap, kind).items()
        }
        for kind in ("counters", "gauges", "histograms")
    }


def label_snapshots(
    local: dict,
    workers: Mapping[object, dict],
    *,
    prefix: str = "shard.",
) -> dict:
    """The federated flat view: local metrics + per-worker-prefixed ones.

    ``workers`` maps a worker label (shard id) to its snapshot; each of
    its metrics lands under ``{prefix}{label}.{name}``.  Local names are
    kept verbatim, so a single-process ``/metrics`` consumer sees no
    shape change.
    """
    merged = {kind: dict(_section(local, kind))
              for kind in ("counters", "gauges", "histograms")}
    for label in sorted(workers, key=str):
        labeled = prefix_snapshot(workers[label], f"{prefix}{label}.")
        for kind in ("counters", "gauges", "histograms"):
            merged[kind].update(labeled[kind])
    return merged


def _section(snap: dict, kind: str) -> dict:
    section = snap.get(kind)
    return section if isinstance(section, dict) else {}
