"""Cosine similarity and ranking in the semantic space (§2.2, §3.1).

"The query vector can then be compared to all existing document vectors,
and the documents ranked by their similarity (nearness) to the query. ...
Typically the z closest documents or all documents exceeding some cosine
threshold are returned to the user."

Comparison convention
---------------------
Document positions in the figures are ``V_k Σ_k`` (Fig. 4 uses the columns
of ``V₂`` scaled by the singular values), so the default comparison space
scales both query and documents by ``Σ_k`` ("scaled" mode).  The unscaled
alternative — cosine between ``q̂`` and raw rows of ``V_k`` — is exposed as
``mode="factors"`` for completeness; the paper itself notes the cosine "is
merely used to rank-order documents and its numerical value is not always
an adequate measure of relevance".
"""

from __future__ import annotations

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError

__all__ = [
    "cosine_similarities",
    "rank_documents",
    "retrieve",
    "term_term_similarities",
    "doc_doc_similarities",
    "nearest_terms",
]


def _cosine_rows(M: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Cosine of each row of ``M`` with vector ``v`` (0 for zero rows)."""
    norms = np.sqrt(np.sum(M * M, axis=1))
    vnorm = np.sqrt(np.dot(v, v))
    denom = norms * vnorm
    out = np.zeros(M.shape[0])
    ok = denom > 0
    out[ok] = (M[ok] @ v) / denom[ok]
    return out


def cosine_similarities(
    model: LSIModel, qhat: np.ndarray, *, mode: str = "scaled"
) -> np.ndarray:
    """Cosine of the query pseudo-vector with every document (length n)."""
    qhat = np.asarray(qhat, dtype=np.float64).ravel()
    if qhat.size != model.k:
        raise ShapeError(f"query vector has {qhat.size} dims for k={model.k}")
    if mode == "scaled":
        return _cosine_rows(model.V * model.s, qhat * model.s)
    if mode == "factors":
        return _cosine_rows(model.V, qhat)
    raise ValueError(f"unknown similarity mode {mode!r}")


def rank_documents(
    model: LSIModel, qhat: np.ndarray, *, mode: str = "scaled"
) -> list[tuple[str, float]]:
    """All documents ranked by descending cosine: ``[(doc_id, cos), ...]``."""
    cos = cosine_similarities(model, qhat, mode=mode)
    order = np.argsort(-cos, kind="stable")
    return [(model.doc_ids[j], float(cos[j])) for j in order]


def retrieve(
    model: LSIModel,
    qhat: np.ndarray,
    *,
    threshold: float | None = None,
    top: int | None = None,
    mode: str = "scaled",
) -> list[tuple[str, float]]:
    """Documents above a cosine threshold and/or the top-z closest.

    Mirrors §3.1: "the z closest documents or all documents exceeding some
    cosine threshold are returned".  Both filters may be combined.
    """
    if threshold is None and top is None:
        raise ValueError("retrieve() needs a threshold, a top count, or both")
    ranked = rank_documents(model, qhat, mode=mode)
    if threshold is not None:
        ranked = [(d, c) for d, c in ranked if c >= threshold]
    if top is not None:
        ranked = ranked[:top]
    return ranked


# --------------------------------------------------------------------- #
# term-term and document-document structure (thesaurus, synonym test,
# clustering claims of Figures 4/7/8/9)
# --------------------------------------------------------------------- #
def term_term_similarities(model: LSIModel, term: str) -> np.ndarray:
    """Cosine of one term against every term, in scaled term space.

    Term comparisons use rows of ``U_k Σ_k`` — "terms which occur in
    similar documents ... will be near each other in the k-dimensional
    factor space even if they never co-occur".
    """
    coords = model.term_coordinates()
    return _cosine_rows(coords, coords[model.vocabulary.id_of(term)])


def doc_doc_similarities(model: LSIModel, doc_id: str) -> np.ndarray:
    """Cosine of one document against every document (scaled space)."""
    coords = model.doc_coordinates()
    return _cosine_rows(coords, coords[model.doc_index(doc_id)])


def nearest_terms(
    model: LSIModel, term: str, *, top: int = 10, skip_self: bool = True
) -> list[tuple[str, float]]:
    """The ``top`` terms nearest to ``term`` — the online-thesaurus
    application of §5.4 ("there is no reason that similar terms could not
    be returned")."""
    cos = term_term_similarities(model, term)
    order = np.argsort(-cos, kind="stable")
    out = []
    self_id = model.vocabulary.id_of(term)
    for idx in order:
        if skip_self and idx == self_id:
            continue
        out.append((model.vocabulary[int(idx)], float(cos[idx])))
        if len(out) >= top:
            break
    return out
