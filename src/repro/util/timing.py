"""Lightweight wall-clock instrumentation for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_seconds"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("svd"):
    ...     pass
    >>> "svd" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        def __init__(self, owner: "Stopwatch", name: str):
            self._owner = owner
            self._name = name
            self._t0 = 0.0

        def __enter__(self) -> "Stopwatch._Lap":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            elapsed = time.perf_counter() - self._t0
            self._owner.laps[self._name] = self._owner.laps.get(self._name, 0.0) + elapsed

    def lap(self, name: str) -> "Stopwatch._Lap":
        """Context manager that adds elapsed time to the named lap."""
        return Stopwatch._Lap(self, name)

    def total(self) -> float:
        """Sum of all laps, in seconds."""
        return sum(self.laps.values())

    def report(self) -> str:
        """Human-readable one-line-per-lap summary, slowest first."""
        rows = sorted(self.laps.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{name:>24s}  {format_seconds(t)}" for name, t in rows)


def format_seconds(t: float) -> str:
    """Render a duration with a unit that keeps 3 significant digits."""
    if t < 1e-6:
        return f"{t * 1e9:.1f} ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    return f"{t:.3f} s"
